// ASCII table renderer.
//
// The benchmark harnesses reproduce the paper's Tables I and II; this class
// renders them in a fixed-width layout close to the published formatting so
// paper-vs-measured comparisons in EXPERIMENTS.md are easy to eyeball.
#pragma once

#include <string>
#include <vector>

namespace cnn2fpga::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with column alignment, `|` separators and a header rule.
  std::string render() const;

  /// Render as tab-separated values (machine-readable dump for EXPERIMENTS.md).
  std::string render_tsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cnn2fpga::util
