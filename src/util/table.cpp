#include "util/table.hpp"

#include <algorithm>

namespace cnn2fpga::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < header_.size(); ++c) rule += std::string(widths[c] + 2, '-') + "+";
  rule += "\n";

  std::string out = rule + render_row(header_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string Table::render_tsv() const {
  std::string out;
  const auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) out += "\t";
      if (c < row.size()) out += row[c];
    }
    out += "\n";
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace cnn2fpga::util
