#include "util/cli.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace cnn2fpga::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--key value` form: consume the next token if it is not itself an option.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      options_[body] = argv[i + 1];
      ++i;
    } else {
      options_[body] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return options_.count(name) != 0; }

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto value = get(name);
  return value ? *value : fallback;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  const auto value = get(name);
  if (!value || value->empty()) return fallback;
  return std::strtol(value->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value || value->empty()) return fallback;
  return std::strtod(value->c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  if (value->empty()) return true;  // bare --flag
  const std::string lower = to_lower(*value);
  return lower == "1" || lower == "true" || lower == "yes" || lower == "on";
}

}  // namespace cnn2fpga::util
