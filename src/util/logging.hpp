// Lightweight leveled logger for the cnn2fpga framework.
//
// Not thread-hostile: each log call formats into a local buffer and performs a
// single stream insertion, so interleaving from concurrent components (e.g.
// the AXI fabric simulator and the HTTP server) stays line-atomic in practice.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace cnn2fpga::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unrecognized names.
LogLevel parse_log_level(std::string_view name);

const char* log_level_name(LogLevel level);

/// Emit one formatted line (timestamped, level-tagged) to stderr.
void log_line(LogLevel level, std::string_view component, std::string_view msg);

namespace detail {
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cnn2fpga::util

#define CNN2FPGA_LOG(level, component)                                   \
  if (::cnn2fpga::util::log_level() <= (level))                          \
  ::cnn2fpga::util::detail::LogMessage((level), (component))

#define LOG_TRACE(component) CNN2FPGA_LOG(::cnn2fpga::util::LogLevel::kTrace, component)
#define LOG_DEBUG(component) CNN2FPGA_LOG(::cnn2fpga::util::LogLevel::kDebug, component)
#define LOG_INFO(component) CNN2FPGA_LOG(::cnn2fpga::util::LogLevel::kInfo, component)
#define LOG_WARN(component) CNN2FPGA_LOG(::cnn2fpga::util::LogLevel::kWarn, component)
#define LOG_ERROR(component) CNN2FPGA_LOG(::cnn2fpga::util::LogLevel::kError, component)
