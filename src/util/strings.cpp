#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace cnn2fpga::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      break;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string indent(std::string_view text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces < 0 ? 0 : spaces), ' ');
  std::string out;
  out.reserve(text.size() + pad.size() * 8);
  bool at_line_start = true;
  for (char c : text) {
    if (at_line_start && c != '\n') {
      out.append(pad);
      at_line_start = false;
    }
    out.push_back(c);
    if (c == '\n') at_line_start = true;
  }
  return out;
}

std::string human_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return format("%zu B", bytes);
  return format("%.2f %s", value, units[unit]);
}

std::string human_seconds(double seconds) {
  if (seconds < 0) return format("-%s", human_seconds(-seconds).c_str());
  if (seconds == 0.0) return "0 s";
  if (seconds < 1e-6) return format("%.1f ns", seconds * 1e9);
  if (seconds < 1e-3) return format("%.2f us", seconds * 1e6);
  if (seconds < 1.0) return format("%.2f ms", seconds * 1e3);
  if (seconds < 100.0) return format("%.2f s", seconds);
  return format("%.0f s", seconds);
}

bool is_c_identifier(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) return false;
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

std::string sanitize_identifier(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (std::isdigit(static_cast<unsigned char>(name[0]))) out.push_back('_');
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_');
  }
  return out;
}

}  // namespace cnn2fpga::util
