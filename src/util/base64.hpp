// Base64 encoding/decoding (RFC 4648, with padding).
//
// Used by the web API to carry binary weight files inside JSON documents —
// the transport for the paper's future-work "train the designed CNN online
// ... provided the dataset for training and testing".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cnn2fpga::util {

std::string base64_encode(const std::vector<std::uint8_t>& bytes);

/// Returns nullopt on invalid input (bad characters, bad padding).
std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text);

}  // namespace cnn2fpga::util
