#include "util/fileio.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::util {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(format("cannot open '%s' for reading", path.c_str()));
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error(format("I/O error while reading '%s'", path.c_str()));
  return buf.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error(format("cannot open '%s' for writing", path.c_str()));
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) throw std::runtime_error(format("I/O error while writing '%s'", path.c_str()));
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  const std::string text = read_file(path);
  return {text.begin(), text.end()};
}

void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::string text(bytes.begin(), bytes.end());
  write_file(path, text);
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw std::runtime_error(format("cannot create directory '%s': %s", path.c_str(),
                                          ec.message().c_str()));
}

std::string make_temp_dir(const std::string& prefix) {
  static std::atomic<unsigned> counter{0};
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const unsigned id = counter.fetch_add(1);
    const auto candidate =
        base / format("%s-%u-%d", prefix.c_str(), id, attempt);
    std::error_code ec;
    if (std::filesystem::create_directories(candidate, ec)) return candidate.string();
  }
  throw std::runtime_error("make_temp_dir: exhausted attempts");
}

}  // namespace cnn2fpga::util
