// Whole-file read/write helpers with error reporting via exceptions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cnn2fpga::util {

/// Read an entire file into a string. Throws std::runtime_error on failure.
std::string read_file(const std::string& path);

/// Write (truncate) a file. Throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& contents);

/// Binary variants.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);
void write_file_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// True if the path exists and is a regular file.
bool file_exists(const std::string& path);

/// Create a directory (and parents). No-op if it already exists.
void make_dirs(const std::string& path);

/// A unique scratch directory under the system temp dir; caller owns cleanup.
std::string make_temp_dir(const std::string& prefix);

}  // namespace cnn2fpga::util
