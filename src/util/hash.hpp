// Incremental FNV-1a (64-bit) content hashing.
//
// The serving registry addresses deployed designs by the hash of their inputs
// (descriptor JSON + weight blob), so identical deploy requests collapse onto
// one cached artifact set. FNV-1a is not cryptographic; it is a fast,
// dependency-free fingerprint with a stable value across platforms, which is
// all a same-process dedup key needs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>

namespace cnn2fpga::util {

class Fnv1a {
 public:
  Fnv1a& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
    return *this;
  }
  Fnv1a& update(std::string_view text) { return update(text.data(), text.size()); }
  Fnv1a& update(std::span<const std::uint8_t> bytes) {
    return update(bytes.data(), bytes.size());
  }

  std::uint64_t digest() const { return state_; }

  /// 16 lowercase hex characters.
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(state_));
    return std::string(buf);
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t state_ = 14695981039346656037ull;
};

}  // namespace cnn2fpga::util
