// Incremental FNV-1a (64-bit) content hashing and CRC-32 checksumming.
//
// The serving registry addresses deployed designs by the hash of their inputs
// (descriptor JSON + weight blob), so identical deploy requests collapse onto
// one cached artifact set. FNV-1a is not cryptographic; it is a fast,
// dependency-free fingerprint with a stable value across platforms, which is
// all a same-process dedup key needs.
//
// CRC-32 (IEEE 802.3, the zlib/zip polynomial) backs the deploy journal's
// per-record checksums: unlike FNV it is designed to detect the corruption a
// torn or bit-rotted on-disk record actually exhibits (burst errors, short
// writes), and its value is verifiable with any external crc32 tool.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <string_view>

namespace cnn2fpga::util {

class Fnv1a {
 public:
  Fnv1a& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
    return *this;
  }
  Fnv1a& update(std::string_view text) { return update(text.data(), text.size()); }
  Fnv1a& update(std::span<const std::uint8_t> bytes) {
    return update(bytes.data(), bytes.size());
  }

  std::uint64_t digest() const { return state_; }

  /// 16 lowercase hex characters.
  std::string hex() const {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(state_));
    return std::string(buf);
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t state_ = 14695981039346656037ull;
};

class Crc32 {
 public:
  Crc32& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < size; ++i) {
      crc = table()[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    }
    state_ = crc;
    return *this;
  }
  Crc32& update(std::string_view text) { return update(text.data(), text.size()); }
  Crc32& update(std::span<const std::uint8_t> bytes) {
    return update(bytes.data(), bytes.size());
  }

  std::uint32_t digest() const { return state_ ^ 0xffffffffu; }

 private:
  static const std::uint32_t* table() {
    // Reflected table for polynomial 0xEDB88320 (IEEE), built once.
    static const auto kTable = [] {
      std::array<std::uint32_t, 256> t{};
      for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[n] = c;
      }
      return t;
    }();
    return kTable.data();
  }

  std::uint32_t state_ = 0xffffffffu;
};

inline std::uint32_t crc32(const void* data, std::size_t size) {
  return Crc32().update(data, size).digest();
}
inline std::uint32_t crc32(std::string_view text) {
  return Crc32().update(text).digest();
}

}  // namespace cnn2fpga::util
