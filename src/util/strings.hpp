// String formatting and manipulation helpers shared across the framework.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cnn2fpga::util {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a single-character delimiter; empty fields preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Case-sensitive prefix / suffix tests.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Join the elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replace every occurrence of `from` with `to` (non-overlapping, left to right).
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

/// Indent every line of `text` by `spaces` spaces (including the first).
std::string indent(std::string_view text, int spaces);

/// Human-readable byte count, e.g. "1.5 KiB".
std::string human_bytes(std::size_t bytes);

/// Seconds rendered with sensible precision, e.g. "0.53 s", "223 s", "1.2 ms".
std::string human_seconds(double seconds);

/// True iff `name` is a valid C identifier (codegen uses this to sanitize
/// user-provided network names).
bool is_c_identifier(std::string_view name);

/// Turn an arbitrary string into a valid C identifier (invalid chars -> '_',
/// leading digit prefixed with '_'; empty input becomes "_").
std::string sanitize_identifier(std::string_view name);

}  // namespace cnn2fpga::util
