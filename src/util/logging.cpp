#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace cnn2fpga::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  if (log_level() > level) return;
  const auto now = std::chrono::system_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now.time_since_epoch()).count();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld.%06lld", static_cast<long long>(us / 1000000),
                static_cast<long long>(us % 1000000));
  std::string line;
  line.reserve(msg.size() + component.size() + 32);
  line.append("[").append(buf).append("] ");
  line.append(log_level_name(level)).append(" ");
  line.append(component).append(": ").append(msg).append("\n");
  std::cerr << line;
}

}  // namespace cnn2fpga::util
