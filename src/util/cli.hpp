// Minimal command-line argument parser used by the example binaries and the
// benchmark harnesses. Supports `--flag`, `--key value`, and `--key=value`.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cnn2fpga::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// True if `--name` appeared (with or without a value).
  bool has(const std::string& name) const;

  /// The value of `--name value` / `--name=value`, if given.
  std::optional<std::string> get(const std::string& name) const;

  /// Typed getters with defaults.
  std::string get_string(const std::string& name, const std::string& fallback) const;
  long get_int(const std::string& name, long fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that were not options (no leading `--`).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace cnn2fpga::util
