#include "util/base64.hpp"

#include <array>

namespace cnn2fpga::util {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return table;
}
}  // namespace

std::string base64_encode(const std::vector<std::uint8_t>& bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= bytes.size()) {
    const std::uint32_t triple = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                                 (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                                 bytes[i + 2];
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3F]);
    out.push_back(kAlphabet[triple & 0x3F]);
    i += 3;
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const std::uint32_t triple = static_cast<std::uint32_t>(bytes[i]) << 16;
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t triple = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                                 (static_cast<std::uint32_t>(bytes[i + 1]) << 8);
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> reverse = build_reverse_table();
  if (text.size() % 4 != 0) return std::nullopt;

  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int padding = 0;
    std::uint32_t triple = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) return std::nullopt;
        ++padding;
        triple <<= 6;
        continue;
      }
      if (padding > 0) return std::nullopt;  // data after '='
      const std::int8_t value = reverse[static_cast<unsigned char>(c)];
      if (value < 0) return std::nullopt;
      triple = (triple << 6) | static_cast<std::uint32_t>(value);
    }
    out.push_back(static_cast<std::uint8_t>((triple >> 16) & 0xFF));
    if (padding < 2) out.push_back(static_cast<std::uint8_t>((triple >> 8) & 0xFF));
    if (padding < 1) out.push_back(static_cast<std::uint8_t>(triple & 0xFF));
  }
  return out;
}

}  // namespace cnn2fpga::util
