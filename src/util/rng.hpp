// Deterministic pseudo-random number generation.
//
// All stochastic components of the framework (weight initialization, synthetic
// dataset rendering, noise injection) draw from this generator so that every
// experiment in EXPERIMENTS.md is exactly reproducible from its seed.
//
// The core generator is xoshiro256** (Blackman & Vigna, 2018): 256-bit state,
// excellent statistical quality, and trivially header-only.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace cnn2fpga::util {

class Rng {
 public:
  /// Seeds the 256-bit state from a 64-bit seed via splitmix64, the
  /// recommended seeding procedure for the xoshiro family.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, 1) as float.
  float next_float() { return static_cast<float>(next_double()); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling; bias is < 2^-64 * n,
    // negligible for every n used in this codebase.
    const __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (both values used alternately).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace cnn2fpga::util
