// 64-byte-aligned allocation.
//
// SIMD kernels (src/nn/kernels) issue aligned 256-bit loads from packed
// panels and benefit from cache-line-aligned activation arenas; std::vector's
// default allocator only guarantees alignof(std::max_align_t) (16 on x86-64).
// AlignedAllocator upgrades any std::vector to a fixed alignment without
// changing its interface, so Tensor storage and ExecutionContext scratch can
// stay ordinary vectors.
#pragma once

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace cnn2fpga::util {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) noexcept {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&, const AlignedAllocator<U, A>&) noexcept {
  return false;
}

/// std::vector with 64-byte-aligned storage (cache line / AVX-512 friendly).
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace cnn2fpga::util
