#include "power/power_model.hpp"

namespace cnn2fpga::power {

double software_power_w(const PowerModel& model) { return model.cpu_active_w; }

double pl_power_w(const hls::ResourceUsage& usage, const PowerModel& model) {
  return model.pl_static_w + model.clock_tree_w +
         model.dsp_w * static_cast<double>(usage.dsp) +
         model.bram18_w * static_cast<double>(usage.bram18) +
         model.lut_w * static_cast<double>(usage.lut) +
         model.ff_w * static_cast<double>(usage.ff);
}

double hardware_power_w(const hls::ResourceUsage& usage, const PowerModel& model) {
  return model.cpu_active_w + model.board_overhead_w + pl_power_w(usage, model);
}

}  // namespace cnn2fpga::power
