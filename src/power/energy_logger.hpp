// Energy integration: the software model of the Voltcraft Energy Logger 4000
// the paper plugs between the wall and the board. Energy is the integral of
// the (piecewise-constant) power trace over time.
#pragma once

#include <vector>

namespace cnn2fpga::power {

class EnergyLogger {
 public:
  /// Record a phase of constant power `watts` lasting `seconds`.
  void add_segment(double watts, double seconds);

  double total_seconds() const { return seconds_; }
  double joules() const { return joules_; }
  /// Time-weighted mean power; 0 for an empty trace.
  double mean_power_w() const;

  std::size_t segment_count() const { return segments_.size(); }

  void reset();

 private:
  struct Segment {
    double watts, seconds;
  };
  std::vector<Segment> segments_;
  double seconds_ = 0.0;
  double joules_ = 0.0;
};

}  // namespace cnn2fpga::power
