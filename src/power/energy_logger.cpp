#include "power/energy_logger.hpp"

#include <stdexcept>

namespace cnn2fpga::power {

void EnergyLogger::add_segment(double watts, double seconds) {
  if (watts < 0.0 || seconds < 0.0) {
    throw std::invalid_argument("EnergyLogger: negative power or duration");
  }
  segments_.push_back({watts, seconds});
  seconds_ += seconds;
  joules_ += watts * seconds;
}

double EnergyLogger::mean_power_w() const {
  return seconds_ > 0.0 ? joules_ / seconds_ : 0.0;
}

void EnergyLogger::reset() {
  segments_.clear();
  seconds_ = 0.0;
  joules_ = 0.0;
}

}  // namespace cnn2fpga::power
