// Power model of the Zedboard/Zybo measurement methodology (paper Sec. V).
//
// The paper measures the *whole board* with an external Voltcraft Energy
// Logger 4000, estimates the reconfigurable-logic share with Vivado's power
// analysis at default settings, and attributes the remainder to the hardwired
// ARM subsystem. We implement the same decomposition:
//
//   software run:  P = P_cpu                         (paper: 2.2 W)
//   hardware run:  P = P_cpu + P_pl_static + P_clk
//                    + P_board_overhead              (regulators, DDR, DMA)
//                    + sum(resource activity terms)  (Vivado-style vector-less
//                                                     estimate from utilization)
//
// The per-resource coefficients are in the range of Xilinx Power Estimator
// figures for 7-series at 100 MHz and default toggle rates; together with the
// fixed terms they land within a few percent of the paper's 4.19-4.37 W
// hardware measurements (see EXPERIMENTS.md).
#pragma once

#include "hls/resources.hpp"

namespace cnn2fpga::power {

struct PowerModel {
  double cpu_active_w = 2.2;        ///< PS + board baseline during computation
  double pl_static_w = 0.12;        ///< 7z020 PL static power
  double clock_tree_w = 0.05;       ///< PL clocking at 100 MHz
  double board_overhead_w = 1.70;   ///< regulators/DDR/DMA activity when PL is used
  double dsp_w = 0.0015;            ///< per active DSP48 slice
  double bram18_w = 0.0015;         ///< per active BRAM18K
  double lut_w = 5e-6;              ///< per logic LUT
  double ff_w = 2e-6;               ///< per flip-flop
};

/// Board power during the software (CPU-only) run.
double software_power_w(const PowerModel& model = {});

/// Board power during the hardware run (CPU orchestrating + PL active).
double hardware_power_w(const hls::ResourceUsage& usage, const PowerModel& model = {});

/// The PL-only share Vivado's power analysis would report (hardware minus
/// CPU and board overhead).
double pl_power_w(const hls::ResourceUsage& usage, const PowerModel& model = {});

}  // namespace cnn2fpga::power
