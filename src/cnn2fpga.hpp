// cnn2fpga -- automated High Level Synthesis of Convolutional Neural Networks.
//
// Umbrella header: include this to get the full public API.
//
//   core/   descriptor -> synthesizable C++ + tcl scripts (the framework)
//   nn/     reference CNN library (forward/backward, trainer, weight files)
//   hls/    Vivado-HLS scheduler/binder simulator (latency + utilization)
//   axi/    Fig. 5 block-design simulation (PS, DMA, interconnect, IP core)
//   cpu/    ARM Cortex-A9 software baseline model
//   power/  board/PL power and energy model
//   data/   synthetic USPS / CIFAR-10 dataset generators
//   web/    HTTP JSON API exposing the generator
//   serve/  inference-serving runtime (registry, micro-batching, metrics)
#pragma once

#include "axi/block_design.hpp"
#include "core/framework.hpp"
#include "cpu/a9_model.hpp"
#include "data/synth_cifar.hpp"
#include "data/synth_usps.hpp"
#include "hls/estimator.hpp"
#include "json/json.hpp"
#include "nn/execution.hpp"
#include "nn/fixed_inference.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"
#include "power/energy_logger.hpp"
#include "power/power_model.hpp"
#include "serve/server.hpp"
#include "serve/shard/journal.hpp"
#include "serve/shard/process.hpp"
#include "serve/shard/router.hpp"
#include "serve/shard/supervisor.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/fileio.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "web/api.hpp"
