// Versioned REST surface (v1) and the uniform JSON error envelope.
//
// Every API endpoint is mounted under /api/v1/... and reports failures as
//   {"error": {"code": "<machine-readable>", "message": "<human>", "detail": ...}}
// with Content-Type: application/json, so clients branch on `code` and log
// `message` without sniffing status-text strings. The pre-versioning /api/...
// aliases are retired: they answer 410 `gone` (uniform envelope) with a
// `Link: <v1 path>; rel="successor-version"` header naming the replacement,
// so a stale client gets a precise migration error instead of a 404.
#pragma once

#include <string>

#include "json/json.hpp"
#include "web/http.hpp"

namespace cnn2fpga::web {

inline constexpr const char* kApiPrefix = "/api/v1";

/// Error codes used across the API (not exhaustive; handlers may add more):
///   bad_json, bad_descriptor, bad_request, shape_mismatch, unknown_design,
///   not_found, method_not_allowed, timeout, gone, payload_too_large,
///   overloaded, deadline_exceeded, design_unavailable, shutdown, internal.
HttpResponse api_error(int status, const std::string& code, const std::string& message,
                       const std::string& detail = "");

/// 200 application/json with the given object as body.
HttpResponse api_ok(json::Object body);

/// Fallback machine-readable code for a bare HTTP status (transport errors).
const char* status_code_slug(int status);

/// Mount `handler` at /api/v1/<suffix>; the retired pre-versioning
/// /api/<suffix> alias answers 410 `gone` with a successor-version Link
/// header. `suffix` must not start with '/'.
void route_api(HttpServer& server, const std::string& method, const std::string& suffix,
               Handler handler);

}  // namespace cnn2fpga::web
