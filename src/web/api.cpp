#include "web/api.hpp"

#include <algorithm>

#include "core/dse.hpp"
#include "core/framework.hpp"
#include "data/synth_cifar.hpp"
#include "data/synth_usps.hpp"
#include "hls/device.hpp"
#include "json/json.hpp"
#include "nn/trainer.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "web/envelope.hpp"

namespace cnn2fpga::web {

using cnn2fpga::util::format;

HttpResponse handle_healthz(const HttpRequest&) {
  return {200, "application/json", "{\"status\":\"ok\"}", {}};
}

HttpResponse handle_index(const HttpRequest&) {
  // The GUI of the paper's Sec. IV-A / Fig. 4, reduced to one embedded page:
  // network-level fields, per-layer configuration rows, board selection, and
  // a generate button that posts the assembled JSON descriptor.
  static const char* kPage = R"HTML(<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>cnn2fpga - CNN to FPGA generator</title>
<style>
  body { font-family: sans-serif; max-width: 64em; margin: 2em auto; }
  fieldset { margin-bottom: 1em; }
  label { display: inline-block; min-width: 11em; }
  .layer { border: 1px solid #999; padding: .5em; margin: .5em 0; }
  pre { background: #f4f4f4; padding: 1em; overflow-x: auto; max-height: 24em; }
</style>
</head>
<body>
<h1>cnn2fpga</h1>
<p>Describe an offline-trained CNN; receive synthesizable C++ and the Vivado
tcl scripts. (Framework of Del Sozzo et al., IPPS 2016.)</p>

<fieldset><legend>Network</legend>
  <label>Name</label><input id="name" value="my_cnn"><br>
  <label>Board</label>
  <select id="board"><option>zedboard</option><option>zybo</option><option>virtex7</option></select><br>
  <label>Input (C x H x W)</label>
  <input id="ic" size="2" value="1"> x <input id="ih" size="2" value="16"> x
  <input id="iw" size="2" value="16"><br>
  <label>Optimize (DATAFLOW+PIPELINE)</label><input id="optimize" type="checkbox" checked><br>
  <label>Weights</label>
  <select id="wmode"><option value="hardcoded">hard-coded</option>
  <option value="streamed">streamed at start-up</option></select>
</fieldset>

<fieldset><legend>Layers</legend>
  <div id="layers"></div>
  <button type="button" onclick="addConv()">+ convolutional layer</button>
  <button type="button" onclick="addLinear()">+ linear layer</button>
</fieldset>

<button type="button" onclick="generate()">Generate</button>
<pre id="result">descriptor and artifacts will appear here</pre>

<script>
const layers = [];
function render() {
  const div = document.getElementById('layers');
  div.innerHTML = '';
  layers.forEach((l, i) => {
    const row = document.createElement('div');
    row.className = 'layer';
    if (l.type === 'conv') {
      row.innerHTML = `conv: feature maps out <input size=3 value="${l.feature_maps_out}"
        onchange="layers[${i}].feature_maps_out=+this.value"> kernel
        <input size=2 value="${l.kernel}" onchange="layers[${i}].kernel=+this.value">
        max-pool <input type=checkbox ${l.pool ? 'checked' : ''}
        onchange="layers[${i}].pool=this.checked?{type:'max',kernel:2,step:2}:null">`;
    } else {
      row.innerHTML = `linear: neurons <input size=3 value="${l.neurons}"
        onchange="layers[${i}].neurons=+this.value"> tanh
        <input type=checkbox ${l.tanh ? 'checked' : ''}
        onchange="layers[${i}].tanh=this.checked">`;
    }
    row.innerHTML += ` <button onclick="layers.splice(${i},1);render()">remove</button>`;
    div.appendChild(row);
  });
}
function addConv() {
  layers.push({type: 'conv', feature_maps_out: 6, kernel: 5,
               pool: {type: 'max', kernel: 2, step: 2}});
  render();
}
function addLinear() { layers.push({type: 'linear', neurons: 10, tanh: false}); render(); }
addConv(); addLinear();

async function generate() {
  const descriptor = {
    name: document.getElementById('name').value,
    board: document.getElementById('board').value,
    optimize: document.getElementById('optimize').checked,
    weights_mode: document.getElementById('wmode').value,
    input: {channels: +document.getElementById('ic').value,
            height: +document.getElementById('ih').value,
            width: +document.getElementById('iw').value},
    layers: layers.map(l => l.pool === null ? {...l, pool: undefined} : l)
  };
  const out = document.getElementById('result');
  out.textContent = 'generating...';
  try {
    const response = await fetch('/api/v1/generate', {
      method: 'POST', headers: {'Content-Type': 'application/json'},
      body: JSON.stringify(descriptor)});
    const body = await response.json();
    if (!response.ok) { out.textContent = 'error: ' + body.error.message; return; }
    out.textContent =
      'latency: ' + body.hls_report.latency_cycles + ' cycles/image\n' +
      'fits ' + body.hls_report.board + ': ' + body.hls_report.fits + '\n' +
      'DSP ' + (100 * body.hls_report.utilization.dsp).toFixed(1) + '%  ' +
      'BRAM ' + (100 * body.hls_report.utilization.bram).toFixed(1) + '%\n' +
      (body.warnings.length ? 'warnings: ' + body.warnings.join('; ') + '\n' : '') +
      '\n----- ' + body.cpp_file + ' -----\n' + body.cpp_source;
  } catch (e) { out.textContent = 'request failed: ' + e; }
}
</script>
</body>
</html>
)HTML";
  return {200, "text/html; charset=utf-8", kPage, {}};
}

HttpResponse handle_boards(const HttpRequest&) {
  json::Array boards;
  for (const hls::FpgaDevice& device : hls::device_catalog()) {
    json::Object entry;
    entry["board"] = device.board;
    entry["part"] = device.part;
    entry["ff"] = device.ff;
    entry["lut"] = device.lut;
    entry["lutram"] = device.lutram;
    entry["bram36"] = device.bram36;
    entry["dsp"] = device.dsp;
    entry["clock_mhz"] = device.clock_mhz;
    boards.push_back(std::move(entry));
  }
  json::Object body;
  body["boards"] = std::move(boards);
  return api_ok(std::move(body));
}

HttpResponse handle_generate(const HttpRequest& request) {
  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  core::NetworkDescriptor descriptor;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
  } catch (const core::DescriptorError& e) {
    return api_error(400, "bad_descriptor", e.what());
  }

  core::GeneratedDesign design;
  try {
    if (const json::Value* weights = doc.find("weights_base64"); weights != nullptr) {
      const auto bytes = util::base64_decode(weights->as_string());
      if (!bytes) return api_error(400, "bad_request", "weights_base64 is not valid base64");
      design = core::Framework::generate_from_weights(descriptor, *bytes);
    } else {
      const std::uint64_t seed = static_cast<std::uint64_t>(doc.get_int("seed", 1));
      design = core::Framework::generate_with_random_weights(descriptor, seed);
    }
  } catch (const std::runtime_error& e) {
    // Weight-file/architecture mismatches are client errors.
    return api_error(400, "bad_request", e.what());
  } catch (const std::exception& e) {
    return api_error(500, "internal", e.what());
  }

  json::Object body;
  body["name"] = descriptor.name;
  body["cpp_file"] = design.cpp_file_name;
  body["cpp_source"] = design.cpp_source;
  json::Object tcl;
  for (const auto& [name, contents] : design.tcl_files) tcl[name] = contents;
  body["tcl_files"] = std::move(tcl);

  json::Object report;
  report["board"] = design.hls_report.device.board;
  report["directives"] = design.hls_report.directives.to_string();
  report["latency_cycles"] = design.hls_report.latency_cycles;
  report["interval_cycles"] = design.hls_report.interval_cycles;
  report["fits"] = design.hls_report.fits();
  json::Object util_obj;
  util_obj["ff"] = design.hls_report.util.ff;
  util_obj["lut"] = design.hls_report.util.lut;
  util_obj["lutram"] = design.hls_report.util.lutram;
  util_obj["bram"] = design.hls_report.util.bram;
  util_obj["dsp"] = design.hls_report.util.dsp;
  report["utilization"] = std::move(util_obj);
  body["hls_report"] = std::move(report);

  json::Array warnings;
  for (const std::string& warning : design.warnings) warnings.push_back(warning);
  body["warnings"] = std::move(warnings);

  return api_ok(std::move(body));
}

HttpResponse handle_train(const HttpRequest& request) {
  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  core::NetworkDescriptor descriptor;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
  } catch (const core::DescriptorError& e) {
    return api_error(400, "bad_descriptor", e.what());
  }

  // Training options.
  const json::Value* train_opts = doc.find("train");
  const json::Value defaults{json::Object{}};
  if (train_opts == nullptr) train_opts = &defaults;
  const std::string dataset = train_opts->get_string("dataset", "usps");
  const std::size_t per_class =
      static_cast<std::size_t>(train_opts->get_int("samples_per_class", 20));
  const std::uint64_t seed = static_cast<std::uint64_t>(train_opts->get_int("seed", 1));

  nn::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(train_opts->get_int("epochs", 6));
  tc.learning_rate = static_cast<float>(train_opts->get_double("learning_rate", 0.005));
  if (tc.epochs == 0 || tc.epochs > 200 || per_class == 0 || per_class > 1000) {
    return api_error(400, "bad_request", "train: epochs must be 1..200, samples_per_class 1..1000");
  }

  // Synthetic corpus selection (Fig. 6 datasets).
  std::vector<nn::Sample> train_set, test_set;
  nn::Shape expected_input;
  if (dataset == "usps") {
    data::UspsConfig config;
    config.samples_per_class = per_class;
    config.seed = seed;
    train_set = data::generate_usps(config).samples;
    config.seed = seed + 1000;
    config.samples_per_class = std::max<std::size_t>(per_class / 2, 1);
    test_set = data::generate_usps(config).samples;
    expected_input = nn::Shape{1, 16, 16};
  } else if (dataset == "cifar10") {
    data::CifarConfig config;
    config.samples_per_class = per_class;
    config.seed = seed;
    train_set = data::generate_cifar(config).samples;
    config.seed = seed + 1000;
    config.samples_per_class = std::max<std::size_t>(per_class / 2, 1);
    test_set = data::generate_cifar(config).samples;
    expected_input = nn::Shape{3, 32, 32};
  } else {
    return api_error(400, "bad_request",
                     format("train: dataset '%s' unknown (usps, cifar10)", dataset.c_str()));
  }

  nn::Network net = descriptor.build_network();
  if (net.input_shape() != expected_input) {
    return api_error(
        400, "shape_mismatch",
        format("train: network input %s does not match dataset '%s' (%s)",
               net.input_shape().to_string().c_str(), dataset.c_str(),
               expected_input.to_string().c_str()));
  }
  if (descriptor.num_classes() != 10) {
    return api_error(400, "bad_request", "train: the synthetic datasets have 10 classes");
  }

  util::Rng rng(seed);
  net.init_weights(rng);
  nn::TrainResult result;
  try {
    result = nn::SgdTrainer(tc).train(net, train_set, test_set);
  } catch (const std::exception& e) {
    return api_error(500, "internal", e.what());
  }

  json::Object body;
  body["name"] = descriptor.name;
  body["dataset"] = dataset;
  body["epochs"] = tc.epochs;
  body["train_error"] = result.final_train_error;
  body["test_error"] = result.final_test_error;
  json::Array losses;
  for (float loss : result.epoch_loss) losses.push_back(loss);
  body["epoch_loss"] = std::move(losses);
  body["weights_base64"] = util::base64_encode(nn::serialize_weights(net));
  return api_ok(std::move(body));
}

HttpResponse handle_explore(const HttpRequest& request) {
  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  core::NetworkDescriptor descriptor;
  core::DseOptions options;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
    options.objective = core::parse_objective(doc.get_string("objective", "throughput"));
  } catch (const core::DescriptorError& e) {
    return api_error(400, "bad_descriptor", e.what());
  }

  const core::DseResult result = core::explore_design_space(descriptor, options);

  json::Object body;
  body["objective"] = core::objective_name(options.objective);
  json::Array points;
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const core::DsePoint& p = result.points[i];
    json::Object entry;
    entry["board"] = p.board;
    entry["optimize"] = p.optimize;
    entry["precision"] = p.precision.name();
    entry["fits"] = p.fits;
    entry["latency_cycles"] = p.latency_cycles;
    entry["images_per_second"] = p.images_per_second;
    entry["power_w"] = p.power_w;
    entry["joules_per_image"] = p.joules_per_image;
    entry["pareto"] = std::find(result.pareto.begin(), result.pareto.end(), i) !=
                      result.pareto.end();
    points.push_back(std::move(entry));
  }
  body["points"] = std::move(points);
  if (result.best) {
    body["recommended"] = result.points[*result.best].label();
  } else {
    body["recommended"] = nullptr;
  }
  return api_ok(std::move(body));
}

void install_api(HttpServer& server) {
  server.route("GET", "/", handle_index);
  server.route("GET", "/healthz", handle_healthz);
  server.route("GET", std::string(kApiPrefix) + "/healthz", handle_healthz);
  route_api(server, "GET", "boards", handle_boards);
  route_api(server, "POST", "generate", handle_generate);
  route_api(server, "POST", "train", handle_train);
  route_api(server, "POST", "explore", handle_explore);
}

}  // namespace cnn2fpga::web
