#include "web/http_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/strings.hpp"

namespace cnn2fpga::web {

using cnn2fpga::util::format;

namespace {

void set_socket_timeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::string host, int port, ClientConfig config)
    : host_(std::move(host)), port_(port), config_(config) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reused_ = false;
}

bool HttpClient::connect_with_timeout() {
  close();
  if (config_.faults != nullptr && config_.faults->enabled()) {
    // Refused connection: fail before a socket even exists.
    if (config_.faults->should_fail("client.connect")) return false;
    // Connect timeout: stall for the armed delay, then fail.
    std::uint64_t stall_us = 0;
    if (config_.faults->should_stall("client.connect", &stall_us)) {
      if (stall_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      return false;
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }

  // Non-blocking connect bounded by poll: a worker that is down must cost at
  // most connect_timeout_ms, not the kernel's minutes-long SYN retry budget.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout = config_.connect_timeout_ms > 0 ? config_.connect_timeout_ms : -1;
    if (::poll(&pfd, 1, timeout) != 1) {
      ::close(fd);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; timeouts bound the I/O
  set_socket_timeout(fd, SO_RCVTIMEO, config_.read_timeout_ms);
  set_socket_timeout(fd, SO_SNDTIMEO, config_.write_timeout_ms);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  fd_ = fd;
  reused_ = false;
  ++connections_opened_;
  return true;
}

std::optional<HttpResponse> HttpClient::try_request(
    const std::string& method, const std::string& path, const std::string& body,
    const std::map<std::string, std::string>& headers) {
  std::string out = format("%s %s HTTP/1.1\r\n", method.c_str(), path.c_str());
  out += format("Host: %s\r\n", host_.c_str());
  out += config_.keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    if (headers.find("Content-Type") == headers.end() &&
        headers.find("content-type") == headers.end()) {
      out += "Content-Type: application/json\r\n";
    }
    out += format("Content-Length: %zu\r\n", body.size());
  }
  out += "\r\n" + body;
  if (config_.faults != nullptr && config_.faults->enabled()) {
    serve::FaultSpec spec;
    if (config_.faults->should_fail("client.send", &spec)) {
      // Torn write: the server really receives the first `bytes` bytes of the
      // request, then the socket slams shut mid-message.
      const std::size_t torn = std::min<std::size_t>(spec.bytes, out.size());
      if (torn > 0) send_all(fd_, out.substr(0, torn));
      close();
      return std::nullopt;
    }
  }
  if (!send_all(fd_, out)) return std::nullopt;
  if (config_.faults != nullptr && config_.faults->enabled()) {
    // The request went out whole, so the server processes it; resetting here
    // means its response hits a closed socket (EPIPE on the server side) and
    // the caller sees a transport failure after doing real work — the
    // nastiest spot for a connection to die.
    std::uint64_t stall_us = 0;
    if (config_.faults->should_stall("client.recv", &stall_us)) {
      if (stall_us > 0) std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
      close();
      return std::nullopt;
    }
    if (config_.faults->should_fail("client.recv")) {
      close();
      return std::nullopt;
    }
  }

  // Read the status line + headers, then exactly Content-Length body bytes
  // (keep-alive requires length framing; the server always emits it). A
  // response with no Content-Length is read to EOF — only valid when the
  // connection is closing anyway.
  std::string data;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20) && header_end == std::string::npos) return std::nullopt;
  }

  HttpResponse response;
  const auto lines = util::split(data.substr(0, header_end), '\n');
  if (lines.empty()) return std::nullopt;
  {
    const auto parts = util::split(std::string(util::trim(lines[0])), ' ');
    if (parts.size() < 2) return std::nullopt;
    response.status = static_cast<int>(std::strtol(parts[1].c_str(), nullptr, 10));
    if (response.status < 100 || response.status > 599) return std::nullopt;
  }
  std::optional<std::size_t> content_length;
  bool server_closes = !config_.keep_alive;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string line(util::trim(lines[i]));
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = util::to_lower(line.substr(0, colon));
    const std::string value(util::trim(line.substr(colon + 1)));
    if (name == "content-type") {
      response.content_type = value;
    } else if (name == "content-length") {
      char* end = nullptr;
      content_length = static_cast<std::size_t>(std::strtoul(value.c_str(), &end, 10));
      if (end == value.c_str()) return std::nullopt;
    } else {
      if (name == "connection" && util::to_lower(value) == "close") server_closes = true;
      response.headers[name] = value;
    }
  }

  std::string payload = data.substr(header_end + 4);
  if (content_length) {
    if (*content_length > config_.max_response_bytes) return std::nullopt;
    while (payload.size() < *content_length) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      payload.append(buf, static_cast<std::size_t>(n));
    }
    response.body = payload.substr(0, *content_length);
  } else {
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0) return std::nullopt;
      if (n == 0) break;
      payload.append(buf, static_cast<std::size_t>(n));
      if (payload.size() > config_.max_response_bytes) return std::nullopt;
    }
    response.body = std::move(payload);
    server_closes = true;
  }

  if (server_closes || !config_.keep_alive) {
    close();
  } else {
    reused_ = true;
  }
  return response;
}

std::optional<HttpResponse> HttpClient::request(
    const std::string& method, const std::string& path, const std::string& body,
    const std::map<std::string, std::string>& headers) {
  // A pooled keep-alive socket may have been closed by the server since the
  // last request; that failure mode gets one silent retry on a fresh
  // connection. A failure on a fresh connection is the real answer.
  const bool retryable = connected() && reused_;
  if (!connected() && !connect_with_timeout()) return std::nullopt;
  if (auto response = try_request(method, path, body, headers)) return response;
  close();
  if (!retryable) return std::nullopt;
  if (!connect_with_timeout()) return std::nullopt;
  auto response = try_request(method, path, body, headers);
  if (!response) close();
  return response;
}

}  // namespace cnn2fpga::web
