// Minimal HTTP/1.1 server and client.
//
// The paper's framework is "a web-application to be easily accessible"
// (Sec. IV-A): an HTML5/JS front-end posting a JSON descriptor to a back-end
// that returns the generated artifacts. This module provides the transport:
// a small blocking HTTP server (one worker thread, connection-per-request)
// and a matching client used by the test suite. Only the subset of HTTP
// needed for the JSON API is implemented: request line, headers,
// Content-Length bodies.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <thread>

namespace cnn2fpga::web {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string path;     ///< "/api/generate"
  std::map<std::string, std::string> headers;  ///< lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using Handler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Route an exact (method, path) pair.
  void route(const std::string& method, const std::string& path, Handler handler);

  /// Bind to 127.0.0.1:`port` (0 = ephemeral) and serve on a background
  /// thread. Returns the bound port. Throws std::runtime_error on failure.
  int start(int port = 0);

  /// Stop serving and join the worker thread. Idempotent.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void serve_loop();
  HttpResponse dispatch(const HttpRequest& request) const;

  std::map<std::pair<std::string, std::string>, Handler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread worker_;
};

/// Blocking single-request client (test utility).
std::optional<HttpResponse> http_request(const std::string& host, int port,
                                         const std::string& method, const std::string& path,
                                         const std::string& body = "",
                                         const std::string& content_type = "application/json");

}  // namespace cnn2fpga::web
