// Minimal HTTP/1.1 server and client.
//
// The paper's framework is "a web-application to be easily accessible"
// (Sec. IV-A): an HTML5/JS front-end posting a JSON descriptor to a back-end
// that returns the generated artifacts. This module provides the transport:
// an accept thread feeding a fixed pool of handler threads (so a slow or
// blocking request — e.g. a predict waiting on the batcher — does not stall
// the rest of the traffic) and a matching client used by the test suite.
// Only the subset of HTTP needed for the JSON API is implemented: request
// line, headers, Content-Length bodies.
//
// Robustness: malformed request lines answer 400 instead of silently closing
// the connection, bodies over `max_body_bytes` answer 413, a client that
// stalls mid-request is cut off by a per-connection read timeout (408), and a
// slow reader that accepts a response slower than the kernel send buffer
// drains is cut off by a per-connection send timeout — so neither direction
// of a stalled socket can pin a handler thread.
//
// Keep-alive: a request carrying `Connection: keep-alive` keeps the socket
// open for further requests (bounded by `keep_alive_timeout_ms` between
// them) — the transport the shard router's per-worker connection pool rides
// on (src/serve/shard). Clients that say nothing, or say `close`, get the
// historical one-request-per-connection behavior.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace cnn2fpga::web {

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string path;     ///< "/api/v1/generate"
  std::map<std::string, std::string> headers;  ///< lower-cased keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (beyond Content-Type/Length). The server emits
  /// them verbatim; the client parses all received headers here with
  /// lower-cased keys.
  std::map<std::string, std::string> headers;
};

using Handler = std::function<HttpResponse(const HttpRequest&)>;

struct ServerConfig {
  std::size_t handler_threads = 4;          ///< concurrent request handlers
  std::size_t max_body_bytes = 16u << 20;   ///< larger bodies answer 413
  int read_timeout_ms = 5000;               ///< per-connection recv timeout (408)
  int write_timeout_ms = 5000;              ///< per-connection send timeout
                                            ///< (slow readers are dropped)
  /// Idle wait for the next request on a kept-alive connection before the
  /// server closes it (a quiet close, not a 408 — keep-alive expiry is
  /// normal). Clients opt in per request with `Connection: keep-alive`.
  int keep_alive_timeout_ms = 5000;
  int backlog = 64;                         ///< listen(2) backlog
  /// Also set SO_REUSEPORT before binding. Worker processes restarted by the
  /// shard supervisor use this to bind a port their parent keeps reserved
  /// (serve/shard ReservedPort), so a restart can never lose the port to an
  /// unrelated ephemeral bind.
  bool reuse_port = false;
};

class HttpServer {
 public:
  HttpServer() = default;
  explicit HttpServer(ServerConfig config) : config_(config) {}
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Route an exact (method, path) pair. Not safe to call while running.
  void route(const std::string& method, const std::string& path, Handler handler);

  /// Bind to 127.0.0.1:`port` (0 = ephemeral) and serve on background
  /// threads (one acceptor + `handler_threads` handlers). Returns the bound
  /// port. Throws std::runtime_error on failure.
  int start(int port = 0);

  /// Stop accepting, serve the already-accepted connections, join all
  /// threads. Idempotent; the server can be start()ed again afterwards.
  void stop();

  int port() const { return port_; }
  bool running() const { return running_.load(); }
  const ServerConfig& config() const { return config_; }

 private:
  void accept_loop();
  void handler_loop();
  void handle_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request) const;

  ServerConfig config_;
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  /// Atomic: stop() closes/invalidates the fd while accept_loop() reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  std::mutex conn_mutex_;
  std::condition_variable conn_cv_;
  std::deque<int> conn_queue_;  ///< accepted fds awaiting a handler
  bool draining_ = false;       ///< stop requested; finish queued connections
  /// Kept-alive connections blocked waiting for their *next* request. stop()
  /// shuts their read side down so an idle peer cannot delay shutdown by the
  /// keep-alive timeout; in-flight requests still complete normally.
  std::set<int> idle_fds_;
};

/// Blocking single-request client (test utility).
std::optional<HttpResponse> http_request(const std::string& host, int port,
                                         const std::string& method, const std::string& path,
                                         const std::string& body = "",
                                         const std::string& content_type = "application/json");

}  // namespace cnn2fpga::web
