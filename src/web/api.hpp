// REST API of the cnn2fpga web application.
//
// Routes (mirroring the paper's Fig. 3 workflow — GUI posts the descriptor,
// back-end wrappers return the C++ source and the tcl scripts):
//   GET  /               -> the HTML5/JS GUI (paper Sec. IV-A: "client-side
//                           was implemented in HTML5 and Javascript"); a
//                           single embedded page with the Fig. 4 layer
//                           options that posts to /api/v1/generate
//   GET  /healthz        -> {"status": "ok"}
//   GET  /api/v1/boards     -> supported platforms with resource budgets
//   POST /api/v1/generate ->  body: network descriptor JSON; weights come from
//                           "weights_base64" (a CNN2FPGAW1 weight file, e.g.
//                           from /api/v1/train) or, absent that, from a "seed"
//                           for random-weight generation (paper Test 4);
//                           response: generated artifacts, HLS summary,
//                           warnings.
//   POST /api/v1/train    ->  the paper's future-work "train the designed CNN
//                           online ... provided the dataset": body is a
//                           descriptor plus {"train": {"dataset":
//                           "usps"|"cifar10", "samples_per_class", "epochs",
//                           "learning_rate", "seed"}}; trains on the
//                           synthetic corpus and returns train/test error and
//                           the weight file as base64, ready to feed back to
//                           /api/v1/generate.
#pragma once

#include "web/http.hpp"

namespace cnn2fpga::web {

/// Install the API routes on a server.
void install_api(HttpServer& server);

/// Handlers exposed for direct (transport-free) testing.
HttpResponse handle_index(const HttpRequest& request);
HttpResponse handle_healthz(const HttpRequest& request);
HttpResponse handle_boards(const HttpRequest& request);
HttpResponse handle_generate(const HttpRequest& request);
HttpResponse handle_train(const HttpRequest& request);
/// POST /api/v1/explore: automated design-space exploration over boards x
/// directives x precision; body is a descriptor plus an optional
/// "objective": "throughput"|"energy"|"latency".
HttpResponse handle_explore(const HttpRequest& request);

}  // namespace cnn2fpga::web
