// Reusable HTTP/1.1 client with connect/read/write timeouts and keep-alive.
//
// The server half of web/http has always been hardened (read/write timeouts,
// bounded bodies); the client half used to be a one-shot test utility that
// hand-rolled a socket per request and blocked without any timeout. The shard
// router (src/serve/shard) needs the opposite: a persistent, timeout-bounded
// connection per worker that survives many requests — a dead worker must
// surface as a prompt transport error, never as a wedged router thread. This
// class is that client; the legacy `http_request` helper is now a thin
// wrapper over a non-persistent instance.
//
// Keep-alive: when `ClientConfig.keep_alive` is set, requests carry
// `Connection: keep-alive` and the socket is reused for the next request as
// long as the server agrees (the HttpServer side honors the header). A stale
// pooled connection (the server closed between requests) is detected on the
// next use and retried once on a fresh socket, so callers see at most one
// reconnect — not an error — for ordinary keep-alive churn.
//
// Transport chaos: when `ClientConfig.faults` points at a FaultInjector, the
// client consults the `client.connect` / `client.send` / `client.recv` sites
// (see serve/fault.hpp) and breaks its own real socket accordingly — a torn
// write sends a genuine partial request before closing, a recv reset closes
// after the server started answering — so failover, keep-alive retry and
// health demotion upstream are exercised by actual broken connections.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "serve/fault.hpp"
#include "web/http.hpp"

namespace cnn2fpga::web {

struct ClientConfig {
  int connect_timeout_ms = 2000;  ///< non-blocking connect bound
  int read_timeout_ms = 5000;     ///< SO_RCVTIMEO on the connected socket
  int write_timeout_ms = 5000;    ///< SO_SNDTIMEO on the connected socket
  bool keep_alive = false;        ///< persist the connection across requests
  std::size_t max_response_bytes = 64u << 20;  ///< reject larger responses
  /// Optional chaos hook (not owned; must outlive the client). The client.*
  /// sites fire only through this pointer — a null injector costs nothing.
  serve::FaultInjector* faults = nullptr;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port, ClientConfig config = {});
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One request-response round trip. Returns std::nullopt on any transport
  /// failure (connect/send/recv timeout, refused connection, malformed
  /// response); HTTP-level errors come back as a parsed HttpResponse with
  /// their status. `headers` are emitted verbatim (Content-Type and
  /// Content-Length are always set when a body is present).
  std::optional<HttpResponse> request(const std::string& method, const std::string& path,
                                      const std::string& body = "",
                                      const std::map<std::string, std::string>& headers = {});

  /// Drop the persistent connection (no-op when not connected). The next
  /// request reconnects.
  void close();

  bool connected() const { return fd_ >= 0; }
  const std::string& host() const { return host_; }
  int port() const { return port_; }
  const ClientConfig& config() const { return config_; }
  /// Sockets opened over the client's lifetime — 1 for an arbitrarily long
  /// keep-alive session; the observable that keep-alive actually works.
  std::uint64_t connections_opened() const { return connections_opened_; }

 private:
  bool connect_with_timeout();
  /// Single attempt on the current socket. `*io_error` reports a transport
  /// failure (as opposed to a clean parse of an HTTP error response).
  std::optional<HttpResponse> try_request(const std::string& method, const std::string& path,
                                          const std::string& body,
                                          const std::map<std::string, std::string>& headers);

  const std::string host_;
  const int port_;
  const ClientConfig config_;
  int fd_ = -1;
  bool reused_ = false;  ///< current socket already served >= 1 request
  std::uint64_t connections_opened_ = 0;
};

}  // namespace cnn2fpga::web
