#include "web/envelope.hpp"

namespace cnn2fpga::web {

HttpResponse api_error(int status, const std::string& code, const std::string& message,
                       const std::string& detail) {
  json::Object error;
  error["code"] = code;
  error["message"] = message;
  if (detail.empty()) {
    error["detail"] = nullptr;
  } else {
    error["detail"] = detail;
  }
  json::Object body;
  body["error"] = std::move(error);
  return {status, "application/json", json::Value(std::move(body)).dump(), {}};
}

HttpResponse api_ok(json::Object body) {
  return {200, "application/json", json::Value(std::move(body)).dump(), {}};
}

const char* status_code_slug(int status) {
  switch (status) {
    case 400: return "bad_request";
    case 404: return "not_found";
    case 405: return "method_not_allowed";
    case 408: return "timeout";
    case 410: return "gone";
    case 413: return "payload_too_large";
    case 429: return "overloaded";
    case 500: return "internal";
    case 503: return "unavailable";
    case 504: return "deadline_exceeded";
    default: return "error";
  }
}

void route_api(HttpServer& server, const std::string& method, const std::string& suffix,
               Handler handler) {
  const std::string v1_path = std::string(kApiPrefix) + "/" + suffix;
  server.route(method, v1_path, std::move(handler));
  // Retired pre-versioning alias: 410 with the successor pointer. Handlers
  // never run here — the tombstone exists so a stale client gets a precise
  // migration error instead of a generic 404.
  server.route(method, "/api/" + suffix, [v1_path](const HttpRequest&) {
    HttpResponse response =
        api_error(410, "gone",
                  "the unversioned /api/... routes were retired; use " + v1_path);
    response.headers["Link"] = "<" + v1_path + ">; rel=\"successor-version\"";
    return response;
  });
}

}  // namespace cnn2fpga::web
