#include "web/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "web/envelope.hpp"
#include "web/http_client.hpp"

namespace cnn2fpga::web {

using cnn2fpga::util::format;

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

/// What reading one request produced: either a parsed request, or the error
/// status the connection is owed (0 = the peer vanished before sending
/// anything; no response can be delivered).
struct ReadOutcome {
  std::optional<HttpRequest> request;
  int error_status = 0;
};

ReadOutcome error_outcome(int status) { return {std::nullopt, status}; }

/// Read until the full header block (and Content-Length body) has arrived.
/// The socket carries SO_RCVTIMEO, so a stalled client surfaces as
/// EAGAIN/EWOULDBLOCK and is answered with 408 instead of pinning a handler.
/// On a kept-alive connection (`first == false`) a timeout before the first
/// byte of the next request is ordinary idle expiry, not a protocol error —
/// the connection is closed without a response.
ReadOutcome read_request(int fd, const ServerConfig& config, bool first) {
  std::string data;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      if (timed_out && !first && data.empty()) return error_outcome(0);  // idle expiry
      return error_outcome(timed_out ? 408 : 0);
    }
    if (n == 0) return error_outcome(data.empty() ? 0 : 400);  // truncated request
    data.append(buf, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) return error_outcome(413);  // oversized headers
  }

  HttpRequest request;
  const std::string head = data.substr(0, header_end);
  const auto lines = util::split(head, '\n');
  if (lines.empty()) return error_outcome(400);
  {
    // Request line: METHOD SP TARGET SP HTTP-VERSION.
    const auto parts = util::split(std::string(util::trim(lines[0])), ' ');
    if (parts.size() != 3 || parts[0].empty() || parts[1].empty() ||
        !util::starts_with(parts[2], "HTTP/")) {
      return error_outcome(400);
    }
    request.method = parts[0];
    request.path = parts[1];
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string line(util::trim(lines[i]));
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    request.headers[util::to_lower(line.substr(0, colon))] =
        std::string(util::trim(line.substr(colon + 1)));
  }

  std::size_t content_length = 0;
  if (const auto it = request.headers.find("content-length"); it != request.headers.end()) {
    char* end = nullptr;
    content_length = static_cast<std::size_t>(std::strtoul(it->second.c_str(), &end, 10));
    if (end == it->second.c_str()) return error_outcome(400);
    if (content_length > config.max_body_bytes) return error_outcome(413);
  }

  std::string body = data.substr(header_end + 4);
  if (body.size() > config.max_body_bytes) return error_outcome(413);
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      return error_outcome(errno == EAGAIN || errno == EWOULDBLOCK ? 408 : 400);
    }
    if (n == 0) return error_outcome(400);  // body truncated by the peer
    body.append(buf, static_cast<std::size_t>(n));
    if (body.size() > config.max_body_bytes) return error_outcome(413);
  }
  request.body = body.substr(0, content_length);
  return {std::move(request), 0};
}

void write_response(int fd, const HttpResponse& response, bool keep_alive = false) {
  std::string out = format("HTTP/1.1 %d %s\r\n", response.status, status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += format("Content-Length: %zu\r\n", response.body.size());
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n" : "Connection: close\r\n\r\n";
  out += response.body;
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path, Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

int HttpServer::start(int port) {
  if (running_.load()) throw std::runtime_error("HttpServer already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("HttpServer: socket() failed");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Joining a SO_REUSEPORT group lets this server bind a port that a
  // supervisor parent holds reserved with its own (never-listening)
  // SO_REUSEPORT socket — see serve/shard/process.hpp ReservedPort.
  if (config_.reuse_port) ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error(format("HttpServer: bind to port %d failed", port));
  }
  if (::listen(fd, config_.backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpServer: listen() failed");
  }

  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd);

  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    draining_ = false;
  }
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  const std::size_t pool = config_.handler_threads == 0 ? 1 : config_.handler_threads;
  handlers_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  LOG_INFO("http") << format("serving on 127.0.0.1:%d (%zu handler threads)", port_, pool);
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Shutting the listening socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    draining_ = true;  // handlers finish the queued connections, then exit
    // Unblock handlers parked in an idle keep-alive wait: shutting the read
    // side makes their recv return 0 (a quiet close). In-flight requests are
    // untouched — only connections between requests are cut.
    for (const int idle_fd : idle_fds_) ::shutdown(idle_fd, SHUT_RD);
  }
  conn_cv_.notify_all();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int client = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (client < 0) {
      if (!running_.load()) break;
      continue;
    }
    if (config_.read_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = config_.read_timeout_ms / 1000;
      tv.tv_usec = (config_.read_timeout_ms % 1000) * 1000;
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    if (config_.write_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = config_.write_timeout_ms / 1000;
      tv.tv_usec = (config_.write_timeout_ms % 1000) * 1000;
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_queue_.push_back(client);
    }
    conn_cv_.notify_one();
  }
}

void HttpServer::handler_loop() {
  while (true) {
    int client = -1;
    {
      std::unique_lock<std::mutex> lock(conn_mutex_);
      conn_cv_.wait(lock, [this] { return draining_ || !conn_queue_.empty(); });
      if (conn_queue_.empty()) return;  // draining and nothing left
      client = conn_queue_.front();
      conn_queue_.pop_front();
    }
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int fd) {
  bool first = true;
  while (true) {
    if (!first) {
      // Arm the idle wait: the shorter keep-alive timeout replaces the
      // request read timeout between requests, and the fd is registered so
      // stop() can unblock the recv instead of waiting the timeout out.
      {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        if (draining_ || !running_.load()) break;
        idle_fds_.insert(fd);
      }
      if (config_.keep_alive_timeout_ms > 0) {
        timeval tv{};
        tv.tv_sec = config_.keep_alive_timeout_ms / 1000;
        tv.tv_usec = (config_.keep_alive_timeout_ms % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      }
    }
    const ReadOutcome outcome = read_request(fd, config_, first);
    if (!first) {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      idle_fds_.erase(fd);
    }
    if (!outcome.request) {
      if (outcome.error_status != 0) {
        const int status = outcome.error_status;
        write_response(fd, api_error(status, status_code_slug(status), status_text(status)));
      }
      return;
    }
    // Keep-alive is opt-in per request; a stopping server always closes.
    const auto connection = outcome.request->headers.find("connection");
    const bool keep_alive = connection != outcome.request->headers.end() &&
                            util::to_lower(connection->second) == "keep-alive" &&
                            running_.load();
    HttpResponse response;
    try {
      response = dispatch(*outcome.request);
    } catch (const std::exception& e) {
      response = api_error(500, "internal", "unhandled exception in handler", e.what());
    }
    write_response(fd, response, keep_alive);
    if (!keep_alive) return;
    first = false;
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it != routes_.end()) return it->second(request);

  // Distinguish 405 from 404 for a known path with the wrong method.
  for (const auto& [key, handler] : routes_) {
    if (key.second == request.path) {
      return api_error(405, "method_not_allowed",
                       format("%s not allowed for %s", request.method.c_str(),
                              request.path.c_str()));
    }
  }
  return api_error(404, "not_found",
                   format("no route for %s %s", request.method.c_str(), request.path.c_str()));
}

std::optional<HttpResponse> http_request(const std::string& host, int port,
                                         const std::string& method, const std::string& path,
                                         const std::string& body,
                                         const std::string& content_type) {
  // One-shot convenience over the reusable client (web/http_client.hpp).
  // Timeouts are generous — this is the test/demo helper, not the router's
  // latency-sensitive path — but no longer absent: a dead server costs
  // seconds, not forever.
  ClientConfig config;
  config.connect_timeout_ms = 5000;
  config.read_timeout_ms = 30000;
  config.write_timeout_ms = 30000;
  config.keep_alive = false;
  HttpClient client(host, port, config);
  std::map<std::string, std::string> headers;
  if (!body.empty()) headers["Content-Type"] = content_type;
  return client.request(method, path, body, headers);
}

}  // namespace cnn2fpga::web
