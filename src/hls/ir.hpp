// Intermediate representation the HLS simulator schedules and binds.
//
// A generated network is a *sequence of task blocks* (the paper Sec. IV-A:
// "a sequence of blocks of instructions corresponding to the layers"), each a
// perfect loop nest with a fixed body. The innermost `reduction_levels` loops
// form the accumulation (kernel window and input channels for a convolution);
// under the HLS PIPELINE directive those loops are flattened and initiate one
// body per II cycles — exactly Vivado HLS's behaviour when the paper applies
// "HLS PIPELINE ... to the inner loop of convolutional layer".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hls/op_costs.hpp"

namespace cnn2fpga::hls {

/// A statically-sized on-chip array (weights, biases, inter-layer buffer).
struct ArrayDecl {
  std::string name;
  std::uint64_t depth = 0;  ///< elements
  int width_bits = 32;      ///< float32 throughout (paper Sec. V)
  bool ping_pong = false;   ///< doubled under DATAFLOW (channel between tasks)
  bool is_rom = false;      ///< weights/biases: initialized, read-only

  std::uint64_t bits() const { return depth * static_cast<std::uint64_t>(width_bits); }
};

/// One loop nest. trips[0] is the outermost loop.
struct LoopNest {
  std::vector<std::uint64_t> trips;
  std::size_t reduction_levels = 0;  ///< innermost loops flattened by PIPELINE

  std::uint64_t total_iterations() const {
    std::uint64_t n = 1;
    for (std::uint64_t t : trips) n *= t;
    return trips.empty() ? 0 : n;
  }
  /// Iterations of the non-reduction (outer) part; 1 if everything is reduction.
  std::uint64_t outer_iterations() const {
    std::uint64_t n = 1;
    for (std::size_t i = 0; i + reduction_levels < trips.size(); ++i) n *= trips[i];
    return n;
  }
  /// Iterations of the flattened reduction part.
  std::uint64_t reduction_iterations() const {
    std::uint64_t n = 1;
    for (std::size_t i = trips.size() - reduction_levels; i < trips.size(); ++i) n *= trips[i];
    return n;
  }
};

/// One layer's hardware block.
struct TaskBlock {
  std::string name;       ///< e.g. "conv0", "stream_in"
  LoopNest loops;
  OpCounts body;          ///< ops per innermost iteration
  OpCounts per_output;    ///< ops once per outer (non-reduction) iteration
  std::vector<ArrayDecl> arrays;  ///< arrays owned by this block (weights + output buffer)
  bool pipelined = false; ///< HLS PIPELINE applied to the reduction loops
};

/// Directive configuration (paper Sec. V-B: HLS DATAFLOW + HLS PIPELINE).
struct DirectiveSet {
  bool pipeline = false;  ///< pipeline the inner (reduction) loops of every block
  bool dataflow = false;  ///< task-level pipelining: blocks overlap across inputs

  static DirectiveSet naive() { return {false, false}; }
  static DirectiveSet optimized() { return {true, true}; }

  std::string to_string() const;
};

/// A whole design: the CNN IP core as a list of task blocks.
struct HlsDesign {
  std::string name;
  DirectiveSet directives;
  std::vector<TaskBlock> blocks;

  std::uint64_t total_array_bits() const;
};

}  // namespace cnn2fpga::hls
