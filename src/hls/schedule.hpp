// Latency scheduler of the HLS simulator.
//
// Computes, per task block and for the whole design, the cycle counts Vivado
// HLS would report:
//   - naive blocks execute the body as a dependence chain once per innermost
//     iteration plus per-iteration loop overhead;
//   - PIPELINEd blocks flatten the reduction loops and initiate one body
//     every II cycles, paying the pipeline depth once per outer iteration;
//   - without DATAFLOW the design processes one input in sum(block latencies)
//     cycles and cannot overlap consecutive inputs;
//   - with DATAFLOW consecutive inputs overlap at an interval of
//     max(block latency) (ping-pong channel buffers between tasks).
#pragma once

#include <cstdint>

#include "hls/ir.hpp"

namespace cnn2fpga::hls {

/// Cycles for one invocation of a block.
std::uint64_t block_latency(const TaskBlock& block);

/// Cycles from input arrival to classification for a single image.
std::uint64_t design_latency(const HlsDesign& design);

/// Steady-state cycles between consecutive classifications when inputs are
/// streamed back-to-back. Equals design_latency without DATAFLOW.
std::uint64_t design_interval(const HlsDesign& design);

/// Total cycles to classify `count` back-to-back images.
std::uint64_t batch_latency(const HlsDesign& design, std::uint64_t count);

/// Cycle count converted to seconds at the given clock.
double cycles_to_seconds(std::uint64_t cycles, double clock_mhz);

}  // namespace cnn2fpga::hls
