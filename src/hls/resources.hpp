// Resource binder of the HLS simulator.
//
// Produces the utilization figures of the paper's Table II: flip-flops, logic
// LUTs, memory LUTs (distributed RAM / SRL), BRAM and DSP slices. The binding
// rules mirror Vivado HLS 2015.2 defaults:
//   - one operator instance per op kind per occurrence in a block's body
//     (no sharing across task blocks — each layer is its own code block);
//   - arrays below a size threshold implement in distributed RAM (memory
//     LUTs), larger ones in BRAM18K units (512 x 32-bit words each);
//   - DATAFLOW doubles inter-task channel buffers (ping-pong);
//   - PIPELINE adds flattened-loop control and operand-mux logic.
#pragma once

#include <cstdint>
#include <string>

#include "hls/device.hpp"
#include "hls/ir.hpp"

namespace cnn2fpga::hls {

struct ResourceUsage {
  std::uint64_t ff = 0;
  std::uint64_t lut = 0;
  std::uint64_t lutram = 0;  ///< "Memory LUT" column of Table II
  std::uint64_t bram18 = 0;  ///< BRAM18K units (2 per BRAM36)
  std::uint64_t dsp = 0;

  ResourceUsage& operator+=(const ResourceUsage& other);
  friend ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) { return a += b; }
  bool operator==(const ResourceUsage&) const = default;
};

/// Utilization fractions (0..1) of a usage against a device's budget.
struct Utilization {
  double ff = 0, lut = 0, lutram = 0, bram = 0, dsp = 0;

  /// Highest utilization across the five resources.
  double worst() const;
  /// True iff every resource fits (utilization <= 1).
  bool fits() const { return worst() <= 1.0; }
};

Utilization utilization(const ResourceUsage& usage, const FpgaDevice& device);

/// Resources consumed by one task block (operators + control + its arrays).
ResourceUsage bind_block(const TaskBlock& block, bool dataflow);

/// Whole-design binding: all blocks plus the AXI4-Stream interface adapters.
ResourceUsage bind_design(const HlsDesign& design);

/// Memory footprint helpers (exposed for tests).
std::uint64_t array_bram18(const ArrayDecl& array, bool dataflow);
std::uint64_t array_lutram(const ArrayDecl& array, bool dataflow);
/// Arrays at or below this bit count implement in distributed RAM.
constexpr std::uint64_t kLutramThresholdBits = 2048;

}  // namespace cnn2fpga::hls
