#include "hls/device.hpp"

#include "util/strings.hpp"

namespace cnn2fpga::hls {

const std::vector<FpgaDevice>& device_catalog() {
  static const std::vector<FpgaDevice> catalog = {
      // Zybo: Zynq XC7Z010 (paper Sec. IV: first supported platform).
      {"zybo", "xc7z010clg400-1", 35200, 17600, 6000, 60, 80, 100.0},
      // Zedboard: Zynq XC7Z020 (paper Sec. V evaluation board; Table II totals).
      {"zedboard", "xc7z020clg484-1", 106400, 53200, 17400, 140, 220, 100.0},
      // Virtex-7 (paper Sec. VI future work): XC7VX485T as on the VC707.
      {"virtex7", "xc7vx485tffg1761-2", 607200, 303600, 130800, 1030, 2800, 100.0},
  };
  return catalog;
}

std::optional<FpgaDevice> find_device(const std::string& board) {
  const std::string lower = util::to_lower(board);
  for (const FpgaDevice& d : device_catalog()) {
    if (d.board == lower) return d;
  }
  return std::nullopt;
}

const FpgaDevice& zedboard() { return device_catalog()[1]; }
const FpgaDevice& zybo() { return device_catalog()[0]; }

}  // namespace cnn2fpga::hls
