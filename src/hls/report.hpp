// HLS synthesis report: the simulator's equivalent of Vivado HLS's
// post-synthesis latency and utilization summary.
#pragma once

#include <string>
#include <vector>

#include "hls/device.hpp"
#include "hls/ir.hpp"
#include "hls/resources.hpp"

namespace cnn2fpga::hls {

struct BlockReport {
  std::string name;
  std::uint64_t latency_cycles = 0;
  ResourceUsage usage;
};

struct HlsReport {
  std::string design_name;
  FpgaDevice device;
  DirectiveSet directives;

  std::vector<BlockReport> blocks;
  std::uint64_t latency_cycles = 0;   ///< single-image latency
  std::uint64_t interval_cycles = 0;  ///< steady-state initiation interval
  /// One-time parameter upload cost (streamed-weights designs only; 0 for
  /// the paper's hard-coded mode).
  std::uint64_t weight_load_cycles = 0;
  ResourceUsage usage;
  Utilization util;

  /// Single-image latency in seconds at the device clock.
  double latency_seconds() const;
  /// Steady-state per-image interval in seconds.
  double interval_seconds() const;
  /// True iff the design fits the device.
  bool fits() const { return util.fits(); }
  /// Names of resources that exceed the device budget (empty if fits).
  std::vector<std::string> overflowing_resources() const;

  /// Multi-line human-readable report (per-block table + utilization).
  std::string to_string() const;
};

}  // namespace cnn2fpga::hls
