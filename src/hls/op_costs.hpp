// Operator cost table of the HLS simulator.
//
// Latencies and resource footprints model the Xilinx LogiCORE Floating-Point
// Operator (v7.x) single-precision cores as configured by Vivado HLS 2015.2
// for a 7-series device at a 10 ns clock — the toolchain the paper used.
// The exact figures vary with the core's "DSP usage" knob; the values below
// are the medium/full-usage points and are the single calibration surface of
// the latency/resource model (see DESIGN.md Sec. 5).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cnn2fpga::hls {

enum class OpKind {
  kFAdd,   ///< float add/sub
  kFMul,   ///< float multiply
  kFDiv,   ///< float divide
  kFCmp,   ///< float compare (max-pool, argmax)
  kFExp,   ///< float exponential (LogSoftMax, sigmoid/tanh cores)
  kFLog,   ///< float natural log (LogSoftMax)
  kLoad,   ///< BRAM read
  kStore,  ///< BRAM write
  kStream, ///< AXI4-Stream push/pop
  kIntOp,  ///< integer add/compare (loop bookkeeping beyond the base overhead)
  kIMul,   ///< fixed-point multiply (one DSP48 for <=18x25-bit operands)
};

struct OpCost {
  int latency;  ///< pipeline depth in cycles at 100 MHz
  int dsp;      ///< DSP48E1 slices per instance
  int lut;      ///< logic LUTs per instance
  int ff;       ///< flip-flops per instance
  int lutram;   ///< SRL/distributed-RAM LUTs per instance (pipeline balancing)
};

/// Cost of one operator instance.
const OpCost& op_cost(OpKind kind);

const char* op_name(OpKind kind);

/// Multiset of operation counts (ops per loop-body iteration).
using OpCounts = std::map<OpKind, int>;

/// Latency of executing the counted ops as a dependence chain (the naive,
/// unpipelined schedule Vivado HLS produces without directives): operators
/// of the same kind execute back-to-back, different kinds chain.
int chain_latency(const OpCounts& ops);

/// Scheduling constants (see DESIGN.md Sec. 5 for the derivation).
struct ScheduleConstants {
  int loop_overhead = 2;       ///< enter/exit + index increment per naive iteration
  int pipeline_overhead = 3;   ///< per-invocation control overhead of a pipelined region
  int region_overhead = 4;     ///< FSM transition between task blocks
  int pipeline_ii = 1;         ///< achieved initiation interval of pipelined loops
};
const ScheduleConstants& schedule_constants();

}  // namespace cnn2fpga::hls
