#include "hls/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace cnn2fpga::hls {

std::uint64_t block_latency(const TaskBlock& block) {
  const ScheduleConstants& k = schedule_constants();
  const std::uint64_t inner = block.loops.total_iterations();
  const std::uint64_t outer = block.loops.outer_iterations();
  if (inner == 0) return k.region_overhead;

  const int body_chain = chain_latency(block.body);
  const int output_chain = chain_latency(block.per_output);

  if (!block.pipelined) {
    // Sequential schedule: every innermost iteration pays the full dependence
    // chain plus loop bookkeeping; every outer iteration additionally pays the
    // per-output epilogue (bias set-up, store, ...).
    return inner * static_cast<std::uint64_t>(body_chain + k.loop_overhead) +
           outer * static_cast<std::uint64_t>(output_chain + 1) + k.region_overhead;
  }

  // PIPELINE applied to the (flattened) reduction loops. If the nest has no
  // reduction levels the whole nest is flattened (Vivado HLS loop_flatten),
  // matching e.g. the AXI-Stream reader running at II=1.
  std::uint64_t reduction = block.loops.reduction_iterations();
  std::uint64_t effective_outer = outer;
  if (block.loops.reduction_levels == 0) {
    reduction = inner;
    effective_outer = 1;
  }
  const std::uint64_t per_invocation =
      reduction * static_cast<std::uint64_t>(k.pipeline_ii) +
      static_cast<std::uint64_t>(body_chain) +  // pipeline fill/drain
      static_cast<std::uint64_t>(output_chain) +
      static_cast<std::uint64_t>(k.pipeline_overhead);
  return effective_outer * per_invocation + k.region_overhead;
}

std::uint64_t design_latency(const HlsDesign& design) {
  std::uint64_t total = 0;
  for (const TaskBlock& block : design.blocks) total += block_latency(block);
  return total;
}

std::uint64_t design_interval(const HlsDesign& design) {
  if (!design.directives.dataflow) return design_latency(design);
  std::uint64_t worst = 0;
  for (const TaskBlock& block : design.blocks) worst = std::max(worst, block_latency(block));
  return worst;
}

std::uint64_t batch_latency(const HlsDesign& design, std::uint64_t count) {
  if (count == 0) return 0;
  return design_latency(design) + (count - 1) * design_interval(design);
}

double cycles_to_seconds(std::uint64_t cycles, double clock_mhz) {
  if (clock_mhz <= 0.0) throw std::invalid_argument("cycles_to_seconds: clock must be positive");
  return static_cast<double>(cycles) / (clock_mhz * 1e6);
}

}  // namespace cnn2fpga::hls
