#include "hls/report.hpp"

#include "hls/schedule.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace cnn2fpga::hls {

using cnn2fpga::util::format;

double HlsReport::latency_seconds() const {
  return cycles_to_seconds(latency_cycles, device.clock_mhz);
}

double HlsReport::interval_seconds() const {
  return cycles_to_seconds(interval_cycles, device.clock_mhz);
}

std::vector<std::string> HlsReport::overflowing_resources() const {
  std::vector<std::string> over;
  if (util.ff > 1.0) over.push_back("FF");
  if (util.lut > 1.0) over.push_back("LUT");
  if (util.lutram > 1.0) over.push_back("MemLUT");
  if (util.bram > 1.0) over.push_back("BRAM");
  if (util.dsp > 1.0) over.push_back("DSP");
  return over;
}

std::string HlsReport::to_string() const {
  std::string out = format("== HLS report: %s on %s (%s), directives: %s ==\n",
                           design_name.c_str(), device.board.c_str(), device.part.c_str(),
                           directives.to_string().c_str());

  util::Table table({"block", "latency (cycles)", "DSP", "BRAM18K", "LUT", "FF", "MemLUT"});
  for (const BlockReport& block : blocks) {
    table.add_row({block.name, format("%llu", (unsigned long long)block.latency_cycles),
                   format("%llu", (unsigned long long)block.usage.dsp),
                   format("%llu", (unsigned long long)block.usage.bram18),
                   format("%llu", (unsigned long long)block.usage.lut),
                   format("%llu", (unsigned long long)block.usage.ff),
                   format("%llu", (unsigned long long)block.usage.lutram)});
  }
  out += table.render();

  out += format("single-image latency: %llu cycles (%s @ %.0f MHz)\n",
                (unsigned long long)latency_cycles,
                util::human_seconds(latency_seconds()).c_str(), device.clock_mhz);
  out += format("steady-state interval: %llu cycles (%s)\n",
                (unsigned long long)interval_cycles,
                util::human_seconds(interval_seconds()).c_str());
  if (weight_load_cycles > 0) {
    out += format("one-time weight upload: %llu cycles (%s)\n",
                  (unsigned long long)weight_load_cycles,
                  util::human_seconds(cycles_to_seconds(weight_load_cycles,
                                                        device.clock_mhz)).c_str());
  }
  out += format("utilization: FF %.2f%%  LUT %.2f%%  MemLUT %.2f%%  BRAM %.2f%%  DSP %.2f%%\n",
                util.ff * 100, util.lut * 100, util.lutram * 100, util.bram * 100,
                util.dsp * 100);
  if (!fits()) {
    out += "WARNING: design exceeds device budget on: " +
           util::join(overflowing_resources(), ", ") + "\n";
  }
  return out;
}

}  // namespace cnn2fpga::hls
