#include "hls/lowering.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::hls {

using cnn2fpga::util::format;
using nn::NumericFormat;
using nn::Shape;

namespace {

int value_bits(const NumericFormat& numeric) {
  return numeric.is_fixed ? numeric.fixed.total_bits : 32;
}

TaskBlock lower_stream_in(const Shape& input, const NumericFormat& numeric) {
  TaskBlock block;
  block.name = "stream_in";
  block.loops.trips = {input.elements()};
  block.loops.reduction_levels = 0;
  block.body = {{OpKind::kStream, 1}, {OpKind::kStore, 1}};
  if (numeric.is_fixed) block.body[OpKind::kIntOp] = 1;  // input quantizer
  block.arrays.push_back(
      {"buf_input", input.elements(), value_bits(numeric), /*ping_pong=*/true, false});
  // The AXI4-Stream reader runs at one beat per cycle with or without
  // directives; it is never the bottleneck and is left unpipelined in the IR
  // (its naive chain is already stream-limited).
  block.pipelined = false;
  return block;
}

OpCounts mac_body(const NumericFormat& numeric) {
  if (numeric.is_fixed) {
    return {{OpKind::kIMul, 1}, {OpKind::kIntOp, 1}, {OpKind::kLoad, 2}};
  }
  return {{OpKind::kFMul, 1}, {OpKind::kFAdd, 1}, {OpKind::kLoad, 2}};
}

OpCounts mac_per_output(const NumericFormat& numeric) {
  if (numeric.is_fixed) {
    // Bias read, renormalizing shift + saturation, result write.
    return {{OpKind::kLoad, 1}, {OpKind::kIntOp, 1}, {OpKind::kStore, 1}};
  }
  return {{OpKind::kLoad, 1}, {OpKind::kStore, 1}};
}

TaskBlock lower_conv(const nn::Conv2D& conv, const Shape& output, std::size_t index,
                     bool pipeline, const NumericFormat& numeric) {
  TaskBlock block;
  block.name = format("conv%zu", index);
  block.loops.trips = {conv.out_channels(), output.height(), output.width(),
                       conv.in_channels(), conv.kernel_h(), conv.kernel_w()};
  block.loops.reduction_levels = 3;  // channels x kernel rows x kernel cols
  block.body = mac_body(numeric);
  block.per_output = mac_per_output(numeric);
  block.pipelined = pipeline;
  const int bits = value_bits(numeric);
  block.arrays.push_back({format("w_conv%zu", index),
                          conv.out_channels() * conv.in_channels() * conv.kernel_h() *
                              conv.kernel_w(),
                          bits, false, /*is_rom=*/true});
  block.arrays.push_back({format("b_conv%zu", index), conv.out_channels(), bits, false, true});
  block.arrays.push_back({format("buf_conv%zu", index), output.elements(), bits, true, false});
  return block;
}

TaskBlock lower_pool(const nn::Pool2D& pool, const Shape& output, std::size_t index,
                     const NumericFormat& numeric) {
  TaskBlock block;
  block.name = format("%s%zu", pool.kind().c_str(), index);
  block.loops.trips = {output.channels(), output.height(), output.width(), pool.kernel_h(),
                       pool.kernel_w()};
  block.loops.reduction_levels = 2;
  const OpKind cmp = numeric.is_fixed ? OpKind::kIntOp : OpKind::kFCmp;
  if (pool.pool_kind() == nn::PoolKind::kMax) {
    block.body = {{cmp, 1}, {OpKind::kLoad, 1}};
    block.per_output = {{OpKind::kStore, 1}};
  } else {
    const OpKind add = numeric.is_fixed ? OpKind::kIntOp : OpKind::kFAdd;
    block.body = {{add, 1}, {OpKind::kLoad, 1}};
    // Mean pooling scales by 1/(kh*kw) once per window.
    const OpKind scale = numeric.is_fixed ? OpKind::kIntOp : OpKind::kFMul;
    block.per_output = {{scale, 1}, {OpKind::kStore, 1}};
  }
  block.pipelined = false;
  block.arrays.push_back(
      {format("buf_pool%zu", index), output.elements(), value_bits(numeric), true, false});
  return block;
}

TaskBlock lower_linear(const nn::Linear& linear, std::size_t index, bool pipeline,
                       const NumericFormat& numeric) {
  TaskBlock block;
  block.name = format("linear%zu", index);
  block.loops.trips = {linear.out_features(), linear.in_features()};
  block.loops.reduction_levels = 1;
  block.body = mac_body(numeric);
  block.per_output = mac_per_output(numeric);
  block.pipelined = pipeline;
  const int bits = value_bits(numeric);
  block.arrays.push_back({format("w_linear%zu", index),
                          linear.out_features() * linear.in_features(), bits, false, true});
  block.arrays.push_back({format("b_linear%zu", index), linear.out_features(), bits, false,
                          true});
  block.arrays.push_back({format("buf_linear%zu", index), linear.out_features(), bits, true,
                          false});
  return block;
}

TaskBlock lower_activation(const nn::Activation& act, const Shape& shape, std::size_t index,
                           const NumericFormat& numeric) {
  TaskBlock block;
  block.name = format("%s%zu", act.kind().c_str(), index);
  block.loops.trips = {shape.elements()};
  block.loops.reduction_levels = 0;
  switch (act.act()) {
    case nn::ActKind::kTanh:
      // tanh(x) = 1 - 2/(exp(2x)+1): exp core + divide + adds. Fixed designs
      // still evaluate the transcendental in a float datapath (plus the
      // (de)quantizer conversions).
      block.body = {{OpKind::kFExp, 1}, {OpKind::kFDiv, 1}, {OpKind::kFAdd, 2},
                    {OpKind::kLoad, 1}, {OpKind::kStore, 1}};
      if (numeric.is_fixed) block.body[OpKind::kIntOp] = 2;
      break;
    case nn::ActKind::kSigmoid:
      block.body = {{OpKind::kFExp, 1}, {OpKind::kFDiv, 1}, {OpKind::kFAdd, 1},
                    {OpKind::kLoad, 1}, {OpKind::kStore, 1}};
      if (numeric.is_fixed) block.body[OpKind::kIntOp] = 2;
      break;
    case nn::ActKind::kReLU:
      block.body = {{numeric.is_fixed ? OpKind::kIntOp : OpKind::kFCmp, 1},
                    {OpKind::kLoad, 1}, {OpKind::kStore, 1}};
      break;
  }
  block.pipelined = false;
  block.arrays.push_back(
      {format("buf_act%zu", index), shape.elements(), value_bits(numeric), true, false});
  return block;
}

TaskBlock lower_logsoftmax(std::size_t classes, std::size_t index,
                           const NumericFormat& numeric) {
  // Per class: max compare, exp, accumulate, subtract (log-domain), plus the
  // final argmax compare. Fixed designs dequantize each logit first.
  TaskBlock block;
  block.name = format("logsoftmax%zu", index);
  block.loops.trips = {classes};
  block.loops.reduction_levels = 0;
  block.body = {{OpKind::kFCmp, 2}, {OpKind::kFExp, 1}, {OpKind::kFAdd, 3},
                {OpKind::kLoad, 2}, {OpKind::kStore, 1}};
  if (numeric.is_fixed) block.body[OpKind::kIntOp] = 1;
  block.pipelined = false;
  block.arrays.push_back({format("buf_scores%zu", index), classes, 32, true, false});
  return block;
}

TaskBlock lower_softmax_norm(std::size_t index) {
  TaskBlock block;
  block.name = format("softmax_norm%zu", index);
  block.loops.trips = {1};
  block.loops.reduction_levels = 0;
  block.body = {{OpKind::kFLog, 1}, {OpKind::kFAdd, 1}};
  block.pipelined = false;
  return block;
}

TaskBlock lower_stream_out(std::size_t classes) {
  TaskBlock block;
  block.name = "stream_out";
  // Class scores plus the predicted index.
  block.loops.trips = {classes + 1};
  block.loops.reduction_levels = 0;
  block.body = {{OpKind::kStream, 1}, {OpKind::kLoad, 1}};
  block.pipelined = false;
  return block;
}

}  // namespace

HlsDesign lower_network(const nn::Network& net, const DirectiveSet& directives,
                        const NumericFormat& numeric, bool streamed_weights) {
  HlsDesign design;
  design.name = net.name();
  design.directives = directives;

  design.blocks.push_back(lower_stream_in(net.input_shape(), numeric));

  std::size_t classes = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::Layer& layer = net.layer(i);
    const Shape& out_shape = net.shape_after(i);
    classes = out_shape.elements();

    if (const auto* conv = dynamic_cast<const nn::Conv2D*>(&layer)) {
      design.blocks.push_back(lower_conv(*conv, out_shape, i, directives.pipeline, numeric));
    } else if (const auto* pool = dynamic_cast<const nn::Pool2D*>(&layer)) {
      design.blocks.push_back(lower_pool(*pool, out_shape, i, numeric));
    } else if (const auto* linear = dynamic_cast<const nn::Linear*>(&layer)) {
      design.blocks.push_back(lower_linear(*linear, i, directives.pipeline, numeric));
    } else if (const auto* act = dynamic_cast<const nn::Activation*>(&layer)) {
      design.blocks.push_back(lower_activation(*act, out_shape, i, numeric));
    } else if (dynamic_cast<const nn::LogSoftMax*>(&layer) != nullptr) {
      design.blocks.push_back(lower_logsoftmax(out_shape.elements(), i, numeric));
      design.blocks.push_back(lower_softmax_norm(i));
    } else {
      throw std::logic_error(format("lower_network: unsupported layer kind '%s'",
                                    layer.kind().c_str()));
    }
  }

  design.blocks.push_back(lower_stream_out(classes));

  if (streamed_weights) {
    // Parameter arrays become writable RAM; same BRAM tiles, no initializer.
    for (TaskBlock& block : design.blocks) {
      for (ArrayDecl& array : block.arrays) array.is_rom = false;
    }
  }
  return design;
}

}  // namespace cnn2fpga::hls
