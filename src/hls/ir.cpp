#include "hls/ir.hpp"

namespace cnn2fpga::hls {

std::string DirectiveSet::to_string() const {
  if (pipeline && dataflow) return "DATAFLOW+PIPELINE";
  if (pipeline) return "PIPELINE";
  if (dataflow) return "DATAFLOW";
  return "none";
}

std::uint64_t HlsDesign::total_array_bits() const {
  std::uint64_t bits = 0;
  for (const TaskBlock& block : blocks) {
    for (const ArrayDecl& array : block.arrays) {
      bits += array.bits() * (array.ping_pong ? 2 : 1);
    }
  }
  return bits;
}

}  // namespace cnn2fpga::hls
