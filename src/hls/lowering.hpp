// Lowering from the reference network to the HLS simulator's IR.
//
// Mirrors the structure of the C++ the generator emits (one task block per
// layer plus the AXI4-Stream reader/writer and the trailing LogSoftMax
// blocks), so the latency/resource estimates correspond to the actual
// generated code, not an abstract model of the network.
#pragma once

#include "hls/ir.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace cnn2fpga::hls {

/// Build the IP core IR for a network under the given directives and numeric
/// format. Only convolutional and linear layers are PIPELINEd (the paper
/// applies "HLS PIPELINE ... to the inner loop of convolutional layer"; the
/// generator treats the fully-connected reduction the same way).
///
/// For fixed-point formats the MAC datapath lowers to one DSP48 multiply plus
/// an integer add, and every weight/activation array narrows to the format's
/// total_bits — the resource savings quantization buys on the FPGA.
/// `streamed_weights` marks the parameter arrays as writable RAM (uploaded at
/// start-up over the AXI stream) instead of initialized ROM; the BRAM
/// footprint is unchanged but the HlsReport carries the one-time upload cost.
HlsDesign lower_network(const nn::Network& net, const DirectiveSet& directives,
                        const nn::NumericFormat& format = nn::NumericFormat::float32(),
                        bool streamed_weights = false);

}  // namespace cnn2fpga::hls
