// Roofline analysis of generated designs.
//
// The paper's main analytical baseline (Zhang et al. [9], "Optimizing
// FPGA-based accelerator design for deep convolutional neural networks")
// explores the accelerator design space with the roofline model [20]:
// attainable performance = min(computational roof, CTC ratio x bandwidth).
// This module implements that methodology for cnn2fpga designs so users can
// see where a generated accelerator sits relative to the platform's rooflines
// — and how far the paper's directive-based flow is from the
// compute/bandwidth bound, which is exactly the comparison the related-work
// section draws.
#pragma once

#include "hls/device.hpp"
#include "hls/ir.hpp"
#include "hls/report.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace cnn2fpga::hls {

struct RooflinePlatform {
  /// Peak MACs the fabric could issue per cycle if every DSP pair formed a
  /// pipelined multiply-accumulate (float MAC = fmul 3 DSP + fadd 2 DSP).
  double peak_macs_per_cycle = 0.0;
  double clock_mhz = 100.0;
  /// Off-chip bandwidth of the PS HP port path (bytes/s). The Zedboard's
  /// single 64-bit HP port at 100 MHz sustains ~0.8 GB/s in practice.
  double dram_bandwidth_bytes_per_s = 800e6;

  /// Computational roof in GFLOP/s (2 FLOPs per MAC).
  double computational_roof_gflops() const;

  static RooflinePlatform for_device(const FpgaDevice& device,
                                     const nn::NumericFormat& format);
};

struct RooflinePoint {
  double flops_per_image = 0.0;          ///< 2 * MACs
  double offchip_bytes_per_image = 0.0;  ///< streamed input + output (weights on-chip)
  double ctc_ratio = 0.0;                ///< computation-to-communication, FLOP/byte
  double attainable_gflops = 0.0;        ///< min(comp roof, ctc * bandwidth)
  double achieved_gflops = 0.0;          ///< from the design's HLS interval
  double roof_fraction = 0.0;            ///< achieved / attainable
  bool compute_bound = false;            ///< attainable limited by the comp roof
};

/// Place a synthesized design on the platform's roofline. `report` must come
/// from the same network/directives/device.
RooflinePoint roofline_analysis(const nn::Network& net, const HlsReport& report,
                                const RooflinePlatform& platform);

/// Convenience: estimate + analyze in one step.
RooflinePoint roofline_analysis(const nn::Network& net, const DirectiveSet& directives,
                                const FpgaDevice& device,
                                const nn::NumericFormat& format = nn::NumericFormat::float32());

}  // namespace cnn2fpga::hls
