#include "hls/roofline.hpp"

#include <algorithm>

#include "hls/estimator.hpp"
#include "hls/schedule.hpp"

namespace cnn2fpga::hls {

double RooflinePlatform::computational_roof_gflops() const {
  return 2.0 * peak_macs_per_cycle * clock_mhz * 1e6 / 1e9;
}

RooflinePlatform RooflinePlatform::for_device(const FpgaDevice& device,
                                              const nn::NumericFormat& format) {
  RooflinePlatform platform;
  platform.clock_mhz = device.clock_mhz;
  // DSPs per MAC: float = fmul(3) + fadd(2); fixed <=18-bit = 1 DSP multiply
  // with the add absorbed into fabric logic.
  const double dsp_per_mac = format.is_fixed ? 1.0 : 5.0;
  platform.peak_macs_per_cycle = static_cast<double>(device.dsp) / dsp_per_mac;
  return platform;
}

RooflinePoint roofline_analysis(const nn::Network& net, const HlsReport& report,
                                const RooflinePlatform& platform) {
  RooflinePoint point;
  point.flops_per_image = 2.0 * static_cast<double>(net.total_macs());
  // Weights are hard-coded on-chip (the framework's design decision), so the
  // only off-chip traffic is the streamed image and the score packet.
  const double input_bytes = static_cast<double>(net.input_shape().elements()) * 4.0;
  const double output_bytes = static_cast<double>(net.output_shape().elements() + 1) * 4.0;
  point.offchip_bytes_per_image = input_bytes + output_bytes;
  point.ctc_ratio = point.flops_per_image / point.offchip_bytes_per_image;

  const double bandwidth_roof_gflops =
      point.ctc_ratio * platform.dram_bandwidth_bytes_per_s / 1e9;
  const double comp_roof = platform.computational_roof_gflops();
  point.attainable_gflops = std::min(comp_roof, bandwidth_roof_gflops);
  point.compute_bound = comp_roof <= bandwidth_roof_gflops;

  const double interval_seconds =
      cycles_to_seconds(report.interval_cycles, platform.clock_mhz);
  point.achieved_gflops =
      interval_seconds > 0.0 ? point.flops_per_image / interval_seconds / 1e9 : 0.0;
  point.roof_fraction =
      point.attainable_gflops > 0.0 ? point.achieved_gflops / point.attainable_gflops : 0.0;
  return point;
}

RooflinePoint roofline_analysis(const nn::Network& net, const DirectiveSet& directives,
                                const FpgaDevice& device, const nn::NumericFormat& format) {
  const HlsReport report = estimate(net, directives, device, format);
  return roofline_analysis(net, report, RooflinePlatform::for_device(device, format));
}

}  // namespace cnn2fpga::hls
