#include "hls/resources.hpp"

#include <algorithm>

namespace cnn2fpga::hls {

namespace {
// Control logic of one task block's FSM.
constexpr std::uint64_t kBlockControlLut = 150;
constexpr std::uint64_t kBlockControlFf = 250;
// Extra control/mux logic when a block's reduction loops are pipelined
// (loop flattening counters, operand registers, forwarding muxes).
constexpr std::uint64_t kPipelineControlLut = 3000;
constexpr std::uint64_t kPipelineControlFf = 900;
// Top-level AXI4-Stream adapters + protocol handshake of the IP core.
constexpr std::uint64_t kInterfaceLut = 600;
constexpr std::uint64_t kInterfaceFf = 800;
constexpr std::uint64_t kInterfaceLutram = 64;
// A BRAM18K holds 512 32-bit words (18 Kbit with parity used as data).
constexpr std::uint64_t kBram18Words32 = 512;
}  // namespace

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& other) {
  ff += other.ff;
  lut += other.lut;
  lutram += other.lutram;
  bram18 += other.bram18;
  dsp += other.dsp;
  return *this;
}

double Utilization::worst() const {
  return std::max({ff, lut, lutram, bram, dsp});
}

Utilization utilization(const ResourceUsage& usage, const FpgaDevice& device) {
  Utilization u;
  u.ff = device.ff ? static_cast<double>(usage.ff) / static_cast<double>(device.ff) : 0.0;
  u.lut = device.lut ? static_cast<double>(usage.lut) / static_cast<double>(device.lut) : 0.0;
  u.lutram =
      device.lutram ? static_cast<double>(usage.lutram) / static_cast<double>(device.lutram) : 0.0;
  // Table II counts BRAM36 tiles; the binder counts BRAM18K halves.
  u.bram = device.bram36
               ? static_cast<double>(usage.bram18) / static_cast<double>(2 * device.bram36)
               : 0.0;
  u.dsp = device.dsp ? static_cast<double>(usage.dsp) / static_cast<double>(device.dsp) : 0.0;
  return u;
}

std::uint64_t array_bram18(const ArrayDecl& array, bool dataflow) {
  if (array.bits() <= kLutramThresholdBits) return 0;
  const std::uint64_t words_per_bram =
      kBram18Words32 * 32 / static_cast<std::uint64_t>(array.width_bits);
  const std::uint64_t per_copy = (array.depth + words_per_bram - 1) / words_per_bram;
  const bool doubled = dataflow && array.ping_pong;
  return per_copy * (doubled ? 2 : 1);
}

std::uint64_t array_lutram(const ArrayDecl& array, bool dataflow) {
  if (array.bits() > kLutramThresholdBits) return 0;
  // Distributed RAM: a LUT6 implements a 64x1 RAM, so a depth-D width-W array
  // needs W * ceil(D/64) LUTs (minimum one slice-worth of 4).
  const std::uint64_t per_copy = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(array.width_bits) * ((array.depth + 63) / 64));
  const bool doubled = dataflow && array.ping_pong;
  return per_copy * (doubled ? 2 : 1);
}

ResourceUsage bind_block(const TaskBlock& block, bool dataflow) {
  ResourceUsage usage;
  usage.lut += kBlockControlLut;
  usage.ff += kBlockControlFf;

  // Operator instances: one per occurrence in the body plus one per occurrence
  // in the epilogue. Vivado HLS 2015.2 does not share floating-point cores
  // across different loops/blocks by default.
  const auto bind_ops = [&usage](const OpCounts& ops) {
    for (const auto& [kind, count] : ops) {
      if (count <= 0) continue;
      if (kind == OpKind::kLoad || kind == OpKind::kStore) continue;  // BRAM ports
      const OpCost& cost = op_cost(kind);
      usage.dsp += static_cast<std::uint64_t>(cost.dsp) * static_cast<std::uint64_t>(count);
      usage.lut += static_cast<std::uint64_t>(cost.lut) * static_cast<std::uint64_t>(count);
      usage.ff += static_cast<std::uint64_t>(cost.ff) * static_cast<std::uint64_t>(count);
      usage.lutram +=
          static_cast<std::uint64_t>(cost.lutram) * static_cast<std::uint64_t>(count);
    }
  };
  bind_ops(block.body);
  bind_ops(block.per_output);

  if (block.pipelined) {
    usage.lut += kPipelineControlLut;
    usage.ff += kPipelineControlFf;
  }

  for (const ArrayDecl& array : block.arrays) {
    usage.bram18 += array_bram18(array, dataflow);
    usage.lutram += array_lutram(array, dataflow);
  }
  return usage;
}

ResourceUsage bind_design(const HlsDesign& design) {
  ResourceUsage usage;
  usage.lut += kInterfaceLut;
  usage.ff += kInterfaceFf;
  usage.lutram += kInterfaceLutram;
  for (const TaskBlock& block : design.blocks) {
    usage += bind_block(block, design.directives.dataflow);
  }
  return usage;
}

}  // namespace cnn2fpga::hls
