#include "hls/estimator.hpp"

#include "hls/schedule.hpp"

namespace cnn2fpga::hls {

HlsReport estimate_design(const HlsDesign& design, const FpgaDevice& device) {
  HlsReport report;
  report.design_name = design.name;
  report.device = device;
  report.directives = design.directives;

  for (const TaskBlock& block : design.blocks) {
    BlockReport br;
    br.name = block.name;
    br.latency_cycles = block_latency(block);
    br.usage = bind_block(block, design.directives.dataflow);
    report.blocks.push_back(br);
  }

  report.latency_cycles = design_latency(design);
  report.interval_cycles = design_interval(design);
  report.usage = bind_design(design);
  report.util = utilization(report.usage, device);
  return report;
}

HlsReport estimate(const nn::Network& net, const DirectiveSet& directives,
                   const FpgaDevice& device, const nn::NumericFormat& format,
                   bool streamed_weights) {
  HlsReport report =
      estimate_design(lower_network(net, directives, format, streamed_weights), device);
  if (streamed_weights) {
    // One stream beat per parameter word plus the control overhead of the
    // load branch.
    report.weight_load_cycles = net.parameter_count() + schedule_constants().region_overhead;
  }
  return report;
}

}  // namespace cnn2fpga::hls
