// Facade of the HLS simulator: network + directives + device -> HlsReport.
//
// This is what replaces the `vivado_hls -f cnn_vivado_hls.tcl` invocation of
// the paper's flow (see DESIGN.md substitution table).
#pragma once

#include "hls/device.hpp"
#include "hls/lowering.hpp"
#include "hls/report.hpp"
#include "nn/network.hpp"

namespace cnn2fpga::hls {

/// Synthesize (estimate) a network for a device in the given numeric format.
/// `streamed_weights` additionally reports the one-time parameter upload cost.
HlsReport estimate(const nn::Network& net, const DirectiveSet& directives,
                   const FpgaDevice& device,
                   const nn::NumericFormat& format = nn::NumericFormat::float32(),
                   bool streamed_weights = false);

/// Synthesize a pre-lowered design (used by the ablation bench to explore
/// hand-modified IR).
HlsReport estimate_design(const HlsDesign& design, const FpgaDevice& device);

}  // namespace cnn2fpga::hls
