// FPGA device catalog.
//
// The paper targets the Xilinx Zynq-7000 APSoC family: Zybo (XC7Z010) and
// Zedboard (XC7Z020); Virtex-7 is named as a future-work target. Resource
// totals below are the official 7-series datasheet numbers — note they match
// the denominators printed in the paper's Table II header for the Zedboard
// (FF 106400, LUT 53200, Memory LUT 17400, BRAM 140, DSP 220).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cnn2fpga::hls {

struct FpgaDevice {
  std::string board;        ///< e.g. "zedboard"
  std::string part;         ///< e.g. "xc7z020clg484-1"
  std::uint64_t ff = 0;     ///< flip-flops
  std::uint64_t lut = 0;    ///< logic LUTs
  std::uint64_t lutram = 0; ///< LUTs usable as distributed RAM ("Memory LUT")
  std::uint64_t bram36 = 0; ///< 36-Kbit block RAMs
  std::uint64_t dsp = 0;    ///< DSP48E1 slices
  double clock_mhz = 100.0; ///< target clock of the generated IP core

  double clock_period_ns() const { return 1000.0 / clock_mhz; }
};

/// All boards the framework knows how to target.
const std::vector<FpgaDevice>& device_catalog();

/// Look up by board name (case-insensitive): "zybo", "zedboard", "virtex7".
std::optional<FpgaDevice> find_device(const std::string& board);

/// The paper's evaluation board.
const FpgaDevice& zedboard();
const FpgaDevice& zybo();

}  // namespace cnn2fpga::hls
