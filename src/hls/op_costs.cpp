#include "hls/op_costs.hpp"

#include <stdexcept>

namespace cnn2fpga::hls {

const OpCost& op_cost(OpKind kind) {
  // latency, dsp, lut, ff, lutram
  // "full DSP usage" configurations of the 7-series floating-point operator
  // IPs: arithmetic is pushed into DSP48 slices, keeping LUT counts low --
  // this is what Vivado HLS 2015.2 instantiates by default and what makes
  // DSP the dominant resource in the paper's Table II.
  static const OpCost kFAddCost{5, 2, 120, 120, 32};
  static const OpCost kFMulCost{4, 3, 80, 80, 24};
  static const OpCost kFDivCost{16, 0, 700, 740, 64};
  static const OpCost kFCmpCost{1, 0, 40, 33, 0};
  static const OpCost kFExpCost{20, 26, 480, 380, 96};
  static const OpCost kFLogCost{22, 20, 480, 380, 96};
  static const OpCost kLoadCost{2, 0, 8, 6, 0};
  static const OpCost kStoreCost{1, 0, 8, 6, 0};
  static const OpCost kStreamCost{1, 0, 48, 40, 16};
  static const OpCost kIntOpCost{1, 0, 16, 16, 0};
  static const OpCost kIMulCost{3, 1, 40, 60, 8};
  switch (kind) {
    case OpKind::kFAdd: return kFAddCost;
    case OpKind::kFMul: return kFMulCost;
    case OpKind::kFDiv: return kFDivCost;
    case OpKind::kFCmp: return kFCmpCost;
    case OpKind::kFExp: return kFExpCost;
    case OpKind::kFLog: return kFLogCost;
    case OpKind::kLoad: return kLoadCost;
    case OpKind::kStore: return kStoreCost;
    case OpKind::kStream: return kStreamCost;
    case OpKind::kIntOp: return kIntOpCost;
    case OpKind::kIMul: return kIMulCost;
  }
  throw std::logic_error("op_cost: unknown OpKind");
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kFAdd: return "fadd";
    case OpKind::kFMul: return "fmul";
    case OpKind::kFDiv: return "fdiv";
    case OpKind::kFCmp: return "fcmp";
    case OpKind::kFExp: return "fexp";
    case OpKind::kFLog: return "flog";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kStream: return "stream";
    case OpKind::kIntOp: return "intop";
    case OpKind::kIMul: return "imul";
  }
  return "?";
}

int chain_latency(const OpCounts& ops) {
  // BRAM loads/stores are excluded from the chain: Vivado HLS schedules the
  // next iteration's operand fetch (dual-port BRAM) in parallel with the
  // current iteration's arithmetic even without directives, so memory access
  // does not extend the recurrence. Stream pops/pushes DO serialize (one beat
  // per cycle on the AXI4-Stream handshake). Arithmetic ops of the same kind
  // serialize on a single shared instance, which is what Vivado HLS binds
  // without directives.
  int total = 0;
  for (const auto& [kind, count] : ops) {
    if (count <= 0) continue;
    if (kind == OpKind::kLoad || kind == OpKind::kStore) continue;
    const OpCost& cost = op_cost(kind);
    total += cost.latency * count;
  }
  return total;
}

const ScheduleConstants& schedule_constants() {
  static const ScheduleConstants constants{};
  return constants;
}

}  // namespace cnn2fpga::hls
