// The serving runtime: registry + executor + batcher + metrics behind the
// web API.
//
// The paper's framework stops when the artifacts are generated; this layer is
// the deployment half: POST /api/v1/deploy runs the generator (or hits the
// content-addressed cache) and keeps a ready-to-run instance resident, and
// POST /api/v1/predict pushes images through the micro-batching pipeline against
// a deployed design. Handlers follow the same transport-free convention as
// web::handle_* so the test suite can exercise them without sockets.
//
// Routes:
//   POST /api/v1/deploy  -> body: descriptor JSON (+ "weights_base64" or
//                          "seed"); response: design_id, cache_hit, HLS
//                          summary, registry occupancy.
//   POST /api/v1/predict -> body: {"design_id": ..., "image_base64": raw
//                          float32 little-endian CHW pixels} (or "image":
//                          [numbers]); response: predicted class, logits,
//                          queue/exec timing, batch size.
//   GET  /api/v1/designs -> resident designs, most recently used first.
//   GET  /api/v1/metrics -> counters + latency histograms as JSON.
//   GET  /api/v1/readyz  -> load-balancer readiness: queue depth, shed rate,
//                          per-design breaker states; 503 while draining or
//                          saturated.
//
// Overload semantics (DESIGN.md "Overload and failure behavior"): predict
// answers 429 overloaded (+ Retry-After) when admission sheds, 504
// deadline_exceeded when the request's deadline (X-Deadline-Ms header or
// `default_deadline_ms`) passes before execution, 503 design_unavailable
// (+ Retry-After) while a design's circuit breaker is open, and 503 shutdown
// once the runtime is draining.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/backend/backend.hpp"
#include "serve/backend/placer.hpp"
#include "serve/batcher.hpp"
#include "serve/breaker.hpp"
#include "serve/executor.hpp"
#include "serve/fault.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "web/http.hpp"

namespace cnn2fpga::serve {

/// Which execution engines the runtime serves on, and how batches are placed
/// between them. The default is heterogeneous: CPU plus the simulated fabric
/// behind the cost-model placer, so overflow spills instead of shedding.
struct BackendsConfig {
  bool cpu = true;            ///< host SIMD engine on the shared worker pool
  bool accelerator = true;    ///< simulated FPGA fabric on its own driver thread
  PlacerPolicy placer = PlacerPolicy::kCost;
  /// Wall-clock the modeled accelerator latency (the fabric really is busy
  /// for invocation_seconds). Disable in tests that only want the virtual
  /// clock.
  bool accel_sleep_for_model = true;
};

struct ServingConfig {
  std::size_t registry_capacity = 16;  ///< LRU bound on resident designs
  std::size_t worker_threads = 4;      ///< executor pool size
  BatcherConfig batcher;
  BreakerConfig breaker;               ///< applied per (design, backend)
  BackendsConfig backends;
  /// Server-side deadline for predict requests without an X-Deadline-Ms
  /// header. 0 = no default (requests wait as long as the client does).
  std::uint64_t default_deadline_ms = 0;
};

class ServingRuntime {
 public:
  explicit ServingRuntime(ServingConfig config = {});
  ~ServingRuntime();
  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Drain the batcher and stop the worker pool. Idempotent; predict
  /// requests after this fail with 503.
  void shutdown();

  DesignRegistry& registry() { return registry_; }
  Batcher& batcher() { return batcher_; }
  Executor& executor() { return executor_; }
  ServeMetrics& metrics() { return metrics_; }
  FaultInjector& faults() { return faults_; }
  const ServingConfig& config() const { return config_; }
  const std::vector<std::shared_ptr<InferenceBackend>>& backends() const {
    return backends_;
  }
  /// nullptr when the backend is not enabled.
  InferenceBackend* backend(BackendId id) const;

  /// Transport-free handler entry points (exercised directly by tests).
  web::HttpResponse handle_deploy(const web::HttpRequest& request);
  web::HttpResponse handle_predict(const web::HttpRequest& request);
  web::HttpResponse handle_designs(const web::HttpRequest& request);
  web::HttpResponse handle_metrics(const web::HttpRequest& request);
  web::HttpResponse handle_readyz(const web::HttpRequest& request);

 private:
  ServingConfig config_;
  ServeMetrics metrics_;
  FaultInjector faults_;  ///< must precede registry_/batcher_ (they hold it)
  DesignRegistry registry_;
  Executor executor_;
  /// Built from config_.backends; must precede batcher_ (it places onto
  /// them) and follow executor_ (CpuBackend wraps it).
  std::vector<std::shared_ptr<InferenceBackend>> backends_;
  Batcher batcher_;
  std::atomic<bool> stopped_{false};
};

/// Install the serving routes on a server. `runtime` must outlive it.
void install_serve_api(web::HttpServer& server, ServingRuntime& runtime);

}  // namespace cnn2fpga::serve
