// Content-addressed registry of deployed designs.
//
// Deploying a design means running the whole cnn2fpga pipeline — descriptor
// validation, C++/tcl generation, the HLS latency/utilization estimate — and
// materializing a ready-to-run reference network. All of that is a pure
// function of (descriptor JSON, weight blob), so the registry keys deployed
// designs by Framework::cache_key over exactly those inputs: a repeat deploy
// of the same network is a cache hit that skips regeneration entirely and
// returns the already-warm instance. Capacity is LRU-bounded; evicted designs
// stay alive (shared_ptr) until their last in-flight batch completes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/framework.hpp"
#include "nn/execution.hpp"
#include "serve/backend/ids.hpp"
#include "serve/breaker.hpp"
#include "serve/fault.hpp"
#include "serve/metrics.hpp"

namespace cnn2fpga::serve {

/// Per-backend serving state of one deployed design. The failure domain is
/// scoped to (design, backend): a wedged accelerator dispatch path opens only
/// the accelerator breaker, so the CPU engine keeps serving the design (and
/// vice versa) — the placer routes around the quarantined backend instead of
/// rejecting the whole design.
struct BackendServeState {
  BackendServeState(BreakerConfig config, Counter* opens) : breaker(config, opens) {}

  Breaker breaker;                          ///< failure quarantine, this backend only
  std::atomic<std::uint64_t> batches{0};    ///< batches executed on this backend
  std::atomic<std::uint64_t> images{0};     ///< images served on this backend
  std::atomic<bool> warmed{false};          ///< backend deploy-time warm-up done
  /// Measured per-image execution seconds (CpuBackend feeds this from actual
  /// batch wall time; the accelerator's timing comes from the model instead).
  EwmaSeconds measured_seconds_per_image;
};

/// Deploy-time validation report of a quantized design against the
/// fixed-point accuracy model (nn::forward_fixed over seeded probe inputs).
/// Default-initialized (validated == false) for float32 designs.
struct QuantReport {
  bool validated = false;           ///< probe validation ran at deploy
  std::size_t probes = 0;           ///< probe images evaluated
  /// Largest |float - fixed| pre-softmax activation discrepancy the fixed
  /// model observed (FixedForwardResult::output_error) across the probes.
  float max_abs_error = 0.0f;
  /// Fraction of probes where the quantized serving path predicted the same
  /// class as the float reference.
  double top1_agreement = 1.0;
  /// Quantized serving scores were bit-identical to forward_fixed on every
  /// probe (the engineered guarantee; int8 may diverge only via the
  /// documented weight clamp — see kernels_int.hpp).
  bool matches_fixed_model = true;
};

/// A design deployed for serving. `net` is the executable reference network
/// with the deploy weights loaded. Weights are frozen after deploy, so any
/// number of threads may run Network::infer concurrently — each batch checks
/// an ExecutionContext out of `contexts` and runs without a lock (at the
/// design's deployed serving precision). Only the *modeled* accelerator
/// (invocation_seconds) remains serial: the deployment hardware is one
/// physical IP core, and AcceleratorBackend enforces a single in-flight
/// invocation (see backend/accel_backend.hpp).
struct DeployedDesign {
  DeployedDesign(std::string id_in, core::GeneratedDesign design_in, nn::Network net_in,
                 std::vector<std::uint8_t> weights_in,
                 nn::ServePrecision precision_in = nn::ServePrecision::kFloat32,
                 BreakerConfig breaker_config = {}, Counter* breaker_opens = nullptr)
      : id(std::move(id_in)),
        design(std::move(design_in)),
        net(std::move(net_in)),
        weights(std::move(weights_in)),
        precision(precision_in),
        contexts(net, nn::kernels::active(), precision_in),
        backends{{BackendServeState{breaker_config, breaker_opens},
                  BackendServeState{breaker_config, breaker_opens}}},
        breaker(backends[backend_index(BackendId::kCpu)].breaker) {
    static_assert(kBackendCount == 2, "backends{} initializer expects two backends");
    // Deploy-time warm-up: build the pool's shared weight-pack cache now so
    // no request-path context ever packs a panel (no-op on scalar hosts).
    contexts.warm();
  }

  const std::string id;                      ///< content hash (cache key)
  const core::GeneratedDesign design;        ///< artifacts + HLS report
  const nn::Network net;                     ///< weights loaded, ready to run
  const std::vector<std::uint8_t> weights;   ///< canonical CNN2FPGAW1 blob
  const nn::ServePrecision precision;        ///< serving arithmetic of every batch
  /// Quantization-quality report; filled by the registry right after a fresh
  /// quantized deploy (before the design is published), then immutable.
  QuantReport quant;

  nn::ExecutionContextPool contexts;         ///< reusable inference contexts
  /// Per-backend breakers, counters and latency observations, indexed by
  /// backend_index().
  std::array<BackendServeState, kBackendCount> backends;
  /// The CPU backend's breaker, aliased under the pre-backend name: single-
  /// engine callers keep reading `design->breaker` and observe the engine
  /// that serves them.
  Breaker& breaker;
  std::atomic<std::uint64_t> served{0};      ///< images predicted on this design

  BackendServeState& backend_state(BackendId backend) {
    return backends[backend_index(backend)];
  }
  const BackendServeState& backend_state(BackendId backend) const {
    return backends[backend_index(backend)];
  }

  const core::NetworkDescriptor& descriptor() const { return design.descriptor; }
  /// Estimated per-image latency of the generated hardware (HLS report).
  double hls_latency_seconds() const { return design.hls_report.latency_seconds(); }

  /// Modeled wall time of one invocation of the deployed accelerator serving
  /// `images` at once, using the axi::BlockDesign transaction model: a single
  /// image is one blocking DMA round trip (driver ioctl + cache maintenance +
  /// interrupt), a batch is queued scatter-gather and pipelines through the
  /// DATAFLOW core at the steady-state initiation interval. This is what
  /// micro-batching amortizes on the deployment hardware.
  ///
  /// Concurrency contract: the model describes ONE physical IP core, so two
  /// invocations can never overlap — callers must serialize. In the serving
  /// runtime that serialization is owned by AcceleratorBackend, which runs
  /// every invocation on a single driver thread and asserts that concurrent
  /// calls queue rather than interleave.
  double invocation_seconds(std::size_t images) const;
};

struct DeployOutcome {
  std::shared_ptr<DeployedDesign> design;
  bool cache_hit = false;
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class DesignRegistry {
 public:
  /// `metrics` and `faults` may be null; when set, deploy/hit/eviction
  /// counters are fed and the `registry.deploy` fault site is live. Every
  /// deployed design gets a circuit breaker built from `breaker_config`.
  explicit DesignRegistry(std::size_t capacity = 16, ServeMetrics* metrics = nullptr,
                          BreakerConfig breaker_config = {},
                          FaultInjector* faults = nullptr);

  /// Deploy from a descriptor and an explicit CNN2FPGAW1 weight blob.
  /// Throws DescriptorError / std::runtime_error on invalid inputs.
  /// `precision` selects the serving arithmetic (float32 / int16 / int8) and
  /// is part of the registry key: the same network deployed at two precisions
  /// is two distinct cache entries. Quantized deploys are probe-validated
  /// against the fixed-point accuracy model before being published (see
  /// DeployedDesign::quant).
  DeployOutcome deploy(const core::NetworkDescriptor& descriptor,
                       std::vector<std::uint8_t> weights,
                       nn::ServePrecision precision = nn::ServePrecision::kFloat32);

  /// Deploy with seed-derived random weights (paper Test 4 style). The seed
  /// is expanded to a concrete weight blob first, so the same seed is
  /// content-identical to — and cache-hits against — an explicit-weights
  /// deploy of those values.
  DeployOutcome deploy_random(const core::NetworkDescriptor& descriptor, std::uint64_t seed,
                              nn::ServePrecision precision = nn::ServePrecision::kFloat32);

  /// nullptr if the id is not (or no longer) deployed.
  std::shared_ptr<DeployedDesign> find(const std::string& id) const;

  /// All deployed designs, most recently used first.
  std::vector<std::shared_ptr<DeployedDesign>> list() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  RegistryStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<DeployedDesign> design;
    std::list<std::string>::iterator lru_pos;
  };

  const std::size_t capacity_;
  ServeMetrics* metrics_;
  const BreakerConfig breaker_config_;
  FaultInjector* faults_;

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  RegistryStats stats_;
};

}  // namespace cnn2fpga::serve
