// Typed control-flow errors of the serving runtime.
//
// Each type corresponds to exactly one HTTP status + envelope code, so the
// API layer maps failures without sniffing message strings and internal
// execution faults can never masquerade as a shutdown (or vice versa):
//   OverloadedError        -> 429 overloaded          (admission queue full)
//   DeadlineExceededError  -> 504 deadline_exceeded   (request expired)
//   DesignUnavailableError -> 503 design_unavailable  (circuit breaker open)
//   ShutdownError          -> 503 shutdown            (runtime is draining)
// Anything else escaping the predict path is a genuine internal fault (500).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cnn2fpga::serve {

/// Base of every predictable serving-control rejection.
struct ServeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Admission control shed this request: the batcher queue is at capacity.
struct OverloadedError final : ServeError {
  OverloadedError(const std::string& message, std::size_t depth)
      : ServeError(message), queue_depth(depth) {}
  std::size_t queue_depth;  ///< waiting requests at the moment of rejection
};

/// The request's deadline passed before (or while) it could execute.
struct DeadlineExceededError final : ServeError {
  using ServeError::ServeError;
};

/// The design's circuit breaker is open (or its half-open probe slot is
/// taken); the design is quarantined until a probe succeeds.
struct DesignUnavailableError final : ServeError {
  DesignUnavailableError(const std::string& message, std::uint64_t retry_ms)
      : ServeError(message), retry_after_ms(retry_ms) {}
  std::uint64_t retry_after_ms;  ///< cooldown remaining (0 = probe pending)
};

/// The runtime (or batcher/executor) has been shut down.
struct ShutdownError final : ServeError {
  using ServeError::ServeError;
};

}  // namespace cnn2fpga::serve
