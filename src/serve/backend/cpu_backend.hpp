// The host engine as an InferenceBackend.
//
// Wraps the SIMD ExecutionContextPool / infer_batch path (the "ARM core" side
// of the paper's Tables I/II comparison) behind the backend interface.
// Batches execute on the serving runtime's shared worker pool; the backend
// does not own that pool, so its shutdown() is a no-op and the runtime keeps
// owning the executor lifecycle.
//
// Cost signal: the first measurement of a design's real per-image execution
// time seeds an EWMA stored on the design (BackendServeState); until then the
// estimate assumes parity with the generated hardware's single-image latency
// (invocation_seconds(1)) so a cold design's placement is decided by queue
// pressure rather than a fictitious speed advantage for either engine.
#pragma once

#include "serve/backend/backend.hpp"
#include "serve/executor.hpp"

namespace cnn2fpga::serve {

class CpuBackend final : public InferenceBackend {
 public:
  /// `executor` is the runtime's shared worker pool and must outlive the
  /// backend; the backend never shuts it down.
  explicit CpuBackend(Executor& executor) : executor_(executor) {}

  BackendId id() const override { return BackendId::kCpu; }
  BackendCapabilities capabilities() const override;

  double estimate_batch_seconds(const DeployedDesign& design,
                                std::size_t images) const override;

  /// Times the reference execution and feeds the design's measured per-image
  /// EWMA, so estimates track the engine this host actually has.
  void run_batch(DeployedDesign& design, std::span<const tensor::Tensor* const> inputs,
                 std::span<tensor::Tensor> outputs) override;

  void warm(DeployedDesign& design) const override;

  /// Widened to the shared executor's whole backlog: foreign tasks on the
  /// pool delay our batches just the same, and the placer should see that.
  std::size_t pending() const override;

 protected:
  void do_submit(std::function<void()> task) override { executor_.submit(std::move(task)); }

 private:
  Executor& executor_;
};

}  // namespace cnn2fpga::serve
