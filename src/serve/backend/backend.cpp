#include "serve/backend/backend.hpp"

#include <stdexcept>
#include <utility>

#include "nn/fixed_inference.hpp"

namespace cnn2fpga::serve {

void InferenceBackend::dispatch(std::function<void()> task) {
  queued_.fetch_add(1, std::memory_order_relaxed);
  try {
    do_submit([this, task = std::move(task)] {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      inflight_.fetch_add(1, std::memory_order_relaxed);
      try {
        task();
      } catch (...) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        throw;
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    });
  } catch (...) {
    // The execution resource refused the task (shutdown / allocation): it was
    // never queued from the placer's point of view.
    queued_.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
}

void run_reference_batch(DeployedDesign& design,
                         std::span<const tensor::Tensor* const> inputs,
                         std::span<tensor::Tensor> outputs) {
  if (inputs.size() != outputs.size()) {
    throw std::logic_error("run_reference_batch: inputs/outputs size mismatch");
  }
  if (inputs.empty()) return;
  auto ctx = design.contexts.acquire();
  const core::NetworkDescriptor& descriptor = design.descriptor();
  if (design.precision != nn::ServePrecision::kFloat32) {
    // Quantized serving: the pooled contexts carry the deployed precision, so
    // infer_batch runs the whole micro-batch through the int8/int16 fused
    // engine end to end and returns dequantized float scores (bit-identical
    // across batch sizes and engines — see kernels_int.hpp).
    design.net.infer_batch(inputs, outputs, *ctx);
  } else if (descriptor.precision.is_fixed) {
    // Fixed designs quantize per image through the context's cached Q(m,n)
    // parameters; the scores tensor already carries the final (float)
    // log-probabilities, so argmax over it equals FixedForwardResult::
    // predicted. A failure mid-batch fails the whole batch — same all-or-
    // nothing contract as the fused float path (inputs are shape-validated
    // at predict(), so a failure here is environmental).
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      outputs[i] = nn::forward_fixed(design.net, *inputs[i], descriptor.precision.fixed,
                                     *ctx, /*track_output_error=*/false)
                       .scores;
    }
  } else {
    // Float path: one fused inference for the whole batch — a single im2col +
    // GEMM per conv/linear layer, bit-identical to per-image infer() through
    // the same context (kernel chunk-invariance contract).
    design.net.infer_batch(inputs, outputs, *ctx);
  }
  design.served.fetch_add(inputs.size(), std::memory_order_relaxed);
}

}  // namespace cnn2fpga::serve
