// The simulated FPGA fabric as an InferenceBackend.
//
// The generated IP is bit-exact with the reference network (the paper's
// central claim), so the accelerator's *functional* result comes from the
// same reentrant engine as the CPU path — both backends return identical
// logits, and placement can never change a prediction. What differs is
// timing, concurrency and the failure domain:
//
//   timing       every invocation costs DeployedDesign::invocation_seconds
//                (HLS latency + axi driver overhead + initiation-interval
//                pipelining for batches). In real serving the driver thread
//                sleeps for the modeled duration (sleep_for_model); tests
//                disable the sleep and read the virtual clock instead, which
//                advances by the model either way.
//   concurrency  ONE. The model describes one physical IP core; the backend
//                owns a single driver thread (its own Executor(1)), so
//                concurrent dispatches queue, and run_batch() asserts the
//                serial-invocation contract by throwing std::logic_error if
//                two invocations ever overlap.
//   failure      dispatch failures feed the design's accelerator-scoped
//                breaker (BackendServeState), quarantining only accelerator
//                placements of the design.
//
// Because the driver thread is dedicated — not borrowed from the shared CPU
// worker pool — spilling a batch here genuinely adds drain capacity: the
// fabric works through overflow while every CPU worker stays busy.
#pragma once

#include <atomic>
#include <cstdint>

#include "serve/backend/backend.hpp"
#include "serve/executor.hpp"

namespace cnn2fpga::serve {

struct AcceleratorOptions {
  /// Wall-clock the modeled invocation latency on the driver thread. True
  /// in real serving (the fabric really is busy for that long); false under
  /// test, where only the virtual clock advances.
  bool sleep_for_model = true;
};

class AcceleratorBackend final : public InferenceBackend {
 public:
  using Options = AcceleratorOptions;

  explicit AcceleratorBackend(Options options = {});
  ~AcceleratorBackend() override;

  BackendId id() const override { return BackendId::kAccelerator; }
  BackendCapabilities capabilities() const override;

  /// The axi::BlockDesign transaction model, verbatim — no EWMA needed: the
  /// model *is* the accelerator's execution time.
  double estimate_batch_seconds(const DeployedDesign& design,
                                std::size_t images) const override;

  /// Functional result via the reference engine, then the modeled invocation:
  /// virtual clock advances by invocation_seconds(images); with
  /// sleep_for_model the driver thread also sleeps for it. Throws
  /// std::logic_error if a second invocation overlaps this one (the
  /// single-IP-core contract of DeployedDesign::invocation_seconds).
  void run_batch(DeployedDesign& design, std::span<const tensor::Tensor* const> inputs,
                 std::span<tensor::Tensor> outputs) override;

  void warm(DeployedDesign& design) const override;

  /// Joins the driver thread after draining queued invocations. Idempotent.
  void shutdown() override;

  /// Modeled fabric-busy time accumulated across all invocations.
  std::uint64_t virtual_clock_us() const {
    return virtual_clock_us_.load(std::memory_order_relaxed);
  }
  /// Completed invocations.
  std::uint64_t invocations() const {
    return invocations_.load(std::memory_order_relaxed);
  }
  /// Highest number of simultaneously active run_batch() calls ever observed;
  /// must stay 1 (asserted by tests — concurrent dispatches queue on the
  /// driver thread instead of interleaving on the modeled core).
  std::size_t max_observed_concurrency() const {
    return max_concurrency_.load(std::memory_order_relaxed);
  }

 protected:
  void do_submit(std::function<void()> task) override { driver_.submit(std::move(task)); }

 private:
  const Options options_;
  Executor driver_;  ///< the one "DMA driver" thread — serializes invocations
  std::atomic<std::uint64_t> virtual_clock_us_{0};
  std::atomic<std::uint64_t> invocations_{0};
  std::atomic<std::size_t> active_invocations_{0};
  std::atomic<std::size_t> max_concurrency_{0};
};

}  // namespace cnn2fpga::serve
