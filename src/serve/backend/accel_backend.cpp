#include "serve/backend/accel_backend.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace cnn2fpga::serve {

AcceleratorBackend::AcceleratorBackend(Options options)
    : options_(options), driver_(1) {}

AcceleratorBackend::~AcceleratorBackend() { shutdown(); }

BackendCapabilities AcceleratorBackend::capabilities() const {
  BackendCapabilities caps;
  caps.concurrency = 1;  // one physical IP core
  caps.fused_batching = false;
  caps.fixed_point = true;
  caps.modeled_latency = true;
  caps.eager_partial_flush = false;  // DMA round trip wants full batches
  return caps;
}

double AcceleratorBackend::estimate_batch_seconds(const DeployedDesign& design,
                                                  std::size_t images) const {
  return design.invocation_seconds(images);
}

void AcceleratorBackend::run_batch(DeployedDesign& design,
                                   std::span<const tensor::Tensor* const> inputs,
                                   std::span<tensor::Tensor> outputs) {
  // Serial-invocation contract: invocation_seconds models one physical IP
  // core, so overlapping invocations would make the timing model meaningless.
  // Dispatches queue on the single driver thread; an overlap here means a
  // caller bypassed dispatch(), which is a programming error worth failing
  // loudly on.
  const std::size_t depth = active_invocations_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::size_t seen = max_concurrency_.load(std::memory_order_relaxed);
  while (depth > seen &&
         !max_concurrency_.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
  if (depth != 1) {
    active_invocations_.fetch_sub(1, std::memory_order_acq_rel);
    throw std::logic_error(
        "AcceleratorBackend: concurrent invocation of the single IP core "
        "(callers must serialize through dispatch())");
  }
  try {
    run_reference_batch(design, inputs, outputs);
  } catch (...) {
    active_invocations_.fetch_sub(1, std::memory_order_acq_rel);
    throw;
  }
  const double seconds = design.invocation_seconds(inputs.size());
  virtual_clock_us_.fetch_add(static_cast<std::uint64_t>(seconds * 1e6),
                              std::memory_order_relaxed);
  invocations_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sleep_for_model && seconds > 0.0) {
    // The fabric is busy for the modeled duration: occupy the driver thread
    // for it so queueing behind the accelerator behaves like real hardware.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  active_invocations_.fetch_sub(1, std::memory_order_acq_rel);
}

void AcceleratorBackend::warm(DeployedDesign& design) const {
  // The functional model shares the host engine's contexts; priming them here
  // keeps the first spilled batch off the pack-build path.
  design.contexts.warm();
  design.backend_state(BackendId::kAccelerator).warmed.store(true, std::memory_order_relaxed);
}

void AcceleratorBackend::shutdown() { driver_.shutdown(); }

}  // namespace cnn2fpga::serve
