// Cost-model placement of flushed micro-batches onto backends.
//
// For every batch the batcher flushes, the placer ranks the admissible
// backends by estimated *completion* cost — not raw execution speed:
//
//   completion_cost = estimate_batch_seconds * (1 + pending / slots)
//
// `pending / slots` approximates how many backend-service-times of work are
// already ahead of this batch: a backend with every slot busy and a queue
// behind it must drain that queue first, so its effective cost scales up. An
// idle slower backend therefore wins once the faster one's queue grows past
// the speed ratio — which is exactly when overflow should spill to the fabric
// instead of queueing toward a 429. This is the serve-time analogue of the
// paper's CPU-vs-FPGA trade-off (Tables I/II): neither engine dominates; the
// right one depends on load.
//
// The placer is a pure function of BackendSnapshots (unit-testable with
// synthetic scenario tables); the batcher builds the snapshots from live
// signals and claims the chosen backend's breaker probe in ranked order.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "serve/backend/ids.hpp"

namespace cnn2fpga::serve {

enum class PlacerPolicy {
  kCpuOnly,          ///< pre-backend behavior: every batch on the host engine
  kAcceleratorOnly,  ///< every batch on the simulated fabric
  kCost,             ///< completion-cost model decides per batch
};

const char* placer_policy_name(PlacerPolicy policy);
/// Parses "cost" | "cpu" | "accel" | "accelerator". Throws
/// std::invalid_argument on anything else.
PlacerPolicy parse_placer_policy(std::string_view name);

/// Point-in-time view of one backend, as the batcher sees it at flush time.
struct BackendSnapshot {
  BackendId id = BackendId::kCpu;
  double estimate_seconds = 0.0;  ///< raw batch execution estimate
  std::size_t pending = 0;        ///< batches queued + executing there
  std::size_t slots = 1;          ///< concurrent batches it can execute
  bool admissible = true;         ///< policy allows it and its breaker would admit
};

struct RankedBackend {
  BackendId id = BackendId::kCpu;
  double cost = 0.0;  ///< completion cost the ranking was computed from
};

struct Placement {
  /// Admissible backends, cheapest completion cost first. Empty = nothing can
  /// take the batch (every backend excluded by policy or breaker). The
  /// batcher consumes breaker probes in this order, so a breaker that trips
  /// between snapshot and claim falls through to the next-best backend.
  std::vector<RankedBackend> ranked;
  /// Backend with the smallest *raw* estimate among admissible ones. A batch
  /// placed elsewhere is a spill: queue pressure overrode raw speed.
  BackendId fastest = BackendId::kCpu;
};

class Placer {
 public:
  explicit Placer(PlacerPolicy policy) : policy_(policy) {}

  PlacerPolicy policy() const { return policy_; }

  /// Does the policy consider this backend at all (independent of health)?
  bool admits(BackendId id) const;

  /// Rank `snapshots` for one batch. Snapshots whose backend the policy
  /// excludes, or that are marked inadmissible, do not appear in the result.
  Placement place(std::span<const BackendSnapshot> snapshots) const;

  /// estimate * (1 + pending/slots); `slots` is clamped to >= 1.
  static double completion_cost(double estimate_seconds, std::size_t pending,
                                std::size_t slots);

 private:
  PlacerPolicy policy_;
};

}  // namespace cnn2fpga::serve
