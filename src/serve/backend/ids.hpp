// Backend identities shared across the serving layer.
//
// The serving runtime executes batches on one of two engines: the SIMD CPU
// engine (ExecutionContextPool / infer_batch) or the simulated FPGA fabric
// (axi::BlockDesign timing behind the same functional network). Everything
// that is keyed per backend — metrics counters, per-design breakers, placer
// snapshots — indexes by BackendId, so this header must stay dependency-free
// (metrics.hpp and registry.hpp both include it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cnn2fpga::serve {

enum class BackendId : std::size_t {
  kCpu = 0,          ///< host SIMD engine (the Zynq ARM core of Tables I/II)
  kAccelerator = 1,  ///< simulated FPGA fabric (the generated IP of Fig. 5)
};

inline constexpr std::size_t kBackendCount = 2;

inline constexpr std::size_t backend_index(BackendId id) {
  return static_cast<std::size_t>(id);
}

inline const char* backend_name(BackendId id) {
  switch (id) {
    case BackendId::kCpu: return "cpu";
    case BackendId::kAccelerator: return "accelerator";
  }
  return "?";
}

/// Exponentially weighted moving average of a measured duration, safe for
/// concurrent observers (one CAS loop per batch completion — far off the
/// per-image hot path). value() is 0 until the first observation, which the
/// CPU cost estimate treats as "no data yet" and substitutes a model-derived
/// prior.
class EwmaSeconds {
 public:
  explicit EwmaSeconds(double alpha = 0.2) : alpha_(alpha) {}

  void observe(double seconds) {
    double seen = value_.load(std::memory_order_relaxed);
    double next;
    do {
      next = seen == 0.0 ? seconds : seen + alpha_ * (seconds - seen);
    } while (!value_.compare_exchange_weak(seen, next, std::memory_order_relaxed));
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Current average; 0.0 until the first observation.
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool has_samples() const { return samples_.load(std::memory_order_relaxed) != 0; }
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  const double alpha_;
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> samples_{0};
};

}  // namespace cnn2fpga::serve
