// InferenceBackend: one execution engine behind the batcher.
//
// The paper's evaluation (Tables I/II) is a two-backend comparison — the same
// generated CNN on the Zynq's ARM core vs. the generated FPGA IP. The serving
// runtime mirrors that: a batch flushed by the Batcher is *placed* (see
// placer.hpp) onto one InferenceBackend and dispatched to that backend's
// execution resources. Two implementations exist:
//
//   CpuBackend          the SIMD ExecutionContextPool / infer_batch path on
//                       the shared worker pool (cpu_backend.hpp)
//   AcceleratorBackend  the simulated FPGA fabric: functional results from
//                       the same reentrant engine, timing from the
//                       axi::BlockDesign invocation model, one in-flight
//                       invocation (one physical IP core), executed on its
//                       own driver thread (accel_backend.hpp)
//
// The interface carries everything the cost-model placer needs: a per-batch
// execution-time estimate, the backend's concurrency (slots), and live
// queue-depth/inflight signals maintained by dispatch(). run_batch() is the
// compute itself — called from whatever execution resource do_submit chose —
// and fails as a unit: one exception fails every image in the batch (inputs
// are shape-validated at predict(), so an execution failure is environmental,
// not per-request).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <span>

#include "serve/backend/ids.hpp"
#include "serve/registry.hpp"
#include "tensor/tensor.hpp"

namespace cnn2fpga::serve {

struct BackendCapabilities {
  /// Concurrent batches the backend can execute (its slot count).
  std::size_t concurrency = 1;
  /// Whole-batch fused execution (one im2col+GEMM per layer) vs. per-image.
  bool fused_batching = false;
  /// Executes fixed-point (Q(m,n)) designs.
  bool fixed_point = true;
  /// Execution wall time includes a modeled-latency component (the simulated
  /// fabric sleeps for the axi::BlockDesign invocation time).
  bool modeled_latency = false;
  /// A partial lane is still worth an eager flush: per-invocation setup is
  /// cheap, so a small batch wastes little capacity. False for the fabric —
  /// its DMA round trip amortizes over a full batch, so an idle accelerator
  /// pulls full lanes immediately but partial lanes only through the
  /// max_wait deadline flush.
  bool eager_partial_flush = true;
};

class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;
  InferenceBackend(const InferenceBackend&) = delete;
  InferenceBackend& operator=(const InferenceBackend&) = delete;

  virtual BackendId id() const = 0;
  const char* name() const { return backend_name(id()); }
  virtual BackendCapabilities capabilities() const = 0;

  /// Estimated wall seconds to execute one batch of `images` of `design` on
  /// this backend, excluding queueing ahead of it. CpuBackend answers from
  /// the design's measured per-image EWMA (model-derived prior before the
  /// first measurement); AcceleratorBackend answers from the axi::BlockDesign
  /// invocation model. Cheap: called under the batcher lock per flush.
  virtual double estimate_batch_seconds(const DeployedDesign& design,
                                        std::size_t images) const = 0;

  /// Execute `inputs` through `design`, writing one logits tensor per input.
  /// Called from this backend's execution resource (see dispatch()). Throws
  /// on failure; the whole batch shares the verdict. Feeds the design's
  /// per-backend serving state (served counters, measured-latency EWMA).
  virtual void run_batch(DeployedDesign& design,
                         std::span<const tensor::Tensor* const> inputs,
                         std::span<tensor::Tensor> outputs) = 0;

  /// Per-backend deploy-time warming (weight packs, timing model). Idempotent;
  /// called by the runtime when a design is deployed.
  virtual void warm(DeployedDesign& design) const = 0;

  /// Hand `task` to this backend's execution resource, maintaining the
  /// queued/inflight gauges the placer reads. Throws (std::runtime_error)
  /// after the backend's resource has shut down.
  void dispatch(std::function<void()> task);

  /// Batches handed to dispatch() that have not started executing.
  std::size_t queued() const { return queued_.load(std::memory_order_relaxed); }
  /// Batches currently executing.
  std::size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  /// Work competing for this backend's slots (queued + executing). CpuBackend
  /// widens this to the shared executor's whole backlog: foreign tasks on the
  /// pool delay our batches just the same.
  virtual std::size_t pending() const { return queued() + inflight(); }

  /// Stop accepting dispatches and drain what was accepted. Idempotent.
  virtual void shutdown() {}

 protected:
  InferenceBackend() = default;

  /// Enqueue on the backend's execution resource (shared pool / driver
  /// thread).
  virtual void do_submit(std::function<void()> task) = 0;

 private:
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> inflight_{0};
};

/// Functional reference execution shared by both backends: the simulated
/// fabric computes the same function as the host engine (the generated IP is
/// bit-exact with the reference network — the paper's central claim), so both
/// backends produce identical logits and differ only in timing, concurrency
/// and failure domain. Float designs run the fused infer_batch path
/// (bit-identical to per-image infer by the kernel chunk-invariance
/// contract); fixed designs run per-image forward_fixed through the same
/// leased context.
void run_reference_batch(DeployedDesign& design,
                         std::span<const tensor::Tensor* const> inputs,
                         std::span<tensor::Tensor> outputs);

}  // namespace cnn2fpga::serve
