#include "serve/backend/placer.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cnn2fpga::serve {

const char* placer_policy_name(PlacerPolicy policy) {
  switch (policy) {
    case PlacerPolicy::kCpuOnly: return "cpu";
    case PlacerPolicy::kAcceleratorOnly: return "accelerator";
    case PlacerPolicy::kCost: return "cost";
  }
  return "?";
}

PlacerPolicy parse_placer_policy(std::string_view name) {
  if (name == "cost") return PlacerPolicy::kCost;
  if (name == "cpu") return PlacerPolicy::kCpuOnly;
  if (name == "accel" || name == "accelerator") return PlacerPolicy::kAcceleratorOnly;
  throw std::invalid_argument("placer policy must be cost, cpu or accel, got '" +
                              std::string(name) + "'");
}

bool Placer::admits(BackendId id) const {
  switch (policy_) {
    case PlacerPolicy::kCpuOnly: return id == BackendId::kCpu;
    case PlacerPolicy::kAcceleratorOnly: return id == BackendId::kAccelerator;
    case PlacerPolicy::kCost: return true;
  }
  return true;
}

double Placer::completion_cost(double estimate_seconds, std::size_t pending,
                               std::size_t slots) {
  const double width = static_cast<double>(slots == 0 ? 1 : slots);
  return estimate_seconds * (1.0 + static_cast<double>(pending) / width);
}

Placement Placer::place(std::span<const BackendSnapshot> snapshots) const {
  Placement placement;
  double fastest_estimate = 0.0;
  bool have_fastest = false;
  for (const BackendSnapshot& snapshot : snapshots) {
    if (!snapshot.admissible || !admits(snapshot.id)) continue;
    placement.ranked.push_back(
        {snapshot.id, completion_cost(snapshot.estimate_seconds, snapshot.pending,
                                      snapshot.slots)});
    if (!have_fastest || snapshot.estimate_seconds < fastest_estimate) {
      fastest_estimate = snapshot.estimate_seconds;
      placement.fastest = snapshot.id;
      have_fastest = true;
    }
  }
  // stable_sort: equal costs keep snapshot order, so callers list their
  // preferred backend first to break ties deterministically.
  std::stable_sort(placement.ranked.begin(), placement.ranked.end(),
                   [](const RankedBackend& a, const RankedBackend& b) { return a.cost < b.cost; });
  return placement;
}

}  // namespace cnn2fpga::serve
