#include "serve/backend/cpu_backend.hpp"

#include <chrono>

#include "nn/kernels/kernels.hpp"

namespace cnn2fpga::serve {

BackendCapabilities CpuBackend::capabilities() const {
  BackendCapabilities caps;
  caps.concurrency = executor_.thread_count();
  caps.fused_batching = nn::kernels::active() == nn::kernels::Kind::kAvx2;
  caps.fixed_point = true;
  caps.modeled_latency = false;
  return caps;
}

double CpuBackend::estimate_batch_seconds(const DeployedDesign& design,
                                          std::size_t images) const {
  const EwmaSeconds& measured =
      design.backend_state(BackendId::kCpu).measured_seconds_per_image;
  // Cold prior: assume per-image parity with the generated hardware so the
  // first placement is decided by queue depths, not a made-up speed gap. One
  // executed batch replaces the prior with a real measurement. Linear scaling
  // slightly over-estimates fused batches (weights stream once per batch, not
  // once per image) — a conservative bound is fine for placement.
  const double per_image =
      measured.has_samples() ? measured.value() : design.invocation_seconds(1);
  return per_image * static_cast<double>(images);
}

void CpuBackend::run_batch(DeployedDesign& design,
                           std::span<const tensor::Tensor* const> inputs,
                           std::span<tensor::Tensor> outputs) {
  const auto start = std::chrono::steady_clock::now();
  run_reference_batch(design, inputs, outputs);
  if (!inputs.empty()) {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    design.backend_state(BackendId::kCpu)
        .measured_seconds_per_image.observe(seconds / static_cast<double>(inputs.size()));
  }
}

void CpuBackend::warm(DeployedDesign& design) const {
  // Build the pool's shared weight-pack cache so no request-path context ever
  // packs a panel (no-op on scalar hosts, idempotent otherwise).
  design.contexts.warm();
  design.backend_state(BackendId::kCpu).warmed.store(true, std::memory_order_relaxed);
}

std::size_t CpuBackend::pending() const {
  const std::size_t own = queued() + inflight();
  const std::size_t backlog = executor_.backlog();
  return backlog > own ? backlog : own;
}

}  // namespace cnn2fpga::serve
