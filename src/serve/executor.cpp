#include "serve/executor.hpp"

#include <stdexcept>

namespace cnn2fpga::serve {

Executor::Executor(std::size_t threads) {
  if (threads == 0) threads = 1;
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() { shutdown(); }

void Executor::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("Executor: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t Executor::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + active_;
}

void Executor::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
  }
}

}  // namespace cnn2fpga::serve
