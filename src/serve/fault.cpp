#include "serve/fault.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;

namespace {

/// splitmix64: a full-period mixer, so firing decisions are i.i.d.-looking
/// but a pure function of (seed, site, kind, hit index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kAlloc: return "alloc";
  }
  return "?";
}

}  // namespace

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Armed>& armed = sites_[site];
  for (Armed& existing : armed) {
    if (existing.spec.kind == spec.kind) {
      existing = Armed{spec, 0, 0};  // re-arm: fresh hit/fire accounting
      return;
    }
  }
  armed.push_back(Armed{spec, 0, 0});
  armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return;
  armed_.fetch_sub(it->second.size(), std::memory_order_relaxed);
  sites_.erase(it);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(0, std::memory_order_relaxed);
  sites_.clear();
}

void FaultInjector::seed(std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = value;
}

bool FaultInjector::fire(std::string_view site, FaultKind kind, FaultSpec* spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  for (Armed& armed : it->second) {
    if (armed.spec.kind != kind) continue;
    const std::uint64_t n = armed.hits++;
    if (armed.spec.count != 0 && armed.fires >= armed.spec.count) return false;  // budget spent
    bool fires = armed.spec.rate >= 1.0;
    if (!fires && armed.spec.rate > 0.0) {
      util::Fnv1a h;
      h.update(site);
      const std::uint64_t word =
          mix(seed_ ^ h.digest() ^ (static_cast<std::uint64_t>(kind) << 56) ^
              n * 0x9e3779b97f4a7c15ull);
      fires = static_cast<double>(word >> 11) * 0x1.0p-53 < armed.spec.rate;
    }
    if (!fires) return false;
    ++armed.fires;
    if (spec != nullptr) *spec = armed.spec;
    return true;
  }
  return false;
}

bool FaultInjector::should_fail(std::string_view site, FaultSpec* spec) {
  if (!enabled()) return false;
  return fire(site, FaultKind::kError, spec);
}

bool FaultInjector::should_fail_alloc(std::string_view site) {
  if (!enabled()) return false;
  return fire(site, FaultKind::kAlloc);
}

void FaultInjector::inject_latency(std::string_view site) {
  if (!enabled()) return;
  FaultSpec spec;
  // Decide under the lock, sleep outside it: a long injected delay must not
  // serialize every other site through the injector mutex.
  if (fire(site, FaultKind::kLatency, &spec) && spec.latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(spec.latency_us));
  }
}

bool FaultInjector::should_stall(std::string_view site, std::uint64_t* latency_us) {
  if (!enabled()) return false;
  FaultSpec spec;
  if (!fire(site, FaultKind::kLatency, &spec)) return false;
  if (latency_us != nullptr) *latency_us = spec.latency_us;
  return true;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return 0;
  std::uint64_t total = 0;
  for (const Armed& armed : it->second) total += armed.fires;
  return total;
}

bool FaultInjector::configure(const std::string& spec, std::string* error) {
  // Parse everything before arming anything: a half-applied spec is worse
  // than a rejected one.
  struct Parsed {
    std::string site;
    FaultSpec spec;
  };
  std::vector<Parsed> parsed;
  for (const std::string& entry : util::split(spec, ',')) {
    const std::string text(util::trim(entry));
    if (text.empty()) continue;
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error) *error = format("fault entry '%s': expected site=kind[:...]", text.c_str());
      return false;
    }
    Parsed out;
    out.site = text.substr(0, eq);
    const auto fields = util::split(text.substr(eq + 1), ':');
    if (fields.empty()) {
      if (error) *error = format("fault entry '%s': missing kind", text.c_str());
      return false;
    }
    const std::string& kind = fields[0];
    char* end = nullptr;
    if (kind == "error" || kind == "alloc") {
      out.spec.kind = kind == "error" ? FaultKind::kError : FaultKind::kAlloc;
      if (fields.size() >= 2) {
        out.spec.rate = std::strtod(fields[1].c_str(), &end);
        if (end == fields[1].c_str() || out.spec.rate < 0.0 || out.spec.rate > 1.0) {
          if (error) *error = format("fault entry '%s': rate must be in [0,1]", text.c_str());
          return false;
        }
      }
      if (fields.size() >= 3) {
        out.spec.count = std::strtoull(fields[2].c_str(), &end, 10);
        if (end == fields[2].c_str()) {
          if (error) *error = format("fault entry '%s': bad count", text.c_str());
          return false;
        }
      }
      if (fields.size() >= 4 && kind == "error") {
        out.spec.bytes = std::strtoull(fields[3].c_str(), &end, 10);
        if (end == fields[3].c_str()) {
          if (error) *error = format("fault entry '%s': bad bytes", text.c_str());
          return false;
        }
      }
      const std::size_t max_fields = kind == "error" ? 4u : 3u;
      if (fields.size() > max_fields) {
        if (error) *error = format("fault entry '%s': too many fields", text.c_str());
        return false;
      }
    } else if (kind == "latency") {
      out.spec.kind = FaultKind::kLatency;
      if (fields.size() < 2) {
        if (error) *error = format("fault entry '%s': latency needs microseconds", text.c_str());
        return false;
      }
      out.spec.latency_us = std::strtoull(fields[1].c_str(), &end, 10);
      if (end == fields[1].c_str()) {
        if (error) *error = format("fault entry '%s': bad latency", text.c_str());
        return false;
      }
      if (fields.size() >= 3) {
        out.spec.count = std::strtoull(fields[2].c_str(), &end, 10);
        if (end == fields[2].c_str()) {
          if (error) *error = format("fault entry '%s': bad count", text.c_str());
          return false;
        }
      }
      if (fields.size() > 3) {
        if (error) *error = format("fault entry '%s': too many fields", text.c_str());
        return false;
      }
    } else {
      if (error) {
        *error = format("fault entry '%s': kind must be error, latency or alloc", text.c_str());
      }
      return false;
    }
    parsed.push_back(std::move(out));
  }
  for (const Parsed& entry : parsed) arm(entry.site, entry.spec);
  return true;
}

void FaultInjector::configure_from_env() {
  if (const char* seed_text = std::getenv("CNN2FPGA_FAULT_SEED"); seed_text != nullptr) {
    seed(std::strtoull(seed_text, nullptr, 10));
  }
  const char* spec = std::getenv("CNN2FPGA_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  std::string error;
  if (!configure(spec, &error)) {
    std::fprintf(stderr, "CNN2FPGA_FAULTS ignored: %s\n", error.c_str());
  }
}

json::Value FaultInjector::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Object out;
  for (const auto& [site, armed] : sites_) {
    json::Array entries;
    for (const Armed& fault : armed) {
      json::Object entry;
      entry["kind"] = kind_name(fault.spec.kind);
      entry["rate"] = fault.spec.rate;
      entry["count"] = fault.spec.count;
      entry["latency_us"] = fault.spec.latency_us;
      entry["bytes"] = fault.spec.bytes;
      entry["hits"] = fault.hits;
      entry["fires"] = fault.fires;
      entries.push_back(std::move(entry));
    }
    out[site] = std::move(entries);
  }
  return json::Value(std::move(out));
}

}  // namespace cnn2fpga::serve
