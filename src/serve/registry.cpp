#include "serve/registry.hpp"

#include <cstring>
#include <stdexcept>

#include "axi/block_design.hpp"
#include "hls/schedule.hpp"
#include "nn/fixed_inference.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;

namespace {

/// Seeded probe images run at deploy to anchor a quantized design to the
/// fixed-point accuracy model. Eight images keep a quantized deploy cheap
/// (well under one batch of serving work) while still exercising every layer.
constexpr std::size_t kQuantProbes = 8;
constexpr std::uint64_t kQuantProbeSeed = 0xC0FFEE51u;

/// Run the deploy-time accuracy validation of a freshly built quantized
/// design: for each probe, the fixed-point model (forward_fixed) provides the
/// modeled error vs float and the expected scores, and the serving path is
/// checked against both. The design is not yet published, so no lock is held.
QuantReport validate_quantized(DeployedDesign& design) {
  QuantReport report;
  const nn::FixedPointFormat format = nn::serve_precision_format(design.precision);
  // A scalar float context doubles as the fixed model's parameter cache and
  // (via track_output_error) the float reference whose argmax defines top-1
  // agreement.
  nn::ExecutionContext fixed_ctx(design.net, nn::kernels::Kind::kScalar, nullptr);
  auto lease = design.contexts.acquire();
  util::Rng rng(kQuantProbeSeed);
  std::size_t agree = 0;
  for (std::size_t p = 0; p < kQuantProbes; ++p) {
    tensor::Tensor input(design.net.input_shape());
    input.fill_uniform(rng, -1.0f, 1.0f);
    const nn::FixedForwardResult fixed =
        nn::forward_fixed(design.net, input, format, fixed_ctx, /*track_output_error=*/true);
    if (fixed.output_error > report.max_abs_error) {
      report.max_abs_error = fixed.output_error;
    }
    const std::size_t float_predicted = fixed_ctx.output().argmax();
    const tensor::Tensor& served = design.net.infer(input, *lease);
    if (served.shape() != fixed.scores.shape() ||
        std::memcmp(served.data(), fixed.scores.data(), served.size() * sizeof(float)) !=
            0) {
      report.matches_fixed_model = false;
    }
    if (served.argmax() == float_predicted) ++agree;
  }
  report.probes = kQuantProbes;
  report.top1_agreement =
      static_cast<double>(agree) / static_cast<double>(kQuantProbes);
  report.validated = true;
  return report;
}

}  // namespace

double DeployedDesign::invocation_seconds(std::size_t images) const {
  if (images == 0) return 0.0;
  const hls::HlsReport& report = design.hls_report;
  if (images == 1) {
    // One blocking round trip: ioctl into the DMA driver, cache flush and
    // invalidate, interrupt wake-up (axi::kBlockingDriverSeconds).
    return report.latency_seconds() + axi::kBlockingDriverSeconds;
  }
  // Scatter-gather batch: the DATAFLOW core accepts a new image every
  // initiation interval, and each queued descriptor costs the cheap
  // streaming-driver path instead of a blocking round trip.
  const std::uint64_t cycles =
      report.latency_cycles + (images - 1) * report.interval_cycles;
  return hls::cycles_to_seconds(cycles, report.device.clock_mhz) +
         static_cast<double>(images) * axi::kStreamingDriverSeconds;
}

DesignRegistry::DesignRegistry(std::size_t capacity, ServeMetrics* metrics,
                               BreakerConfig breaker_config, FaultInjector* faults)
    : capacity_(capacity == 0 ? 1 : capacity),
      metrics_(metrics),
      breaker_config_(breaker_config),
      faults_(faults) {}

DeployOutcome DesignRegistry::deploy(const core::NetworkDescriptor& descriptor,
                                     std::vector<std::uint8_t> weights,
                                     nn::ServePrecision precision) {
  // The registry is content-addressed over (descriptor, weights, precision):
  // the serving arithmetic changes what a deployed instance computes, so the
  // same network at two precisions is two cache entries. float32 keeps the
  // bare hash so pre-precision ids stay stable.
  std::string key = core::Framework::cache_key(descriptor, weights);
  if (precision != nn::ServePrecision::kFloat32) {
    key += "-";
    key += nn::serve_precision_name(precision);
  }
  if (metrics_) metrics_->deploys.add();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = entries_.find(key); it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ++stats_.hits;
      if (metrics_) metrics_->deploy_cache_hits.add();
      return {it->second.design, /*cache_hit=*/true};
    }
    ++stats_.misses;
  }

  // Fault site: exercised before the expensive generation so an injected
  // deploy failure costs nothing and leaves no half-built state behind.
  if (faults_ != nullptr) {
    faults_->inject_latency("registry.deploy");
    if (faults_->should_fail_alloc("registry.deploy")) throw std::bad_alloc();
    if (faults_->should_fail("registry.deploy")) {
      throw InjectedFault(format("injected deploy failure for '%s'", descriptor.name.c_str()));
    }
  }

  // Generate outside the lock: the pipeline (codegen + HLS estimate) is the
  // expensive part, and concurrent deploys of *different* designs should not
  // serialize on it. A racing deploy of the same key is resolved below.
  nn::Network net = descriptor.build_network();
  nn::deserialize_weights(net, weights);
  core::GeneratedDesign generated = core::Framework::generate(descriptor, net);
  auto fresh = std::make_shared<DeployedDesign>(
      key, std::move(generated), std::move(net), std::move(weights), precision,
      breaker_config_, metrics_ != nullptr ? &metrics_->breaker_opens : nullptr);
  if (precision != nn::ServePrecision::kFloat32) {
    // Anchor the quantized instance to the fixed-point accuracy model before
    // anyone can see it; the report is immutable afterwards.
    fresh->quant = validate_quantized(*fresh);
    LOG_INFO("serve") << format(
        "quantized deploy '%s' (%s): max_abs_error=%.6f top1_agreement=%.2f %s",
        descriptor.name.c_str(), nn::serve_precision_name(precision),
        fresh->quant.max_abs_error, fresh->quant.top1_agreement,
        fresh->quant.matches_fixed_model ? "bit-exact vs fixed model"
                                         : "DIVERGES from fixed model");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    // Lost a deploy race: keep the incumbent (in-flight predictions may
    // already hold it) and drop our duplicate.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return {it->second.design, /*cache_hit=*/false};
  }

  lru_.push_front(key);
  entries_.emplace(key, Entry{fresh, lru_.begin()});
  while (entries_.size() > capacity_) {
    const std::string& victim = lru_.back();
    LOG_DEBUG("serve") << format("registry evicting design %s", victim.c_str());
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    if (metrics_) metrics_->deploy_evictions.add();
  }
  LOG_INFO("serve") << format("deployed '%s' as %s (%zu/%zu designs resident)",
                              fresh->descriptor().name.c_str(), key.c_str(), entries_.size(),
                              capacity_);
  return {fresh, /*cache_hit=*/false};
}

DeployOutcome DesignRegistry::deploy_random(const core::NetworkDescriptor& descriptor,
                                            std::uint64_t seed,
                                            nn::ServePrecision precision) {
  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);
  return deploy(descriptor, nn::serialize_weights(net), precision);
}

std::shared_ptr<DeployedDesign> DesignRegistry::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.design;
}

std::vector<std::shared_ptr<DeployedDesign>> DesignRegistry::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<DeployedDesign>> out;
  out.reserve(entries_.size());
  for (const std::string& id : lru_) out.push_back(entries_.at(id).design);
  return out;
}

std::size_t DesignRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

RegistryStats DesignRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cnn2fpga::serve
