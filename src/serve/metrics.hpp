// Serving metrics: lock-cheap counters and latency histograms.
//
// Every hot-path touch is a relaxed atomic increment — no mutex is taken
// while a prediction is in flight. Snapshots (`to_json`) read the atomics
// without stopping writers, so a scrape sees a consistent-enough view for
// monitoring (individual counters are exact; cross-counter skew is bounded
// by whatever landed between two loads).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "nn/quantize.hpp"
#include "serve/backend/ids.hpp"

namespace cnn2fpga::serve {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Level gauge with a high-water mark. Writers publish the current level
/// with relaxed stores (the batcher updates it under its own lock, so the
/// value is exact); readers see the instantaneous level and the peak ever
/// reached — the number the "memory stays bounded" guarantee is judged by.
class Gauge {
 public:
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    std::uint64_t seen = peak_.load(std::memory_order_relaxed);
    while (value > seen &&
           !peak_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Log2-bucketed histogram of non-negative integer samples (microseconds,
/// batch sizes). Recording is a pair of relaxed atomic adds; percentiles are
/// estimated as the upper bound of the containing power-of-two bucket, so
/// p50/p95/p99 are exact to within a factor of two — plenty for spotting a
/// queueing regression, at zero locking cost.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  ///< covers values up to ~2^39

  /// Largest value bucket `index` can hold: 2^index - 1 (bucket 0 holds only
  /// 0). Public so a fleet aggregator merging scraped bucket arrays computes
  /// percentiles with exactly the same rounding as a live histogram.
  static std::uint64_t bucket_upper_bound(std::size_t index) {
    return index == 0 ? 0 : (std::uint64_t{1} << index) - 1;
  }

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Value below which fraction `p` (0..1) of the samples fall. 0 if empty.
  std::uint64_t percentile(double p) const;

  /// {"count", "sum", "mean", "max", "p50", "p95", "p99",
  ///  "buckets": [[index, count], ...]} — `buckets` is sparse (non-empty
  /// buckets only) so a router can merge histograms across workers exactly
  /// instead of approximating from pre-computed percentiles.
  json::Value to_json() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// All counters of the serving runtime, in one scrape-friendly bundle.
struct ServeMetrics {
  // Deploy path.
  Counter deploys;            ///< total deploy requests that reached the registry
  Counter deploy_cache_hits;  ///< deploys satisfied without regeneration
  Counter deploy_evictions;   ///< designs dropped by the LRU bound

  // Predict path.
  Counter predictions;        ///< individual images served
  Counter predict_errors;     ///< requests failed (bad input, shutdown, ...)
  Counter batches;            ///< micro-batches executed

  // Overload / failure containment.
  Counter admitted;           ///< requests accepted into the batcher
  Counter shed;               ///< requests rejected by bounded admission (429)
  Counter expired;            ///< requests dropped past their deadline (504)
  Counter breaker_rejects;    ///< requests rejected by an open breaker (503)
  Counter breaker_opens;      ///< closed/half-open -> open transitions
  Gauge queue_depth;          ///< admitted-but-not-executing requests (+ peak)

  Histogram batch_size;       ///< images per executed batch
  Histogram queue_us;         ///< request wait in the batcher queue
  Histogram exec_us;          ///< batch execution time (host functional model)
  Histogram accel_us;         ///< modeled accelerator invocation time per batch

  /// Per-backend placement and execution counters (indexed by
  /// backend_index()). `dispatched` counts placement decisions; `batches`/
  /// `images` count completed executions, `errors` failed ones.
  struct BackendMetrics {
    Counter dispatched;       ///< batches the placer sent to this backend
    Counter batches;          ///< batches that executed successfully
    Counter images;           ///< images served by this backend
    Counter errors;           ///< batches that failed on this backend
    Histogram exec_us;        ///< batch execution time on this backend
  };
  BackendMetrics backend[kBackendCount];
  /// Per-serving-precision dispatch and latency counters (indexed by
  /// nn::serve_precision_index()): which arithmetic each batch ran in, and
  /// what it cost. `dispatched` counts batches that started executing at the
  /// precision (including ones that then failed); `batches`/`images` count
  /// successful executions.
  struct PrecisionMetrics {
    Counter dispatched;       ///< batches executed at this precision
    Counter batches;          ///< batches that completed successfully
    Counter images;           ///< images served at this precision
    Histogram exec_us;        ///< batch execution time at this precision
  };
  PrecisionMetrics precision[nn::kServePrecisionCount];
  /// Batches placed off the raw-fastest admissible backend because queue
  /// pressure made the slower-but-idle one finish sooner — the traffic that
  /// would have queued (or been shed with 429) on a single engine.
  Counter spilled;

  /// spilled / total dispatched batches (0 when nothing dispatched yet).
  double spill_rate() const;

  double cache_hit_rate() const;

  json::Value to_json() const;
  std::string to_json_text() const { return to_json().dump(); }
};

}  // namespace cnn2fpga::serve
