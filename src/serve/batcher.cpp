#include "serve/batcher.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "serve/backend/cpu_backend.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;

namespace {
std::uint64_t elapsed_us(Batcher::Clock::time_point from, Batcher::Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

std::vector<std::shared_ptr<InferenceBackend>> single_cpu_backend(Executor& executor) {
  return {std::make_shared<CpuBackend>(executor)};
}
}  // namespace

Batcher::Batcher(Executor& executor, BatcherConfig config, ServeMetrics* metrics,
                 FaultInjector* faults)
    : Batcher(single_cpu_backend(executor), PlacerPolicy::kCpuOnly,
              std::max<std::size_t>(1, executor.thread_count()), config, metrics, faults) {}

Batcher::Batcher(std::vector<std::shared_ptr<InferenceBackend>> backends,
                 PlacerPolicy policy, std::size_t cpu_slots, BatcherConfig config,
                 ServeMetrics* metrics, FaultInjector* faults)
    : backends_(std::move(backends)),
      placer_(policy),
      config_{config.max_batch == 0 ? 1 : config.max_batch,
              config.max_wait_us,
              config.max_inflight_per_design,
              config.max_queue_depth,
              config.max_queue_depth_per_design},
      inflight_limit_(config.max_inflight_per_design != 0
                          ? config.max_inflight_per_design
                          : std::max<std::size_t>(1, cpu_slots)),
      metrics_(metrics),
      faults_(faults),
      deadline_thread_([this] { deadline_loop(); }) {
  if (backends_.empty()) throw std::invalid_argument("Batcher: no backends");
}

Batcher::~Batcher() { shutdown(); }

std::future<Prediction> Batcher::predict(std::shared_ptr<DeployedDesign> design,
                                         tensor::Tensor input, Clock::time_point deadline) {
  if (!design) throw std::invalid_argument("Batcher::predict: null design");
  if (input.shape() != design->net.input_shape()) {
    throw std::invalid_argument(format(
        "Batcher::predict: design '%s' expects input %s, got %s",
        design->descriptor().name.c_str(), design->net.input_shape().to_string().c_str(),
        input.shape().to_string().c_str()));
  }
  if (faults_ != nullptr) {
    faults_->inject_latency("batcher.enqueue");
    if (faults_->should_fail_alloc("batcher.enqueue")) throw std::bad_alloc();
  }

  Request request;
  request.input = std::move(input);
  request.enqueued = Clock::now();
  request.deadline = deadline;
  if (deadline <= request.enqueued) {
    // The client's budget is already spent; do not touch a lane for it.
    if (metrics_) metrics_->expired.add();
    throw DeadlineExceededError("predict: deadline expired before enqueue");
  }
  std::future<Prediction> future = request.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw ShutdownError("Batcher: predict after shutdown");

  // Bounded admission: shed before taking any queue space. waiting_ counts
  // every admitted request that has not started executing, so memory and
  // queueing delay stay bounded no matter how fast clients push.
  if (config_.max_queue_depth != 0 && waiting_ >= config_.max_queue_depth) {
    if (metrics_) metrics_->shed.add();
    throw OverloadedError(
        format("predict: admission queue full (%zu waiting)", waiting_), waiting_);
  }
  if (config_.max_queue_depth_per_design != 0) {
    const auto it = waiting_by_design_.find(design->id);
    const std::size_t design_waiting = it == waiting_by_design_.end() ? 0 : it->second;
    if (design_waiting >= config_.max_queue_depth_per_design) {
      if (metrics_) metrics_->shed.add();
      throw OverloadedError(
          format("predict: design '%s' queue full (%zu waiting)",
                 design->descriptor().name.c_str(), design_waiting),
          design_waiting);
    }
  }

  // Circuit breakers, checked after the shed paths. Admission only needs SOME
  // backend whose breaker would take the batch; the winning backend's probe
  // slot is claimed at placement (flush), so a shed request can never claim
  // (and then strand) it. Only a fully quarantined design — every admissible
  // backend's breaker closed to us — rejects here.
  {
    bool placeable = false;
    std::uint64_t retry_after_ms = 0;
    bool have_retry = false;
    for (const auto& backend : backends_) {
      if (!placer_.admits(backend->id())) continue;
      Breaker& breaker = design->backend_state(backend->id()).breaker;
      if (breaker.would_allow()) {
        placeable = true;
        break;
      }
      const std::uint64_t retry = breaker.retry_after_ms();
      if (!have_retry || retry < retry_after_ms) {
        retry_after_ms = retry;
        have_retry = true;
      }
    }
    if (!placeable) {
      if (metrics_) metrics_->breaker_rejects.add();
      throw DesignUnavailableError(
          format("predict: design '%s' unavailable (circuit breaker %s on every backend)",
                 design->descriptor().name.c_str(), design->breaker.state_name()),
          retry_after_ms);
    }
  }

  ++waiting_;
  ++waiting_by_design_[design->id];
  if (metrics_) {
    metrics_->admitted.add();
    metrics_->queue_depth.set(waiting_);
  }

  Lane& lane = lanes_[design->id];
  if (lane.requests.empty()) {
    lane.design = design;
    lane.deadline = request.enqueued + std::chrono::microseconds(config_.max_wait_us);
  }
  lane.requests.push_back(std::move(request));
  if (capacity_available_locked(design->id, lane.requests.size()) ||
      lane.requests.size() >= config_.max_batch) {
    // Free engine or full batch: dispatch from the submitting thread. Only
    // requests arriving while every admissible backend is occupied wait to
    // coalesce.
    Lane ready = std::move(lane);
    lanes_.erase(design->id);
    flush_locked(std::move(ready));
  } else {
    lane_cv_.notify_one();  // deadline thread re-arms for the new lane
  }
  return future;
}

void Batcher::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Drain: everything already accepted still executes.
    while (!lanes_.empty()) {
      Lane lane = std::move(lanes_.begin()->second);
      lanes_.erase(lanes_.begin());
      flush_locked(std::move(lane));
    }
  }
  lane_cv_.notify_all();
  if (deadline_thread_.joinable()) deadline_thread_.join();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (backends_shut_) return;
    backends_shut_ = true;
  }
  // Backend shutdown happens after the drain (their resources executed the
  // in-flight batches) and outside the lock (joining a driver thread must
  // never hold the batcher mutex). The CpuBackend's shutdown is a no-op —
  // the shared executor belongs to the runtime.
  for (const auto& backend : backends_) backend->shutdown();
}

std::size_t Batcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, lane] : lanes_) total += lane.requests.size();
  return total;
}

std::size_t Batcher::waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

void Batcher::settle_waiting_locked(const std::string& design_id, std::size_t count) {
  waiting_ -= std::min(count, waiting_);
  if (const auto it = waiting_by_design_.find(design_id); it != waiting_by_design_.end()) {
    if (it->second <= count) {
      waiting_by_design_.erase(it);
    } else {
      it->second -= count;
    }
  }
  if (metrics_) metrics_->queue_depth.set(waiting_);
}

void Batcher::expire_request(Request& request) {
  if (metrics_) metrics_->expired.add();
  request.promise.set_exception(std::make_exception_ptr(
      DeadlineExceededError("predict: deadline exceeded before execution")));
}

void Batcher::deadline_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (lanes_.empty()) {
      lane_cv_.wait(lock, [this] { return stopping_ || !lanes_.empty(); });
      continue;
    }
    auto earliest = Clock::time_point::max();
    for (const auto& [id, lane] : lanes_) {
      if (lane.deadline < earliest) earliest = lane.deadline;
    }
    if (Clock::now() < earliest) {
      lane_cv_.wait_until(lock, earliest);
      continue;  // re-evaluate: lanes may have been flushed or added
    }
    const auto now = Clock::now();
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      if (it->second.deadline <= now) {
        Lane expired = std::move(it->second);
        it = lanes_.erase(it);
        flush_locked(std::move(expired));
      } else {
        ++it;
      }
    }
  }
}

bool Batcher::capacity_available_locked(const std::string& design_id,
                                        std::size_t lane_size) const {
  const auto busy_it = busy_.find(design_id);
  for (const auto& backend : backends_) {
    if (!placer_.admits(backend->id())) continue;
    if (!backend->capabilities().eager_partial_flush && lane_size < config_.max_batch) {
      continue;  // the fabric takes partial lanes only on the deadline flush
    }
    if (backend->id() == BackendId::kCpu) {
      // The shared pool runs many designs; what the flush trigger bounds is
      // this design's share of it (the pre-backend inflight_limit_ rule).
      const std::size_t busy =
          busy_it == busy_.end() ? 0 : (*busy_it).second[backend_index(backend->id())];
      if (busy < inflight_limit_) return true;
    } else if (backend->pending() < backend->capabilities().concurrency) {
      // The accelerator is one global IP core: idle is idle for every design.
      return true;
    }
  }
  return false;
}

InferenceBackend* Batcher::choose_backend_locked(DeployedDesign& design, std::size_t images,
                                                 bool& spill, std::uint64_t& retry_after_ms) {
  spill = false;
  retry_after_ms = 0;
  std::vector<BackendSnapshot> snapshots;
  snapshots.reserve(backends_.size());
  bool have_retry = false;
  for (const auto& backend : backends_) {
    if (!placer_.admits(backend->id())) continue;
    Breaker& breaker = design.backend_state(backend->id()).breaker;
    const bool admissible = breaker.would_allow();
    if (!admissible) {
      const std::uint64_t retry = breaker.retry_after_ms();
      if (!have_retry || retry < retry_after_ms) {
        retry_after_ms = retry;
        have_retry = true;
      }
    }
    BackendSnapshot snapshot;
    snapshot.id = backend->id();
    snapshot.estimate_seconds = backend->estimate_batch_seconds(design, images);
    snapshot.pending = backend->pending();
    snapshot.slots = backend->capabilities().concurrency;
    snapshot.admissible = admissible;
    snapshots.push_back(snapshot);
  }

  const Placement placement = placer_.place(snapshots);
  for (const RankedBackend& ranked : placement.ranked) {
    // Claim the probe / admission on the breaker we are about to use. A
    // breaker that tripped between snapshot and claim (or whose half-open
    // probe another batch took) falls through to the next-cheapest backend.
    if (!design.backend_state(ranked.id).breaker.allow()) continue;
    for (const auto& backend : backends_) {
      if (backend->id() == ranked.id) {
        spill = ranked.id != placement.fastest;
        return backend.get();
      }
    }
  }
  return nullptr;
}

void Batcher::flush_locked(Lane lane) {
  if (lane.requests.empty()) return;
  const std::string design_id = lane.design->id;

  // Deadline propagation, stage 1: a request whose deadline passed while it
  // coalesced is failed here instead of being dispatched.
  const auto now = Clock::now();
  std::vector<Request> live;
  live.reserve(lane.requests.size());
  std::size_t dropped = 0;
  for (Request& request : lane.requests) {
    if (request.deadline <= now) {
      expire_request(request);
      ++dropped;
    } else {
      live.push_back(std::move(request));
    }
  }
  if (dropped != 0) settle_waiting_locked(design_id, dropped);
  if (live.empty()) return;  // nothing placed, no probe held

  // Placement: one cost-model decision per batch. The chosen backend's
  // breaker admission (half-open probe included) is consumed here.
  bool spill = false;
  std::uint64_t retry_after_ms = 0;
  InferenceBackend* backend =
      choose_backend_locked(*lane.design, live.size(), spill, retry_after_ms);
  if (backend == nullptr) {
    // Every backend quarantined (or its probe taken) since admission: the
    // design is unavailable for this batch.
    settle_waiting_locked(design_id, live.size());
    const auto error = std::make_exception_ptr(DesignUnavailableError(
        format("predict: design '%s' unavailable (no backend admissible)",
               lane.design->descriptor().name.c_str()),
        retry_after_ms));
    for (Request& request : live) {
      if (metrics_) metrics_->breaker_rejects.add();
      request.promise.set_exception(error);
    }
    return;
  }
  const std::size_t backend_idx = backend_index(backend->id());

  // Fault site backend.dispatch (error/alloc): the hand-off to the chosen
  // backend's execution resource failed. That is a failure OF that backend —
  // feed its breaker so repeated dispatch faults quarantine it — and the
  // batch never starts, so the requests fail here.
  if (faults_ != nullptr) {
    std::exception_ptr fault;
    if (faults_->should_fail_alloc("backend.dispatch")) {
      fault = std::make_exception_ptr(std::bad_alloc());
    } else if (faults_->should_fail("backend.dispatch")) {
      fault = std::make_exception_ptr(InjectedFault(
          format("injected dispatch failure on backend '%s'", backend->name())));
    }
    if (fault) {
      lane.design->backend_state(backend->id()).breaker.record_failure();
      settle_waiting_locked(design_id, live.size());
      if (metrics_) metrics_->backend[backend_idx].errors.add();
      for (Request& request : live) {
        if (metrics_) metrics_->predict_errors.add();
        request.promise.set_exception(fault);
      }
      return;
    }
  }

  ++in_flight_;
  ++busy_[design_id][backend_idx];
  if (metrics_) {
    metrics_->backend[backend_idx].dispatched.add();
    if (spill) metrics_->spilled.add();
  }
  auto design = std::move(lane.design);
  // The task owns the batch; requests are fulfilled even if the lane's design
  // was evicted from the registry meanwhile (shared_ptr keeps it alive).
  auto batch = std::make_shared<std::vector<Request>>(std::move(live));
  try {
    backend->dispatch([this, design = std::move(design), batch, backend] {
      execute_batch(design, std::move(*batch), *backend);
    });
  } catch (...) {
    --in_flight_;
    if (const auto it = busy_.find(design_id); it != busy_.end()) {
      if (--it->second[backend_idx] == 0) {
        bool any = false;
        for (const std::size_t count : it->second) any = any || count != 0;
        if (!any) busy_.erase(it);
      }
    }
    settle_waiting_locked(design_id, batch->size());
    // The only expected dispatch failures are resource shutdown (report the
    // uniform shutdown code) and allocation pressure (forward as-is).
    std::exception_ptr error;
    try {
      throw;
    } catch (const std::bad_alloc&) {
      error = std::current_exception();
    } catch (...) {
      error = std::make_exception_ptr(ShutdownError("Batcher: backend is shut down"));
    }
    for (Request& request : *batch) {
      request.promise.set_exception(error);
      if (metrics_) metrics_->predict_errors.add();
    }
  }
}

void Batcher::execute_batch(std::shared_ptr<DeployedDesign> design,
                            std::vector<Request> batch, InferenceBackend& backend) {
  {
    // The batch is executing now: it stops occupying admission-queue space.
    std::lock_guard<std::mutex> lock(mutex_);
    settle_waiting_locked(design->id, batch.size());
  }
  if (faults_ != nullptr) {
    faults_->inject_latency("backend.dispatch");
    faults_->inject_latency("executor.batch");
  }

  // Deadline propagation, stage 2: re-check at dispatch so a worker never
  // runs inference for a client that already gave up (the batch may have sat
  // in the backend queue behind slow work).
  std::vector<char> skip(batch.size(), 0);
  std::size_t live = 0;
  {
    const auto now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline <= now) {
        expire_request(batch[i]);
        skip[i] = 1;
      } else {
        ++live;
      }
    }
  }

  BackendServeState& backend_state = design->backend_state(backend.id());
  const std::size_t backend_idx = backend_index(backend.id());
  std::vector<Prediction> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  Clock::time_point start = Clock::now();
  std::uint64_t exec_us = 0;
  std::size_t failures = 0;
  if (live != 0) {
    if (faults_ != nullptr && faults_->should_fail("executor.batch")) {
      const auto fault =
          std::make_exception_ptr(InjectedFault("injected execution failure"));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!skip[i]) errors[i] = fault;
      }
      failures = live;
    } else {
      // Both backends compute through the same reentrant reference engine
      // (run_reference_batch), so a batch's logits are identical wherever
      // the placer sent it; the backends differ in timing and concurrency.
      std::vector<const tensor::Tensor*> inputs;
      std::vector<std::size_t> slot;
      inputs.reserve(live);
      slot.reserve(live);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!skip[i]) {
          inputs.push_back(&batch[i].input);
          slot.push_back(i);
        }
      }
      std::vector<tensor::Tensor> outputs(inputs.size());
      start = Clock::now();
      try {
        backend.run_batch(*design, std::span<const tensor::Tensor* const>(inputs),
                          std::span<tensor::Tensor>(outputs));
        for (std::size_t j = 0; j < slot.size(); ++j) {
          Prediction& out = results[slot[j]];
          out.predicted = outputs[j].argmax();
          out.logits.assign(outputs[j].span().begin(), outputs[j].span().end());
        }
      } catch (...) {
        // A batch fails as a unit; every live request shares the verdict
        // (inputs are shape-validated at submit, so this is an environmental
        // failure, not a per-request one).
        const std::exception_ptr error = std::current_exception();
        for (const std::size_t i : slot) errors[i] = error;
        failures = slot.size();
      }
      exec_us = elapsed_us(start, Clock::now());
    }
  }

  // One health verdict per batch feeds the breaker of the backend that ran
  // it — the failure domain is (design, backend), so a wedged accelerator
  // path never quarantines the CPU engine. An all-expired batch says nothing
  // about the design, so it only releases a pending half-open probe.
  if (live == 0) {
    backend_state.breaker.record_abandoned();
  } else if (failures != 0) {
    backend_state.breaker.record_failure();
  } else {
    backend_state.breaker.record_success();
    backend_state.batches.fetch_add(1, std::memory_order_relaxed);
    backend_state.images.fetch_add(live, std::memory_order_relaxed);
  }

  {
    // Free the engine and launch any coalesced batch BEFORE fulfilling
    // promises: the next batch executes on another slot while this thread
    // does completion work, keeping the per-design pipeline full.
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = busy_.find(design->id); it != busy_.end()) {
      if (--it->second[backend_idx] == 0) {
        bool any = false;
        for (const std::size_t count : it->second) any = any || count != 0;
        if (!any) busy_.erase(it);
      }
    }
    if (const auto lane_it = lanes_.find(design->id); lane_it != lanes_.end()) {
      // Same eagerness rule as enqueue: the engine that just freed only pulls
      // the coalescing lane if it is worth a flush now (a partial lane waits
      // for its max_wait deadline when only the fabric is idle).
      const std::size_t lane_size = lane_it->second.requests.size();
      if (capacity_available_locked(design->id, lane_size) ||
          lane_size >= config_.max_batch) {
        Lane next = std::move(lane_it->second);
        lanes_.erase(lane_it);
        flush_locked(std::move(next));
      }
    }
  }

  // Modeled deployment cost of this invocation: one scatter-gather pass
  // through the accelerator for the executed images (expired requests never
  // reach the FPGA). Reported per prediction regardless of where the batch
  // ran, so clients always see what the deployment hardware would cost.
  const double accel_seconds = design->invocation_seconds(live);
  const auto accel_invocation_us = static_cast<std::uint64_t>(accel_seconds * 1e6);
  const auto accel_share_us =
      live == 0 ? 0
                : static_cast<std::uint64_t>(accel_seconds * 1e6 /
                                             static_cast<double>(live));

  if (metrics_ && live != 0) {
    metrics_->batches.add();
    metrics_->batch_size.record(live);
    metrics_->exec_us.record(exec_us);
    metrics_->accel_us.record(accel_invocation_us);
    if (failures != 0) {
      metrics_->backend[backend_idx].errors.add();
    } else {
      metrics_->backend[backend_idx].batches.add();
      metrics_->backend[backend_idx].images.add(live);
      metrics_->backend[backend_idx].exec_us.record(exec_us);
    }
    // Per-precision accounting: the design's deployed arithmetic is what the
    // batch just executed in, wherever it was placed.
    auto& precision_metrics =
        metrics_->precision[nn::serve_precision_index(design->precision)];
    precision_metrics.dispatched.add();
    if (failures == 0) {
      precision_metrics.batches.add();
      precision_metrics.images.add(live);
      precision_metrics.exec_us.record(exec_us);
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (skip[i]) continue;  // promise already failed by expire_request()
    if (errors[i]) {
      if (metrics_) metrics_->predict_errors.add();
      batch[i].promise.set_exception(errors[i]);
      continue;
    }
    results[i].queue_us = elapsed_us(batch[i].enqueued, start);
    results[i].exec_us = exec_us;
    results[i].accel_us = accel_share_us;
    results[i].batch_size = live;
    results[i].backend = backend.id();
    results[i].precision = design->precision;
    if (metrics_) {
      metrics_->predictions.add();
      metrics_->queue_us.record(results[i].queue_us);
    }
    batch[i].promise.set_value(std::move(results[i]));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (--in_flight_ == 0) drained_cv_.notify_all();
}

}  // namespace cnn2fpga::serve
