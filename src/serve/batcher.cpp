#include "serve/batcher.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "nn/fixed_inference.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;

namespace {
std::uint64_t elapsed_us(Batcher::Clock::time_point from, Batcher::Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}
}  // namespace

Batcher::Batcher(Executor& executor, BatcherConfig config, ServeMetrics* metrics,
                 FaultInjector* faults)
    : executor_(executor),
      config_{config.max_batch == 0 ? 1 : config.max_batch,
              config.max_wait_us,
              config.max_inflight_per_design,
              config.max_queue_depth,
              config.max_queue_depth_per_design},
      inflight_limit_(config.max_inflight_per_design != 0
                          ? config.max_inflight_per_design
                          : std::max<std::size_t>(1, executor.thread_count())),
      metrics_(metrics),
      faults_(faults),
      deadline_thread_([this] { deadline_loop(); }) {}

Batcher::~Batcher() { shutdown(); }

std::future<Prediction> Batcher::predict(std::shared_ptr<DeployedDesign> design,
                                         tensor::Tensor input, Clock::time_point deadline) {
  if (!design) throw std::invalid_argument("Batcher::predict: null design");
  if (input.shape() != design->net.input_shape()) {
    throw std::invalid_argument(format(
        "Batcher::predict: design '%s' expects input %s, got %s",
        design->descriptor().name.c_str(), design->net.input_shape().to_string().c_str(),
        input.shape().to_string().c_str()));
  }
  if (faults_ != nullptr) {
    faults_->inject_latency("batcher.enqueue");
    if (faults_->should_fail_alloc("batcher.enqueue")) throw std::bad_alloc();
  }

  Request request;
  request.input = std::move(input);
  request.enqueued = Clock::now();
  request.deadline = deadline;
  if (deadline <= request.enqueued) {
    // The client's budget is already spent; do not touch a lane for it.
    if (metrics_) metrics_->expired.add();
    throw DeadlineExceededError("predict: deadline expired before enqueue");
  }
  std::future<Prediction> future = request.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) throw ShutdownError("Batcher: predict after shutdown");

  // Bounded admission: shed before taking any queue space. waiting_ counts
  // every admitted request that has not started executing, so memory and
  // queueing delay stay bounded no matter how fast clients push.
  if (config_.max_queue_depth != 0 && waiting_ >= config_.max_queue_depth) {
    if (metrics_) metrics_->shed.add();
    throw OverloadedError(
        format("predict: admission queue full (%zu waiting)", waiting_), waiting_);
  }
  if (config_.max_queue_depth_per_design != 0) {
    const auto it = waiting_by_design_.find(design->id);
    const std::size_t design_waiting = it == waiting_by_design_.end() ? 0 : it->second;
    if (design_waiting >= config_.max_queue_depth_per_design) {
      if (metrics_) metrics_->shed.add();
      throw OverloadedError(
          format("predict: design '%s' queue full (%zu waiting)",
                 design->descriptor().name.c_str(), design_waiting),
          design_waiting);
    }
  }

  // Circuit breaker, checked after the shed paths so a shed request can never
  // claim (and then strand) the half-open probe slot.
  if (!design->breaker.allow()) {
    if (metrics_) metrics_->breaker_rejects.add();
    throw DesignUnavailableError(
        format("predict: design '%s' unavailable (circuit breaker %s)",
               design->descriptor().name.c_str(), design->breaker.state_name()),
        design->breaker.retry_after_ms());
  }

  ++waiting_;
  ++waiting_by_design_[design->id];
  if (metrics_) {
    metrics_->admitted.add();
    metrics_->queue_depth.set(waiting_);
  }

  Lane& lane = lanes_[design->id];
  if (lane.requests.empty()) {
    lane.design = design;
    lane.deadline = request.enqueued + std::chrono::microseconds(config_.max_wait_us);
  }
  lane.requests.push_back(std::move(request));
  const auto busy_it = busy_.find(design->id);
  const std::size_t inflight = busy_it == busy_.end() ? 0 : busy_it->second;
  if (inflight < inflight_limit_ || lane.requests.size() >= config_.max_batch) {
    // Free inference slot or full batch: dispatch from the submitting thread.
    // Only requests arriving while every slot is occupied wait to coalesce.
    Lane ready = std::move(lane);
    lanes_.erase(design->id);
    flush_locked(std::move(ready));
  } else {
    lane_cv_.notify_one();  // deadline thread re-arms for the new lane
  }
  return future;
}

void Batcher::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Drain: everything already accepted still executes.
    while (!lanes_.empty()) {
      Lane lane = std::move(lanes_.begin()->second);
      lanes_.erase(lanes_.begin());
      flush_locked(std::move(lane));
    }
  }
  lane_cv_.notify_all();
  if (deadline_thread_.joinable()) deadline_thread_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t Batcher::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, lane] : lanes_) total += lane.requests.size();
  return total;
}

std::size_t Batcher::waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

void Batcher::settle_waiting_locked(const std::string& design_id, std::size_t count) {
  waiting_ -= std::min(count, waiting_);
  if (const auto it = waiting_by_design_.find(design_id); it != waiting_by_design_.end()) {
    if (it->second <= count) {
      waiting_by_design_.erase(it);
    } else {
      it->second -= count;
    }
  }
  if (metrics_) metrics_->queue_depth.set(waiting_);
}

void Batcher::expire_request(Request& request) {
  if (metrics_) metrics_->expired.add();
  request.promise.set_exception(std::make_exception_ptr(
      DeadlineExceededError("predict: deadline exceeded before execution")));
}

void Batcher::deadline_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (lanes_.empty()) {
      lane_cv_.wait(lock, [this] { return stopping_ || !lanes_.empty(); });
      continue;
    }
    auto earliest = Clock::time_point::max();
    for (const auto& [id, lane] : lanes_) {
      if (lane.deadline < earliest) earliest = lane.deadline;
    }
    if (Clock::now() < earliest) {
      lane_cv_.wait_until(lock, earliest);
      continue;  // re-evaluate: lanes may have been flushed or added
    }
    const auto now = Clock::now();
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      if (it->second.deadline <= now) {
        Lane expired = std::move(it->second);
        it = lanes_.erase(it);
        flush_locked(std::move(expired));
      } else {
        ++it;
      }
    }
  }
}

void Batcher::flush_locked(Lane lane) {
  if (lane.requests.empty()) return;
  const std::string design_id = lane.design->id;

  // Deadline propagation, stage 1: a request whose deadline passed while it
  // coalesced is failed here instead of being dispatched.
  const auto now = Clock::now();
  std::vector<Request> live;
  live.reserve(lane.requests.size());
  std::size_t dropped = 0;
  for (Request& request : lane.requests) {
    if (request.deadline <= now) {
      expire_request(request);
      ++dropped;
    } else {
      live.push_back(std::move(request));
    }
  }
  if (dropped != 0) settle_waiting_locked(design_id, dropped);
  if (live.empty()) {
    // Nothing executed: if this lane carried the half-open probe, free the
    // probe slot so the next request can retry the design.
    lane.design->breaker.record_abandoned();
    return;
  }

  ++in_flight_;
  ++busy_[design_id];
  auto design = std::move(lane.design);
  // The task owns the batch; requests are fulfilled even if the lane's design
  // was evicted from the registry meanwhile (shared_ptr keeps it alive).
  auto batch = std::make_shared<std::vector<Request>>(std::move(live));
  try {
    executor_.submit([this, design = std::move(design), batch] {
      execute_batch(design, std::move(*batch));
    });
  } catch (...) {
    --in_flight_;
    if (const auto it = busy_.find(design_id); it != busy_.end() && --it->second == 0) {
      busy_.erase(it);
    }
    settle_waiting_locked(design_id, batch->size());
    // The only expected submit failures are executor shutdown (report the
    // uniform shutdown code) and allocation pressure (forward as-is).
    std::exception_ptr error;
    try {
      throw;
    } catch (const std::bad_alloc&) {
      error = std::current_exception();
    } catch (...) {
      error = std::make_exception_ptr(ShutdownError("Batcher: executor is shut down"));
    }
    for (Request& request : *batch) {
      request.promise.set_exception(error);
      if (metrics_) metrics_->predict_errors.add();
    }
  }
}

void Batcher::execute_batch(std::shared_ptr<DeployedDesign> design,
                            std::vector<Request> batch) {
  {
    // The batch is executing now: it stops occupying admission-queue space.
    std::lock_guard<std::mutex> lock(mutex_);
    settle_waiting_locked(design->id, batch.size());
  }
  if (faults_ != nullptr) faults_->inject_latency("executor.batch");

  // Deadline propagation, stage 2: re-check at dispatch so a worker never
  // runs inference for a client that already gave up (the batch may have sat
  // in the executor queue behind slow work).
  std::vector<char> skip(batch.size(), 0);
  std::size_t live = 0;
  {
    const auto now = Clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline <= now) {
        expire_request(batch[i]);
        skip[i] = 1;
      } else {
        ++live;
      }
    }
  }

  std::vector<Prediction> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  Clock::time_point start = Clock::now();
  std::uint64_t exec_us = 0;
  std::size_t failures = 0;
  if (live != 0) {
    if (faults_ != nullptr && faults_->should_fail("executor.batch")) {
      const auto fault =
          std::make_exception_ptr(InjectedFault("injected execution failure"));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!skip[i]) errors[i] = fault;
      }
      failures = live;
    } else {
      // No lock: infer()/infer_batch() are const and reentrant, so batches
      // for the same design run in parallel on other workers, each through
      // its own leased context.
      auto ctx = design->contexts.acquire();
      start = Clock::now();
      const core::NetworkDescriptor& descriptor = design->descriptor();
      if (descriptor.precision.is_fixed) {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (skip[i]) continue;
          try {
            Prediction& out = results[i];
            const nn::FixedForwardResult fixed =
                nn::forward_fixed(design->net, batch[i].input, descriptor.precision.fixed,
                                  *ctx,
                                  /*track_output_error=*/false);
            out.predicted = fixed.predicted;
            out.logits.assign(fixed.scores.span().begin(), fixed.scores.span().end());
            design->served.fetch_add(1, std::memory_order_relaxed);
          } catch (...) {
            errors[i] = std::current_exception();
            ++failures;
          }
        }
      } else {
        // Float path: one fused inference for the whole live batch — a single
        // im2col + GEMM per conv/linear layer, so the design's weights stream
        // from cache once per batch instead of once per image. Bit-identical
        // to per-image infer() through the same context (kernel contract).
        std::vector<const tensor::Tensor*> inputs;
        std::vector<std::size_t> slot;
        inputs.reserve(live);
        slot.reserve(live);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (!skip[i]) {
            inputs.push_back(&batch[i].input);
            slot.push_back(i);
          }
        }
        std::vector<tensor::Tensor> outputs(inputs.size());
        try {
          design->net.infer_batch(std::span<const tensor::Tensor* const>(inputs),
                                  std::span<tensor::Tensor>(outputs), *ctx);
          for (std::size_t j = 0; j < slot.size(); ++j) {
            Prediction& out = results[slot[j]];
            out.predicted = outputs[j].argmax();
            out.logits.assign(outputs[j].span().begin(), outputs[j].span().end());
            design->served.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          // Fused execution fails as a unit; every live request shares the
          // verdict (inputs are shape-validated at submit, so this is an
          // environmental failure, not a per-request one).
          const std::exception_ptr error = std::current_exception();
          for (const std::size_t i : slot) errors[i] = error;
          failures = slot.size();
        }
      }
      exec_us = elapsed_us(start, Clock::now());
    }
  }

  // One health verdict per batch feeds the design's circuit breaker. An
  // all-expired batch says nothing about the design, so it only releases a
  // pending half-open probe.
  if (live == 0) {
    design->breaker.record_abandoned();
  } else if (failures != 0) {
    design->breaker.record_failure();
  } else {
    design->breaker.record_success();
  }

  {
    // Free the design and launch any coalesced batch BEFORE fulfilling
    // promises: the next batch executes on another worker while this thread
    // does completion work, keeping the per-design pipeline full.
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = busy_.find(design->id); it != busy_.end() && --it->second == 0) {
      busy_.erase(it);
    }
    if (const auto lane_it = lanes_.find(design->id); lane_it != lanes_.end()) {
      Lane next = std::move(lane_it->second);
      lanes_.erase(lane_it);
      flush_locked(std::move(next));
    }
  }

  // Modeled deployment cost of this invocation: one scatter-gather pass
  // through the accelerator for the executed images (expired requests never
  // reach the FPGA).
  const double accel_seconds = design->invocation_seconds(live);
  const auto accel_invocation_us = static_cast<std::uint64_t>(accel_seconds * 1e6);
  const auto accel_share_us =
      live == 0 ? 0
                : static_cast<std::uint64_t>(accel_seconds * 1e6 /
                                             static_cast<double>(live));

  if (metrics_ && live != 0) {
    metrics_->batches.add();
    metrics_->batch_size.record(live);
    metrics_->exec_us.record(exec_us);
    metrics_->accel_us.record(accel_invocation_us);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (skip[i]) continue;  // promise already failed by expire_request()
    if (errors[i]) {
      if (metrics_) metrics_->predict_errors.add();
      batch[i].promise.set_exception(errors[i]);
      continue;
    }
    results[i].queue_us = elapsed_us(batch[i].enqueued, start);
    results[i].exec_us = exec_us;
    results[i].accel_us = accel_share_us;
    results[i].batch_size = live;
    if (metrics_) {
      metrics_->predictions.add();
      metrics_->queue_us.record(results[i].queue_us);
    }
    batch[i].promise.set_value(std::move(results[i]));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (--in_flight_ == 0) drained_cv_.notify_all();
}

}  // namespace cnn2fpga::serve
