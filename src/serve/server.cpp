#include "serve/server.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "serve/backend/accel_backend.hpp"
#include "serve/backend/cpu_backend.hpp"
#include "util/base64.hpp"
#include "util/strings.hpp"
#include "web/envelope.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;
using web::api_error;
using web::api_ok;

namespace {

/// Payload size disagrees with the design's input shape. Split out from plain
/// std::invalid_argument so handle_predict can report code "shape_mismatch".
struct ShapeMismatchError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Decode the request's image payload into the design's input tensor.
/// Accepts "image_base64" (raw float32 little-endian CHW) or "image" (a JSON
/// array of numbers). Throws ShapeMismatchError when the payload length
/// disagrees with `shape`, std::invalid_argument for every other bad payload
/// (including type errors inside the JSON, which must not surface as server
/// faults).
tensor::Tensor decode_image(const json::Value& doc, const nn::Shape& shape) {
  const std::size_t expected = shape.elements();
  tensor::Tensor image{shape};
  try {
    if (const json::Value* encoded = doc.find("image_base64"); encoded != nullptr) {
      const auto bytes = util::base64_decode(encoded->as_string());
      if (!bytes) throw std::invalid_argument("image_base64 is not valid base64");
      if (bytes->size() != expected * sizeof(float)) {
        throw ShapeMismatchError(format(
            "image_base64 decodes to %zu bytes; input %s needs %zu (float32 CHW)",
            bytes->size(), shape.to_string().c_str(), expected * sizeof(float)));
      }
      std::memcpy(image.data(), bytes->data(), bytes->size());
      return image;
    }
    if (const json::Value* array = doc.find("image"); array != nullptr) {
      const json::Array& values = array->as_array();
      if (values.size() != expected) {
        throw ShapeMismatchError(format("image has %zu values; input %s needs %zu",
                                        values.size(), shape.to_string().c_str(), expected));
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        image[i] = static_cast<float>(values[i].as_double());
      }
      return image;
    }
  } catch (const json::JsonError& e) {
    // e.g. image_base64 is not a string, image is not an array of numbers.
    // JsonError derives from std::runtime_error; rethrowing as
    // invalid_argument keeps these as 400s rather than 5xx.
    throw std::invalid_argument(format("predict: malformed image payload: %s", e.what()));
  }
  throw std::invalid_argument("predict: provide image_base64 or image");
}

json::Object design_summary(const DeployedDesign& deployed) {
  const core::NetworkDescriptor& descriptor = deployed.descriptor();
  json::Object out;
  out["design_id"] = deployed.id;
  out["name"] = descriptor.name;
  out["board"] = descriptor.board;
  out["precision"] = descriptor.precision.is_fixed ? descriptor.precision.fixed.name()
                                                   : std::string("float32");
  // The arithmetic serving actually runs in (the descriptor "precision" above
  // describes the generated HLS design, not the serving path).
  out["serve_precision"] = std::string(nn::serve_precision_name(deployed.precision));
  if (deployed.precision != nn::ServePrecision::kFloat32) {
    const QuantReport& quant = deployed.quant;
    json::Object quantization;
    quantization["validated"] = quant.validated;
    quantization["probes"] = quant.probes;
    quantization["max_abs_error"] = quant.max_abs_error;
    quantization["top1_agreement"] = quant.top1_agreement;
    quantization["matches_fixed_model"] = quant.matches_fixed_model;
    out["quantization"] = std::move(quantization);
  }
  out["input"] = deployed.net.input_shape().to_string();
  out["classes"] = descriptor.num_classes();
  out["latency_cycles"] = deployed.design.hls_report.latency_cycles;
  out["latency_seconds"] = deployed.hls_latency_seconds();
  out["fits"] = deployed.design.hls_report.fits();
  out["served"] = deployed.served.load(std::memory_order_relaxed);
  out["breaker"] = std::string(deployed.breaker.state_name());
  json::Object backends;
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    const BackendId id = static_cast<BackendId>(i);
    const BackendServeState& state = deployed.backend_state(id);
    json::Object one;
    one["breaker"] = std::string(state.breaker.state_name());
    one["batches"] = state.batches.load(std::memory_order_relaxed);
    one["images"] = state.images.load(std::memory_order_relaxed);
    one["warmed"] = state.warmed.load(std::memory_order_relaxed);
    if (id == BackendId::kCpu) {
      one["measured_us_per_image"] = state.measured_seconds_per_image.value() * 1e6;
    } else {
      one["modeled_us_per_image"] = deployed.invocation_seconds(1) * 1e6;
    }
    backends[backend_name(id)] = std::move(one);
  }
  out["backends"] = std::move(backends);
  return out;
}

/// Per-design breaker block keyed by design id, with the CPU breaker in the
/// pre-backend compat fields and every backend's breaker nested below.
json::Object breaker_summary(const DeployedDesign& deployed, bool include_retry) {
  json::Object one;
  one["state"] = std::string(deployed.breaker.state_name());
  one["consecutive_failures"] = deployed.breaker.consecutive_failures();
  if (include_retry) {
    one["retry_after_ms"] = deployed.breaker.retry_after_ms();
  } else {
    one["opens"] = deployed.breaker.opens();
  }
  json::Object per_backend;
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    const BackendId id = static_cast<BackendId>(i);
    const Breaker& breaker = deployed.backend_state(id).breaker;
    json::Object state;
    state["state"] = std::string(breaker.state_name());
    state["consecutive_failures"] = breaker.consecutive_failures();
    state["opens"] = breaker.opens();
    state["retry_after_ms"] = breaker.retry_after_ms();
    per_backend[backend_name(id)] = std::move(state);
  }
  one["backends"] = std::move(per_backend);
  return one;
}

std::vector<std::shared_ptr<InferenceBackend>> make_backends(const BackendsConfig& config,
                                                             Executor& executor) {
  std::vector<std::shared_ptr<InferenceBackend>> backends;
  // CPU first: equal placement costs tie-break toward the host engine.
  if (config.cpu || !config.accelerator) {  // at least one engine, always
    backends.push_back(std::make_shared<CpuBackend>(executor));
  }
  if (config.accelerator) {
    AcceleratorBackend::Options options;
    options.sleep_for_model = config.accel_sleep_for_model;
    backends.push_back(std::make_shared<AcceleratorBackend>(options));
  }
  return backends;
}

/// A lone engine needs no cost model — pin the policy so the placer's
/// admission pre-checks agree with what can actually execute.
PlacerPolicy effective_policy(const BackendsConfig& config) {
  if (!config.accelerator) return PlacerPolicy::kCpuOnly;
  if (!config.cpu) return PlacerPolicy::kAcceleratorOnly;
  return config.placer;
}

/// Seconds a shed client should back off: the p95 queue latency rounded up,
/// clamped to [1, 60] so the header is always a sane hint even before the
/// histogram has data.
std::uint64_t shed_retry_after_seconds(const ServeMetrics& metrics) {
  const std::uint64_t p95_us = metrics.queue_us.percentile(0.95);
  const std::uint64_t seconds = (p95_us + 999999) / 1000000;
  return seconds < 1 ? 1 : (seconds > 60 ? 60 : seconds);
}

/// Seconds equivalent of a breaker cooldown remainder, rounded up, >= 1.
std::uint64_t breaker_retry_after_seconds(std::uint64_t retry_after_ms) {
  const std::uint64_t seconds = (retry_after_ms + 999) / 1000;
  return seconds < 1 ? 1 : seconds;
}

}  // namespace

ServingRuntime::ServingRuntime(ServingConfig config)
    : config_(config),
      registry_(config.registry_capacity, &metrics_, config.breaker, &faults_),
      executor_(config.worker_threads),
      backends_(make_backends(config.backends, executor_)),
      batcher_(backends_, effective_policy(config.backends), executor_.thread_count(),
               config.batcher, &metrics_, &faults_) {
  // CNN2FPGA_FAULTS / CNN2FPGA_FAULT_SEED arm injection before any request
  // can arrive (the HTTP server is installed on a constructed runtime).
  faults_.configure_from_env();
}

InferenceBackend* ServingRuntime::backend(BackendId id) const {
  for (const auto& candidate : backends_) {
    if (candidate->id() == id) return candidate.get();
  }
  return nullptr;
}

ServingRuntime::~ServingRuntime() { shutdown(); }

void ServingRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  batcher_.shutdown();
  executor_.shutdown();
}

web::HttpResponse ServingRuntime::handle_deploy(const web::HttpRequest& request) {
  if (stopped_.load()) return api_error(503, "shutdown", "serving runtime is shut down");

  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  // A string "precision" selects the serving arithmetic; the descriptor
  // parser keeps its own "precision" key for codegen ("float32" or a fixed
  // object), so the serve-level string is consumed here and the descriptor
  // sees the spelling it understands. Fixed objects pass through untouched.
  nn::ServePrecision precision = nn::ServePrecision::kFloat32;
  if (const json::Value* requested = doc.find("precision");
      requested != nullptr && requested->is_string()) {
    if (!nn::parse_serve_precision(requested->as_string(), precision)) {
      return api_error(400, "bad_request",
                       "deploy: precision must be one of float32, int16, int8");
    }
    doc.as_object()["precision"] = "float32";
  }

  core::NetworkDescriptor descriptor;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
  } catch (const core::DescriptorError& e) {
    return api_error(400, "bad_descriptor", e.what());
  }

  DeployOutcome outcome;
  try {
    if (const json::Value* weights = doc.find("weights_base64"); weights != nullptr) {
      const auto bytes = util::base64_decode(weights->as_string());
      if (!bytes) return api_error(400, "bad_request", "weights_base64 is not valid base64");
      outcome = registry_.deploy(descriptor, *bytes, precision);
    } else {
      const std::uint64_t seed = static_cast<std::uint64_t>(doc.get_int("seed", 1));
      outcome = registry_.deploy_random(descriptor, seed, precision);
    }
  } catch (const InjectedFault& e) {
    return api_error(500, "internal", e.what());
  } catch (const std::bad_alloc&) {
    return api_error(500, "internal", "deploy: allocation failure");
  } catch (const std::runtime_error& e) {
    return api_error(400, "bad_request", e.what());  // weight/architecture mismatch
  } catch (const std::exception& e) {
    return api_error(500, "internal", e.what());
  }

  // Per-backend deploy-time warming (idempotent on cache hits): weight packs
  // and the timing model are primed before the first request arrives.
  for (const auto& backend : backends_) backend->warm(*outcome.design);

  json::Object body = design_summary(*outcome.design);
  body["cache_hit"] = outcome.cache_hit;
  json::Array warnings;
  for (const std::string& warning : outcome.design->design.warnings) {
    warnings.push_back(warning);
  }
  body["warnings"] = std::move(warnings);
  const RegistryStats stats = registry_.stats();
  json::Object reg;
  reg["resident"] = registry_.size();
  reg["capacity"] = registry_.capacity();
  reg["hit_rate"] = stats.hit_rate();
  body["registry"] = std::move(reg);
  return api_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_predict(const web::HttpRequest& request) {
  if (stopped_.load()) return api_error(503, "shutdown", "serving runtime is shut down");
  const auto arrival = std::chrono::steady_clock::now();

  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  const json::Value* id = doc.find("design_id");
  if (id == nullptr || !id->is_string()) {
    return api_error(400, "bad_request", "predict: design_id is required (deploy first)");
  }
  std::shared_ptr<DeployedDesign> design = registry_.find(id->as_string());
  if (!design) {
    return api_error(404, "unknown_design",
                     format("design %s is not deployed", id->as_string().c_str()));
  }

  // Deadline: the client's X-Deadline-Ms budget, else the server default.
  std::uint64_t deadline_ms = config_.default_deadline_ms;
  if (const auto header = request.headers.find("x-deadline-ms");
      header != request.headers.end()) {
    try {
      // Digits only: stoull would accept "-5" by wrapping it to a huge value.
      if (header->second.empty() ||
          header->second.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("");
      }
      const unsigned long long parsed = std::stoull(header->second);
      if (parsed == 0) throw std::invalid_argument("");
      deadline_ms = parsed;
    } catch (const std::exception&) {
      return api_error(400, "bad_request",
                       format("X-Deadline-Ms must be a positive integer, got '%s'",
                              header->second.c_str()));
    }
  }
  const auto deadline = deadline_ms == 0
                            ? Batcher::kNoDeadline
                            : arrival + std::chrono::milliseconds(deadline_ms);

  Prediction prediction;
  try {
    tensor::Tensor image = decode_image(doc, design->net.input_shape());
    prediction = batcher_.predict(design, std::move(image), deadline).get();
  } catch (const ShapeMismatchError& e) {
    metrics_.predict_errors.add();
    return api_error(400, "shape_mismatch", e.what());
  } catch (const std::invalid_argument& e) {
    metrics_.predict_errors.add();
    return api_error(400, "bad_request", e.what());
  } catch (const OverloadedError& e) {
    web::HttpResponse response = api_error(429, "overloaded", e.what());
    response.headers["Retry-After"] = std::to_string(shed_retry_after_seconds(metrics_));
    return response;
  } catch (const DeadlineExceededError& e) {
    return api_error(504, "deadline_exceeded", e.what());
  } catch (const DesignUnavailableError& e) {
    web::HttpResponse response = api_error(503, "design_unavailable", e.what());
    response.headers["Retry-After"] =
        std::to_string(breaker_retry_after_seconds(e.retry_after_ms));
    return response;
  } catch (const ShutdownError& e) {
    return api_error(503, "shutdown", e.what());
  } catch (const std::bad_alloc&) {
    metrics_.predict_errors.add();
    return api_error(500, "internal", "predict: allocation failure");
  } catch (const std::exception& e) {
    // Execution errors (including injected faults) are server faults, not a
    // sign the runtime is shutting down.
    return api_error(500, "internal", e.what());
  }

  json::Object body;
  body["design_id"] = design->id;
  body["predicted"] = prediction.predicted;
  json::Array logits;
  for (float logit : prediction.logits) logits.push_back(logit);
  body["logits"] = std::move(logits);
  body["batch_size"] = prediction.batch_size;
  body["backend"] = std::string(backend_name(prediction.backend));
  body["precision"] = std::string(nn::serve_precision_name(prediction.precision));
  body["queue_us"] = prediction.queue_us;
  body["exec_us"] = prediction.exec_us;
  body["accel_us"] = prediction.accel_us;
  body["total_us"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            arrival)
          .count());
  return api_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_designs(const web::HttpRequest&) {
  json::Array designs;
  for (const auto& deployed : registry_.list()) {
    designs.push_back(design_summary(*deployed));
  }
  const RegistryStats stats = registry_.stats();
  json::Object body;
  body["designs"] = std::move(designs);
  body["resident"] = registry_.size();
  body["capacity"] = registry_.capacity();
  body["hits"] = stats.hits;
  body["misses"] = stats.misses;
  body["evictions"] = stats.evictions;
  body["hit_rate"] = stats.hit_rate();
  return api_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_metrics(const web::HttpRequest&) {
  json::Value metrics = metrics_.to_json();
  json::Object& body = metrics.as_object();
  json::Object reg;
  reg["resident"] = registry_.size();
  reg["capacity"] = registry_.capacity();
  body["registry"] = std::move(reg);
  json::Object pool;
  pool["worker_threads"] = executor_.thread_count();
  pool["backlog"] = executor_.backlog();
  pool["max_batch"] = batcher_.config().max_batch;
  pool["max_wait_us"] = batcher_.config().max_wait_us;
  pool["max_queue_depth"] = batcher_.config().max_queue_depth;
  pool["pending"] = batcher_.pending();
  pool["waiting"] = batcher_.waiting();
  body["pool"] = std::move(pool);
  json::Object placer;
  placer["policy"] = std::string(placer_policy_name(batcher_.placer().policy()));
  json::Object live;
  for (const auto& backend : backends_) {
    json::Object one;
    one["slots"] = backend->capabilities().concurrency;
    one["queued"] = backend->queued();
    one["inflight"] = backend->inflight();
    one["pending"] = backend->pending();
    live[backend->name()] = std::move(one);
  }
  placer["live"] = std::move(live);
  body["placer"] = std::move(placer);
  json::Object breakers;
  for (const auto& deployed : registry_.list()) {
    breakers[deployed->id] = breaker_summary(*deployed, /*include_retry=*/false);
  }
  body["breakers"] = std::move(breakers);
  if (faults_.enabled()) body["faults"] = faults_.to_json();
  return {200, "application/json", metrics.dump(), {}};
}

web::HttpResponse ServingRuntime::handle_readyz(const web::HttpRequest&) {
  const bool draining = stopped_.load();
  const std::size_t waiting = batcher_.waiting();
  const std::size_t capacity = config_.batcher.max_queue_depth;
  const bool saturated = capacity != 0 && waiting >= capacity;

  json::Object body;
  body["status"] = draining ? std::string("draining")
                            : (saturated ? std::string("saturated") : std::string("ready"));
  body["queue_depth"] = waiting;
  body["queue_capacity"] = capacity;
  const std::uint64_t admitted = metrics_.admitted.value();
  const std::uint64_t shed = metrics_.shed.value();
  body["shed_rate"] = admitted + shed == 0
                          ? 0.0
                          : static_cast<double>(shed) / static_cast<double>(admitted + shed);
  // Per-backend saturation: which engine is actually full. The top-level
  // "status" above stays the admission-queue aggregate for compatibility; a
  // load balancer that wants the split reads this block instead.
  json::Object backends;
  for (const auto& backend : backends_) {
    const std::size_t slots = backend->capabilities().concurrency;
    const std::size_t pending = backend->pending();
    json::Object one;
    one["slots"] = slots;
    one["pending"] = pending;
    one["saturated"] = pending > slots;  // work queued beyond its capacity
    backends[backend->name()] = std::move(one);
  }
  body["backends"] = std::move(backends);
  body["spill_rate"] = metrics_.spill_rate();
  json::Object breakers;
  for (const auto& deployed : registry_.list()) {
    breakers[deployed->id] = breaker_summary(*deployed, /*include_retry=*/true);
  }
  body["breakers"] = std::move(breakers);
  const int status = draining || saturated ? 503 : 200;
  return {status, "application/json", json::Value(std::move(body)).dump(), {}};
}

void install_serve_api(web::HttpServer& server, ServingRuntime& runtime) {
  web::route_api(server, "POST", "deploy",
                 [&runtime](const web::HttpRequest& r) { return runtime.handle_deploy(r); });
  web::route_api(server, "POST", "predict",
                 [&runtime](const web::HttpRequest& r) { return runtime.handle_predict(r); });
  web::route_api(server, "GET", "designs",
                 [&runtime](const web::HttpRequest& r) { return runtime.handle_designs(r); });
  web::route_api(server, "GET", "metrics",
                 [&runtime](const web::HttpRequest& r) { return runtime.handle_metrics(r); });
  web::route_api(server, "GET", "readyz",
                 [&runtime](const web::HttpRequest& r) { return runtime.handle_readyz(r); });
}

}  // namespace cnn2fpga::serve
