#include "serve/server.hpp"

#include <chrono>
#include <cstring>

#include "util/base64.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve {

using cnn2fpga::util::format;

namespace {

web::HttpResponse json_error(int status, const std::string& message) {
  json::Object body;
  body["error"] = message;
  return {status, "application/json", json::Value(std::move(body)).dump()};
}

web::HttpResponse json_ok(json::Object body) {
  return {200, "application/json", json::Value(std::move(body)).dump()};
}

/// Decode the request's image payload into the design's input tensor.
/// Accepts "image_base64" (raw float32 little-endian CHW) or "image" (a JSON
/// array of numbers). Throws std::invalid_argument with a client-facing
/// message on bad payloads.
tensor::Tensor decode_image(const json::Value& doc, const nn::Shape& shape) {
  const std::size_t expected = shape.elements();
  tensor::Tensor image{shape};
  if (const json::Value* encoded = doc.find("image_base64"); encoded != nullptr) {
    const auto bytes = util::base64_decode(encoded->as_string());
    if (!bytes) throw std::invalid_argument("image_base64 is not valid base64");
    if (bytes->size() != expected * sizeof(float)) {
      throw std::invalid_argument(format(
          "image_base64 decodes to %zu bytes; input %s needs %zu (float32 CHW)",
          bytes->size(), shape.to_string().c_str(), expected * sizeof(float)));
    }
    std::memcpy(image.data(), bytes->data(), bytes->size());
    return image;
  }
  if (const json::Value* array = doc.find("image"); array != nullptr) {
    const json::Array& values = array->as_array();
    if (values.size() != expected) {
      throw std::invalid_argument(format("image has %zu values; input %s needs %zu",
                                         values.size(), shape.to_string().c_str(), expected));
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      image[i] = static_cast<float>(values[i].as_double());
    }
    return image;
  }
  throw std::invalid_argument("predict: provide image_base64 or image");
}

json::Object design_summary(const DeployedDesign& deployed) {
  const core::NetworkDescriptor& descriptor = deployed.descriptor();
  json::Object out;
  out["design_id"] = deployed.id;
  out["name"] = descriptor.name;
  out["board"] = descriptor.board;
  out["precision"] = descriptor.precision.is_fixed ? descriptor.precision.fixed.name()
                                                   : std::string("float32");
  out["input"] = deployed.net.input_shape().to_string();
  out["classes"] = descriptor.num_classes();
  out["latency_cycles"] = deployed.design.hls_report.latency_cycles;
  out["latency_seconds"] = deployed.hls_latency_seconds();
  out["fits"] = deployed.design.hls_report.fits();
  out["served"] = deployed.served.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

ServingRuntime::ServingRuntime(ServingConfig config)
    : config_(config),
      registry_(config.registry_capacity, &metrics_),
      executor_(config.worker_threads),
      batcher_(executor_, config.batcher, &metrics_) {}

ServingRuntime::~ServingRuntime() { shutdown(); }

void ServingRuntime::shutdown() {
  if (stopped_.exchange(true)) return;
  batcher_.shutdown();
  executor_.shutdown();
}

web::HttpResponse ServingRuntime::handle_deploy(const web::HttpRequest& request) {
  if (stopped_.load()) return json_error(503, "serving runtime is shut down");

  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return json_error(400, e.what());
  }

  core::NetworkDescriptor descriptor;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
  } catch (const core::DescriptorError& e) {
    return json_error(400, e.what());
  }

  DeployOutcome outcome;
  try {
    if (const json::Value* weights = doc.find("weights_base64"); weights != nullptr) {
      const auto bytes = util::base64_decode(weights->as_string());
      if (!bytes) return json_error(400, "weights_base64 is not valid base64");
      outcome = registry_.deploy(descriptor, *bytes);
    } else {
      const std::uint64_t seed = static_cast<std::uint64_t>(doc.get_int("seed", 1));
      outcome = registry_.deploy_random(descriptor, seed);
    }
  } catch (const std::runtime_error& e) {
    return json_error(400, e.what());  // weight/architecture mismatch
  } catch (const std::exception& e) {
    return json_error(500, e.what());
  }

  json::Object body = design_summary(*outcome.design);
  body["cache_hit"] = outcome.cache_hit;
  json::Array warnings;
  for (const std::string& warning : outcome.design->design.warnings) {
    warnings.push_back(warning);
  }
  body["warnings"] = std::move(warnings);
  const RegistryStats stats = registry_.stats();
  json::Object reg;
  reg["resident"] = registry_.size();
  reg["capacity"] = registry_.capacity();
  reg["hit_rate"] = stats.hit_rate();
  body["registry"] = std::move(reg);
  return json_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_predict(const web::HttpRequest& request) {
  if (stopped_.load()) return json_error(503, "serving runtime is shut down");
  const auto arrival = std::chrono::steady_clock::now();

  json::Value doc;
  try {
    doc = json::parse(request.body);
  } catch (const json::JsonError& e) {
    return json_error(400, e.what());
  }

  const json::Value* id = doc.find("design_id");
  if (id == nullptr || !id->is_string()) {
    return json_error(400, "predict: design_id is required (deploy first)");
  }
  std::shared_ptr<DeployedDesign> design = registry_.find(id->as_string());
  if (!design) {
    return json_error(404, format("design %s is not deployed", id->as_string().c_str()));
  }

  Prediction prediction;
  try {
    tensor::Tensor image = decode_image(doc, design->net.input_shape());
    prediction = batcher_.predict(design, std::move(image)).get();
  } catch (const std::invalid_argument& e) {
    metrics_.predict_errors.add();
    return json_error(400, e.what());
  } catch (const std::runtime_error& e) {
    return json_error(503, e.what());
  } catch (const std::exception& e) {
    return json_error(500, e.what());
  }

  json::Object body;
  body["design_id"] = design->id;
  body["predicted"] = prediction.predicted;
  json::Array logits;
  for (float logit : prediction.logits) logits.push_back(logit);
  body["logits"] = std::move(logits);
  body["batch_size"] = prediction.batch_size;
  body["queue_us"] = prediction.queue_us;
  body["exec_us"] = prediction.exec_us;
  body["accel_us"] = prediction.accel_us;
  body["total_us"] = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            arrival)
          .count());
  return json_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_designs(const web::HttpRequest&) {
  json::Array designs;
  for (const auto& deployed : registry_.list()) {
    designs.push_back(design_summary(*deployed));
  }
  const RegistryStats stats = registry_.stats();
  json::Object body;
  body["designs"] = std::move(designs);
  body["resident"] = registry_.size();
  body["capacity"] = registry_.capacity();
  body["hits"] = stats.hits;
  body["misses"] = stats.misses;
  body["evictions"] = stats.evictions;
  body["hit_rate"] = stats.hit_rate();
  return json_ok(std::move(body));
}

web::HttpResponse ServingRuntime::handle_metrics(const web::HttpRequest&) {
  json::Value metrics = metrics_.to_json();
  json::Object& body = metrics.as_object();
  json::Object reg;
  reg["resident"] = registry_.size();
  reg["capacity"] = registry_.capacity();
  body["registry"] = std::move(reg);
  json::Object pool;
  pool["worker_threads"] = executor_.thread_count();
  pool["backlog"] = executor_.backlog();
  pool["max_batch"] = batcher_.config().max_batch;
  pool["max_wait_us"] = batcher_.config().max_wait_us;
  pool["pending"] = batcher_.pending();
  body["pool"] = std::move(pool);
  return {200, "application/json", metrics.dump()};
}

void install_serve_api(web::HttpServer& server, ServingRuntime& runtime) {
  server.route("POST", "/api/deploy",
               [&runtime](const web::HttpRequest& r) { return runtime.handle_deploy(r); });
  server.route("POST", "/api/predict",
               [&runtime](const web::HttpRequest& r) { return runtime.handle_predict(r); });
  server.route("GET", "/api/designs",
               [&runtime](const web::HttpRequest& r) { return runtime.handle_designs(r); });
  server.route("GET", "/api/metrics",
               [&runtime](const web::HttpRequest& r) { return runtime.handle_metrics(r); });
}

}  // namespace cnn2fpga::serve
