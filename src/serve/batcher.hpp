// Dynamic (continuous) micro-batching of predict requests, placed onto
// heterogeneous backends.
//
// Requests for the same deployed design coalesce in a per-design lane. A lane
// flushes — becoming one batch the cost-model Placer assigns to an
// InferenceBackend (src/serve/backend/), whose execution resource runs every
// image and fulfills the per-request futures — on the first of three
// triggers:
//   1. some backend can take a batch right now (the CPU engine has a free
//      per-design inference slot, or the accelerator is idle): flush
//      immediately, so an unloaded server adds zero batching latency and a
//      loaded one keeps every engine busy;
//   2. `max_batch` requests are waiting: flush from the submitting thread;
//   3. the oldest request has waited `max_wait_us`: deadline flush for
//      partial batches stuck behind long-running batches.
// While every backend is busy, concurrent requests accumulate and flush the
// moment a batch completes — under saturation the batch size converges on
// the number of concurrent clients (capped at max_batch) with no timer on
// the hot path.
//
// Placement (see backend/placer.hpp): each flushed batch goes to the
// admissible backend with the cheapest estimated completion cost — raw
// execution estimate scaled by the work already queued there. Under CPU
// saturation, overflow batches *spill* to the slower-but-idle accelerator
// instead of queueing toward a 429; both backends compute identical results
// (run_reference_batch), so placement never changes a prediction.
//
// Overload behavior (see DESIGN.md "Overload and failure behavior"):
//   - Bounded admission. `max_queue_depth` caps requests that are admitted
//     but not yet executing (lanes + submitted-but-unstarted batches). At
//     the cap, predict() throws OverloadedError immediately — the accept
//     path never blocks and memory stays bounded. `max_queue_depth_per_design`
//     bounds one design's share the same way.
//   - Deadline propagation. Every request may carry a deadline. Expired
//     requests are dropped when their lane flushes and re-checked when the
//     batch starts executing, failing the future with DeadlineExceededError
//     so workers never run inference for a client that already gave up.
//   - Circuit breaking, backend-scoped. predict() admits a request while ANY
//     admissible backend's breaker would allow it; the chosen backend's
//     breaker is consumed at placement, and batch outcomes feed only that
//     backend's breaker — a failing accelerator path quarantines accelerator
//     placements while the CPU keeps serving the design (and vice versa).
//     Only when every backend is quarantined does predict() fail with
//     DesignUnavailableError.
//   - Fault sites: `batcher.enqueue` (latency/alloc) in predict(),
//     `backend.dispatch` (error/alloc at placement, latency at batch start),
//     `executor.batch` (latency/error) at batch execution.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/backend/backend.hpp"
#include "serve/backend/placer.hpp"
#include "serve/errors.hpp"
#include "serve/executor.hpp"
#include "serve/fault.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "tensor/tensor.hpp"

namespace cnn2fpga::serve {

/// Result of one served image.
struct Prediction {
  std::size_t predicted = 0;       ///< argmax class (what the FPGA returns)
  std::vector<float> logits;       ///< final scores (log-probabilities)
  std::uint64_t queue_us = 0;      ///< time spent waiting in the batcher lane
  std::uint64_t exec_us = 0;       ///< execution time of the containing batch
  std::uint64_t accel_us = 0;      ///< this image's share of the modeled
                                   ///< accelerator invocation (see
                                   ///< DeployedDesign::invocation_seconds)
  std::size_t batch_size = 0;      ///< images in the containing batch
  BackendId backend = BackendId::kCpu;  ///< engine the batch executed on
  /// Serving arithmetic the design is deployed at (what computed the logits).
  nn::ServePrecision precision = nn::ServePrecision::kFloat32;
};

struct BatcherConfig {
  std::size_t max_batch = 8;        ///< flush as soon as this many requests wait
  std::uint64_t max_wait_us = 1000; ///< deadline flush for partial batches
  /// Concurrent batches allowed per design on the CPU backend; 0 = the
  /// executor's worker count. 1 restores the fully serialized
  /// pre-ExecutionContext behavior. (The accelerator's concurrency is always
  /// 1: one physical IP core.)
  std::size_t max_inflight_per_design = 0;
  /// Bounded admission: cap on requests admitted but not yet executing
  /// (waiting()). 0 = unbounded. At the cap predict() sheds with
  /// OverloadedError instead of queueing.
  std::size_t max_queue_depth = 0;
  /// Per-design share of the admission budget. 0 = unbounded.
  std::size_t max_queue_depth_per_design = 0;
};

class Batcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel deadline: the request never expires.
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// Single-engine batcher: wraps `executor` in a CpuBackend with the
  /// cpu-only placement policy — the pre-backend behavior, byte for byte.
  /// `executor` must outlive the batcher. `metrics` and `faults` may be null.
  Batcher(Executor& executor, BatcherConfig config, ServeMetrics* metrics = nullptr,
          FaultInjector* faults = nullptr);

  /// Heterogeneous batcher: flushed batches are placed onto `backends` by
  /// `policy`. `backends` must be non-empty; the batcher shares ownership and
  /// calls shutdown() on each backend after draining. `cpu_slots` resolves
  /// BatcherConfig::max_inflight_per_design == 0 (pass the executor width).
  Batcher(std::vector<std::shared_ptr<InferenceBackend>> backends, PlacerPolicy policy,
          std::size_t cpu_slots, BatcherConfig config, ServeMetrics* metrics = nullptr,
          FaultInjector* faults = nullptr);
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueue one image. The future resolves when its batch has executed; it
  /// carries an exception for per-request failures (DeadlineExceededError
  /// when dropped past `deadline`, InjectedFault / execution errors
  /// otherwise). Never blocks. Throws immediately:
  ///   std::invalid_argument      input-shape mismatch
  ///   OverloadedError            admission queue at max_queue_depth
  ///   DeadlineExceededError      `deadline` already passed
  ///   DesignUnavailableError     every backend's circuit breaker is open
  ///   ShutdownError              after shutdown()
  std::future<Prediction> predict(std::shared_ptr<DeployedDesign> design,
                                  tensor::Tensor input,
                                  Clock::time_point deadline = kNoDeadline);

  /// Flush every pending lane, wait for all in-flight batches, stop the
  /// deadline thread, shut the backends down. Idempotent.
  void shutdown();

  const BatcherConfig& config() const { return config_; }
  /// Effective concurrent-batch cap per design on the CPU backend.
  std::size_t inflight_limit() const { return inflight_limit_; }
  const Placer& placer() const { return placer_; }
  const std::vector<std::shared_ptr<InferenceBackend>>& backends() const {
    return backends_;
  }

  /// Requests waiting in lanes (not yet flushed).
  std::size_t pending() const;

  /// Requests admitted but not yet executing (lanes + submitted batches the
  /// backends have not started). This is what max_queue_depth bounds.
  std::size_t waiting() const;

 private:
  struct Request {
    std::promise<Prediction> promise;
    tensor::Tensor input;
    Clock::time_point enqueued;
    Clock::time_point deadline = kNoDeadline;
  };

  struct Lane {
    std::shared_ptr<DeployedDesign> design;
    std::vector<Request> requests;
    Clock::time_point deadline;  ///< enqueue time of the oldest + max_wait
  };

  void deadline_loop();
  /// Some backend can start a batch of `design_id` right now AND is worth
  /// flushing a lane of `lane_size` requests to: engines that amortize a
  /// fixed per-invocation cost over the batch (eager_partial_flush == false)
  /// only count once the lane is full — partial lanes reach them through the
  /// max_wait deadline flush instead. Caller holds mutex_.
  bool capacity_available_locked(const std::string& design_id, std::size_t lane_size) const;
  /// Cost-rank the backends for a batch of `images` and claim the winner's
  /// breaker probe. nullptr when every backend is excluded or quarantined
  /// (`retry_after_ms` then carries the soonest cooldown expiry). Caller
  /// holds mutex_.
  InferenceBackend* choose_backend_locked(DeployedDesign& design, std::size_t images,
                                          bool& spill, std::uint64_t& retry_after_ms);
  /// Place a full lane and dispatch it to the chosen backend (expired
  /// requests are dropped first). Caller holds mutex_.
  void flush_locked(Lane lane);
  void execute_batch(std::shared_ptr<DeployedDesign> design, std::vector<Request> batch,
                     InferenceBackend& backend);
  /// Account `count` admitted requests of `design_id` leaving the waiting
  /// set (started executing, expired, or failed to submit). Caller holds
  /// mutex_.
  void settle_waiting_locked(const std::string& design_id, std::size_t count);
  /// Fail one expired request (504 path) without executing it. Safe to call
  /// with or without mutex_ held (touches only the request and metrics).
  void expire_request(Request& request);

  const std::vector<std::shared_ptr<InferenceBackend>> backends_;
  const Placer placer_;
  const BatcherConfig config_;
  const std::size_t inflight_limit_;
  ServeMetrics* metrics_;
  FaultInjector* faults_;

  mutable std::mutex mutex_;
  std::condition_variable lane_cv_;     ///< wakes the deadline thread
  std::condition_variable drained_cv_;  ///< signals in-flight batches done
  std::map<std::string, Lane> lanes_;   ///< keyed by design id
  /// In-flight batches per design, per backend (indexed by backend_index()).
  std::map<std::string, std::array<std::size_t, kBackendCount>> busy_;
  std::size_t in_flight_ = 0;           ///< batches submitted, not yet finished
  std::size_t waiting_ = 0;             ///< admitted, not yet executing
  std::map<std::string, std::size_t> waiting_by_design_;
  bool stopping_ = false;
  bool backends_shut_ = false;
  std::thread deadline_thread_;
};

}  // namespace cnn2fpga::serve
