// Dynamic (continuous) micro-batching of predict requests.
//
// Requests for the same deployed design coalesce in a per-design lane. A lane
// flushes — becoming one Executor task that checks an ExecutionContext out of
// the design's pool, runs every image through the const Network::infer path,
// and fulfills the per-request futures — on the first of three triggers:
//   1. the design has a free inference slot (fewer than
//      `max_inflight_per_design` batches running): flush immediately, so an
//      unloaded server adds zero batching latency and a loaded one keeps
//      every Executor worker busy on the same design in parallel;
//   2. `max_batch` requests are waiting: flush from the submitting thread;
//   3. the oldest request has waited `max_wait_us`: deadline flush for
//      partial batches stuck behind long-running batches.
// While all slots are busy, concurrent requests accumulate and flush the
// moment a batch completes — under saturation the batch size converges on
// the number of concurrent clients (capped at max_batch) with no timer on
// the hot path. Batching amortizes the queue/wake/dispatch overhead of a
// request across the whole batch; parallel slots convert the design from
// lock-bound to compute-bound (the modeled accelerator cost stays serial —
// see DeployedDesign::invocation_seconds). Shutdown drains: pending lanes
// are flushed and in-flight batches complete before shutdown() returns.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/executor.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "tensor/tensor.hpp"

namespace cnn2fpga::serve {

/// Result of one served image.
struct Prediction {
  std::size_t predicted = 0;       ///< argmax class (what the FPGA returns)
  std::vector<float> logits;       ///< final scores (log-probabilities)
  std::uint64_t queue_us = 0;      ///< time spent waiting in the batcher lane
  std::uint64_t exec_us = 0;       ///< execution time of the containing batch
  std::uint64_t accel_us = 0;      ///< this image's share of the modeled
                                   ///< accelerator invocation (see
                                   ///< DeployedDesign::invocation_seconds)
  std::size_t batch_size = 0;      ///< images in the containing batch
};

struct BatcherConfig {
  std::size_t max_batch = 8;        ///< flush as soon as this many requests wait
  std::uint64_t max_wait_us = 1000; ///< deadline flush for partial batches
  /// Concurrent batches allowed per design; 0 = the executor's worker count.
  /// 1 restores the fully serialized pre-ExecutionContext behavior.
  std::size_t max_inflight_per_design = 0;
};

class Batcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// `executor` must outlive the batcher. `metrics` may be null.
  Batcher(Executor& executor, BatcherConfig config, ServeMetrics* metrics = nullptr);
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueue one image. The future resolves when its batch has executed;
  /// it carries an exception for per-request failures. Throws
  /// std::invalid_argument immediately on an input-shape mismatch and
  /// std::runtime_error after shutdown().
  std::future<Prediction> predict(std::shared_ptr<DeployedDesign> design,
                                  tensor::Tensor input);

  /// Flush every pending lane, wait for all in-flight batches, stop the
  /// deadline thread. Idempotent.
  void shutdown();

  const BatcherConfig& config() const { return config_; }
  /// Effective concurrent-batch cap per design (resolved executor width).
  std::size_t inflight_limit() const { return inflight_limit_; }

  /// Requests waiting in lanes (not yet flushed).
  std::size_t pending() const;

 private:
  struct Request {
    std::promise<Prediction> promise;
    tensor::Tensor input;
    Clock::time_point enqueued;
  };

  struct Lane {
    std::shared_ptr<DeployedDesign> design;
    std::vector<Request> requests;
    Clock::time_point deadline;  ///< enqueue time of the oldest + max_wait
  };

  void deadline_loop();
  /// Submit a full lane to the executor. Caller holds mutex_.
  void flush_locked(Lane lane);
  void execute_batch(std::shared_ptr<DeployedDesign> design, std::vector<Request> batch);

  Executor& executor_;
  const BatcherConfig config_;
  const std::size_t inflight_limit_;
  ServeMetrics* metrics_;

  mutable std::mutex mutex_;
  std::condition_variable lane_cv_;     ///< wakes the deadline thread
  std::condition_variable drained_cv_;  ///< signals in-flight batches done
  std::map<std::string, Lane> lanes_;   ///< keyed by design id
  std::map<std::string, std::size_t> busy_;  ///< in-flight batches per design
  std::size_t in_flight_ = 0;           ///< batches submitted, not yet finished
  bool stopping_ = false;
  std::thread deadline_thread_;
};

}  // namespace cnn2fpga::serve
