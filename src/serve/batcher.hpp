// Dynamic (continuous) micro-batching of predict requests.
//
// Requests for the same deployed design coalesce in a per-design lane. A lane
// flushes — becoming one Executor task that checks an ExecutionContext out of
// the design's pool, runs every image through the const Network::infer path,
// and fulfills the per-request futures — on the first of three triggers:
//   1. the design has a free inference slot (fewer than
//      `max_inflight_per_design` batches running): flush immediately, so an
//      unloaded server adds zero batching latency and a loaded one keeps
//      every Executor worker busy on the same design in parallel;
//   2. `max_batch` requests are waiting: flush from the submitting thread;
//   3. the oldest request has waited `max_wait_us`: deadline flush for
//      partial batches stuck behind long-running batches.
// While all slots are busy, concurrent requests accumulate and flush the
// moment a batch completes — under saturation the batch size converges on
// the number of concurrent clients (capped at max_batch) with no timer on
// the hot path. Batching amortizes the queue/wake/dispatch overhead of a
// request across the whole batch; parallel slots convert the design from
// lock-bound to compute-bound (the modeled accelerator cost stays serial —
// see DeployedDesign::invocation_seconds). Shutdown drains: pending lanes
// are flushed and in-flight batches complete before shutdown() returns.
//
// Overload behavior (see DESIGN.md "Overload and failure behavior"):
//   - Bounded admission. `max_queue_depth` caps requests that are admitted
//     but not yet executing (lanes + submitted-but-unstarted batches). At
//     the cap, predict() throws OverloadedError immediately — the accept
//     path never blocks and memory stays bounded. `max_queue_depth_per_design`
//     bounds one design's share the same way.
//   - Deadline propagation. Every request may carry a deadline. Expired
//     requests are dropped when their lane flushes and re-checked when the
//     batch starts executing, failing the future with DeadlineExceededError
//     so workers never run inference for a client that already gave up.
//   - Circuit breaking. predict() consults the design's Breaker; while it is
//     open the request fails with DesignUnavailableError without touching a
//     lane or an executor slot. Batch outcomes feed the breaker: any
//     execution failure in a batch counts as one failed batch.
//   - Fault sites: `batcher.enqueue` (latency/alloc) in predict(),
//     `executor.batch` (latency/error) at batch execution.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/errors.hpp"
#include "serve/executor.hpp"
#include "serve/fault.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"
#include "tensor/tensor.hpp"

namespace cnn2fpga::serve {

/// Result of one served image.
struct Prediction {
  std::size_t predicted = 0;       ///< argmax class (what the FPGA returns)
  std::vector<float> logits;       ///< final scores (log-probabilities)
  std::uint64_t queue_us = 0;      ///< time spent waiting in the batcher lane
  std::uint64_t exec_us = 0;       ///< execution time of the containing batch
  std::uint64_t accel_us = 0;      ///< this image's share of the modeled
                                   ///< accelerator invocation (see
                                   ///< DeployedDesign::invocation_seconds)
  std::size_t batch_size = 0;      ///< images in the containing batch
};

struct BatcherConfig {
  std::size_t max_batch = 8;        ///< flush as soon as this many requests wait
  std::uint64_t max_wait_us = 1000; ///< deadline flush for partial batches
  /// Concurrent batches allowed per design; 0 = the executor's worker count.
  /// 1 restores the fully serialized pre-ExecutionContext behavior.
  std::size_t max_inflight_per_design = 0;
  /// Bounded admission: cap on requests admitted but not yet executing
  /// (waiting()). 0 = unbounded. At the cap predict() sheds with
  /// OverloadedError instead of queueing.
  std::size_t max_queue_depth = 0;
  /// Per-design share of the admission budget. 0 = unbounded.
  std::size_t max_queue_depth_per_design = 0;
};

class Batcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel deadline: the request never expires.
  static constexpr Clock::time_point kNoDeadline = Clock::time_point::max();

  /// `executor` must outlive the batcher. `metrics` and `faults` may be null.
  Batcher(Executor& executor, BatcherConfig config, ServeMetrics* metrics = nullptr,
          FaultInjector* faults = nullptr);
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueue one image. The future resolves when its batch has executed; it
  /// carries an exception for per-request failures (DeadlineExceededError
  /// when dropped past `deadline`, InjectedFault / execution errors
  /// otherwise). Never blocks. Throws immediately:
  ///   std::invalid_argument      input-shape mismatch
  ///   OverloadedError            admission queue at max_queue_depth
  ///   DeadlineExceededError      `deadline` already passed
  ///   DesignUnavailableError     the design's circuit breaker is open
  ///   ShutdownError              after shutdown()
  std::future<Prediction> predict(std::shared_ptr<DeployedDesign> design,
                                  tensor::Tensor input,
                                  Clock::time_point deadline = kNoDeadline);

  /// Flush every pending lane, wait for all in-flight batches, stop the
  /// deadline thread. Idempotent.
  void shutdown();

  const BatcherConfig& config() const { return config_; }
  /// Effective concurrent-batch cap per design (resolved executor width).
  std::size_t inflight_limit() const { return inflight_limit_; }

  /// Requests waiting in lanes (not yet flushed).
  std::size_t pending() const;

  /// Requests admitted but not yet executing (lanes + submitted batches the
  /// executor has not started). This is what max_queue_depth bounds.
  std::size_t waiting() const;

 private:
  struct Request {
    std::promise<Prediction> promise;
    tensor::Tensor input;
    Clock::time_point enqueued;
    Clock::time_point deadline = kNoDeadline;
  };

  struct Lane {
    std::shared_ptr<DeployedDesign> design;
    std::vector<Request> requests;
    Clock::time_point deadline;  ///< enqueue time of the oldest + max_wait
  };

  void deadline_loop();
  /// Submit a full lane to the executor (expired requests are dropped
  /// first). Caller holds mutex_.
  void flush_locked(Lane lane);
  void execute_batch(std::shared_ptr<DeployedDesign> design, std::vector<Request> batch);
  /// Account `count` admitted requests of `design_id` leaving the waiting
  /// set (started executing, expired, or failed to submit). Caller holds
  /// mutex_.
  void settle_waiting_locked(const std::string& design_id, std::size_t count);
  /// Fail one expired request (504 path) without executing it. Safe to call
  /// with or without mutex_ held (touches only the request and metrics).
  void expire_request(Request& request);

  Executor& executor_;
  const BatcherConfig config_;
  const std::size_t inflight_limit_;
  ServeMetrics* metrics_;
  FaultInjector* faults_;

  mutable std::mutex mutex_;
  std::condition_variable lane_cv_;     ///< wakes the deadline thread
  std::condition_variable drained_cv_;  ///< signals in-flight batches done
  std::map<std::string, Lane> lanes_;   ///< keyed by design id
  std::map<std::string, std::size_t> busy_;  ///< in-flight batches per design
  std::size_t in_flight_ = 0;           ///< batches submitted, not yet finished
  std::size_t waiting_ = 0;             ///< admitted, not yet executing
  std::map<std::string, std::size_t> waiting_by_design_;
  bool stopping_ = false;
  std::thread deadline_thread_;
};

}  // namespace cnn2fpga::serve
