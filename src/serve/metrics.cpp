#include "serve/metrics.hpp"

#include <bit>

namespace cnn2fpga::serve {

namespace {
std::size_t bucket_index(std::uint64_t value) {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < Histogram::kBuckets ? width : Histogram::kBuckets - 1;
}
}  // namespace

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) {
      // Never report beyond the observed maximum (tightens the top bucket).
      const std::uint64_t bound = bucket_upper_bound(i);
      const std::uint64_t observed_max = max();
      return bound < observed_max ? bound : observed_max;
    }
  }
  return max();
}

json::Value Histogram::to_json() const {
  json::Object out;
  out["count"] = count();
  out["sum"] = sum();
  out["mean"] = mean();
  out["max"] = max();
  out["p50"] = percentile(0.50);
  out["p95"] = percentile(0.95);
  out["p99"] = percentile(0.99);
  json::Array buckets;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    json::Array pair;
    pair.push_back(json::Value(static_cast<std::int64_t>(i)));
    pair.push_back(json::Value(n));
    buckets.push_back(json::Value(std::move(pair)));
  }
  out["buckets"] = std::move(buckets);
  return json::Value(std::move(out));
}

double ServeMetrics::spill_rate() const {
  std::uint64_t dispatched = 0;
  for (std::size_t i = 0; i < kBackendCount; ++i) dispatched += backend[i].dispatched.value();
  return dispatched == 0 ? 0.0
                         : static_cast<double>(spilled.value()) /
                               static_cast<double>(dispatched);
}

double ServeMetrics::cache_hit_rate() const {
  const std::uint64_t total = deploys.value();
  return total == 0 ? 0.0
                    : static_cast<double>(deploy_cache_hits.value()) /
                          static_cast<double>(total);
}

json::Value ServeMetrics::to_json() const {
  json::Object out;
  json::Object deploy;
  deploy["total"] = deploys.value();
  deploy["cache_hits"] = deploy_cache_hits.value();
  deploy["cache_hit_rate"] = cache_hit_rate();
  deploy["evictions"] = deploy_evictions.value();
  out["deploy"] = std::move(deploy);

  json::Object predict;
  predict["total"] = predictions.value();
  predict["errors"] = predict_errors.value();
  predict["batches"] = batches.value();
  predict["batch_size"] = batch_size.to_json();
  predict["queue_us"] = queue_us.to_json();
  predict["exec_us"] = exec_us.to_json();
  predict["accel_us"] = accel_us.to_json();
  out["predict"] = std::move(predict);

  json::Object backends;
  for (std::size_t i = 0; i < kBackendCount; ++i) {
    json::Object one;
    one["dispatched"] = backend[i].dispatched.value();
    one["batches"] = backend[i].batches.value();
    one["images"] = backend[i].images.value();
    one["errors"] = backend[i].errors.value();
    one["exec_us"] = backend[i].exec_us.to_json();
    backends[backend_name(static_cast<BackendId>(i))] = std::move(one);
  }
  backends["spilled"] = spilled.value();
  backends["spill_rate"] = spill_rate();
  out["backends"] = std::move(backends);

  json::Object precisions;
  for (std::size_t i = 0; i < nn::kServePrecisionCount; ++i) {
    json::Object one;
    one["dispatched"] = precision[i].dispatched.value();
    one["batches"] = precision[i].batches.value();
    one["images"] = precision[i].images.value();
    one["exec_us"] = precision[i].exec_us.to_json();
    precisions[nn::serve_precision_name(static_cast<nn::ServePrecision>(i))] =
        std::move(one);
  }
  out["precisions"] = std::move(precisions);

  json::Object overload;
  overload["admitted"] = admitted.value();
  overload["shed"] = shed.value();
  overload["expired"] = expired.value();
  overload["breaker_rejects"] = breaker_rejects.value();
  overload["breaker_opens"] = breaker_opens.value();
  overload["queue_depth"] = queue_depth.value();
  overload["queue_depth_peak"] = queue_depth.peak();
  out["overload"] = std::move(overload);
  return json::Value(std::move(out));
}

}  // namespace cnn2fpga::serve
