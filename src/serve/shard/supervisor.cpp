#include "serve/shard/supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve::shard {

using cnn2fpga::util::format;

// ---------------------------------------------------------------------------
// ProcessLauncher

ProcessLauncher::ProcessLauncher(ReservedPort reserved, WorkerProcess::ChildMain child_main,
                                 int ready_timeout_ms)
    : reserved_(std::move(reserved)),
      child_main_(std::move(child_main)),
      ready_timeout_ms_(ready_timeout_ms) {}

bool ProcessLauncher::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (process_.running()) return true;
    if (!reserved_.valid()) return false;
    if (!process_.spawn(reserved_.port(), child_main_)) return false;
  }
  // Wait outside the lock: alive()/kill_now() must stay responsive while the
  // fresh worker warms up.
  if (wait_until_ready(reserved_.port(), ready_timeout_ms_)) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  process_.kill_now();
  return false;
}

bool ProcessLauncher::alive() {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_.poll_alive();
}

void ProcessLauncher::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  process_.stop();
}

void ProcessLauncher::kill_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  process_.kill_now();
}

// ---------------------------------------------------------------------------
// Supervisor

const char* slot_state_name(SlotState state) {
  switch (state) {
    case SlotState::kRunning: return "running";
    case SlotState::kBackoff: return "backoff";
    case SlotState::kDead: return "dead";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {}

Supervisor::~Supervisor() = default;

void Supervisor::add_slot(const std::string& id, std::unique_ptr<WorkerLauncher> launcher) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto slot = std::make_unique<Slot>();
  slot->id = id;
  slot->launcher = std::move(launcher);
  slots_.push_back(std::move(slot));
}

void Supervisor::on_restart(std::function<void(const std::string& id)> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_restart_ = std::move(callback);
}

SlotState Supervisor::record_crash_locked(Slot& slot,
                                          std::chrono::steady_clock::time_point now) {
  ++slot.crashes;
  slot.window.push_back(now);
  const auto horizon = now - std::chrono::milliseconds(config_.budget_window_ms);
  while (!slot.window.empty() && slot.window.front() < horizon) slot.window.pop_front();
  if (config_.restart_budget != 0 && slot.window.size() > config_.restart_budget) {
    slot.state = SlotState::kDead;
    LOG_ERROR("supervisor") << format(
        "worker %s: %zu crashes inside %d ms exceed the restart budget (%llu) — permanently down",
        slot.id.c_str(), slot.window.size(), config_.budget_window_ms,
        static_cast<unsigned long long>(config_.restart_budget));
    return slot.state;
  }
  // Deterministic exponential backoff keyed on the crash streak inside the
  // window, so a reproducible kill schedule yields a reproducible restart
  // schedule.
  const double exponent = static_cast<double>(slot.window.size() - 1);
  const double delay = static_cast<double>(config_.backoff_initial_ms) *
                       std::pow(config_.backoff_factor, exponent);
  slot.backoff_ms = static_cast<int>(
      std::min<double>(delay, static_cast<double>(config_.backoff_max_ms)));
  slot.restart_due = now + std::chrono::milliseconds(slot.backoff_ms);
  slot.state = SlotState::kBackoff;
  LOG_WARN("supervisor") << format("worker %s crashed (crash #%llu); restart in %d ms",
                                   slot.id.c_str(),
                                   static_cast<unsigned long long>(slot.crashes),
                                   slot.backoff_ms);
  return slot.state;
}

void Supervisor::tick() {
  const auto now = std::chrono::steady_clock::now();
  // Work on stable pointers: slots_ is append-only and Slot objects are
  // heap-pinned, so launcher calls can run outside the lock.
  std::vector<Slot*> slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots.reserve(slots_.size());
    for (const auto& slot : slots_) slots.push_back(slot.get());
  }

  for (Slot* slot : slots) {
    SlotState state;
    std::chrono::steady_clock::time_point due;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      state = slot->state;
      due = slot->restart_due;
    }
    if (state == SlotState::kDead) continue;

    if (state == SlotState::kRunning) {
      if (slot->launcher->alive()) continue;
      std::lock_guard<std::mutex> lock(mutex_);
      if (slot->state != SlotState::kRunning) continue;  // raced with stop_all
      record_crash_locked(*slot, now);
      continue;
    }

    // kBackoff: attempt the restart once the delay elapsed. The launcher
    // blocks until the worker answers readyz (or its timeout), outside the
    // lock so status()/readyz stay responsive during the warm-up.
    if (now < due) continue;
    const bool up = slot->launcher->start();
    std::function<void(const std::string&)> callback;
    std::string id;
    bool fleet_stopping = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      fleet_stopping = slot->state == SlotState::kDead;  // stop_all raced the restart
      if (!fleet_stopping && !up) {
        record_crash_locked(*slot, std::chrono::steady_clock::now());
        continue;
      }
    }
    if (fleet_stopping) {
      if (up) slot->launcher->stop();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot->state = SlotState::kRunning;
      slot->backoff_ms = 0;
      ++slot->restarts;
      id = slot->id;
      callback = on_restart_;
    }
    LOG_INFO("supervisor") << format("worker %s restarted on port %d", id.c_str(),
                                     slot->launcher->port());
    if (callback) callback(id);
  }
}

void Supervisor::stop_all() {
  std::vector<Slot*> slots;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& slot : slots_) {
      // A stopping fleet must not resurrect workers: park every slot in
      // kDead before the graceful stop.
      slot->state = SlotState::kDead;
      slots.push_back(slot.get());
    }
  }
  for (Slot* slot : slots) slot->launcher->stop();
}

std::vector<Supervisor::SlotStatus> Supervisor::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SlotStatus> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SlotStatus status;
    status.id = slot->id;
    status.port = slot->launcher->port();
    status.state = slot->state;
    status.crashes = slot->crashes;
    status.restarts = slot->restarts;
    status.backoff_ms = slot->state == SlotState::kBackoff ? slot->backoff_ms : 0;
    out.push_back(std::move(status));
  }
  return out;
}

std::uint64_t Supervisor::restarts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->restarts;
  return total;
}

std::uint64_t Supervisor::crashes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->crashes;
  return total;
}

std::uint64_t Supervisor::permanently_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& slot : slots_) total += slot->state == SlotState::kDead ? 1 : 0;
  return total;
}

json::Value Supervisor::to_json() const {
  const auto slots = status();
  json::Object out;
  json::Array entries;
  std::uint64_t restarts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t dead = 0;
  for (const auto& slot : slots) {
    json::Object entry;
    entry["id"] = slot.id;
    entry["port"] = slot.port;
    entry["state"] = slot_state_name(slot.state);
    entry["crashes"] = slot.crashes;
    entry["restarts"] = slot.restarts;
    if (slot.state == SlotState::kBackoff) entry["backoff_ms"] = slot.backoff_ms;
    entries.push_back(std::move(entry));
    restarts += slot.restarts;
    crashes += slot.crashes;
    dead += slot.state == SlotState::kDead ? 1 : 0;
  }
  out["slots"] = std::move(entries);
  out["restarts"] = restarts;
  out["crashes"] = crashes;
  out["permanently_down"] = dead;
  return json::Value(std::move(out));
}

}  // namespace cnn2fpga::serve::shard
