#include "serve/shard/router.hpp"

#include <algorithm>
#include <chrono>

#include "core/descriptor.hpp"
#include "core/framework.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "serve/metrics.hpp"
#include "util/base64.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "web/envelope.hpp"

namespace cnn2fpga::serve::shard {

using cnn2fpga::util::format;
using web::api_error;

namespace {
constexpr const char* kDeployPath = "/api/v1/deploy";
constexpr const char* kPredictPath = "/api/v1/predict";
constexpr const char* kDesignsPath = "/api/v1/designs";
constexpr const char* kMetricsPath = "/api/v1/metrics";
constexpr const char* kReadyzPath = "/api/v1/readyz";

std::uint64_t u64_field(const json::Value& doc, const std::string& key) {
  try {
    return static_cast<std::uint64_t>(doc.get_int(key, 0));
  } catch (const json::JsonError&) {
    return 0;
  }
}

double num_field(const json::Object& object, const std::string& key) {
  const auto it = object.find(key);
  if (it == object.end() || !it->second.is_number()) return 0.0;
  return it->second.as_double();
}

/// A node produced by Histogram::to_json: mergeable by raw bucket counts.
bool is_histogram_node(const json::Value& value) {
  return value.is_object() && value.find("buckets") != nullptr &&
         value.find("count") != nullptr && value.find("sum") != nullptr;
}

/// Accumulates Histogram::to_json nodes from several workers and re-emits the
/// same shape. Because workers export raw log2 buckets, the merged count,
/// sum, max and percentiles are exactly what one fleet-wide histogram would
/// have recorded — not an approximation from per-worker percentiles.
struct HistogramAccumulator {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::map<long, std::uint64_t> buckets;

  void absorb(const json::Value& node) {
    count += u64_field(node, "count");
    sum += u64_field(node, "sum");
    max = std::max(max, u64_field(node, "max"));
    const json::Value* array = node.find("buckets");
    if (array == nullptr || !array->is_array()) return;
    for (const json::Value& pair : array->as_array()) {
      if (!pair.is_array() || pair.as_array().size() != 2) continue;
      try {
        buckets[pair.as_array()[0].as_int()] +=
            static_cast<std::uint64_t>(pair.as_array()[1].as_int());
      } catch (const json::JsonError&) {
      }
    }
  }

  std::uint64_t percentile(double p) const {
    if (count == 0) return 0;
    const double target = p * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (const auto& [index, n] : buckets) {
      cumulative += n;
      if (static_cast<double>(cumulative) >= target) {
        const std::uint64_t bound =
            Histogram::bucket_upper_bound(static_cast<std::size_t>(index));
        return bound < max ? bound : max;
      }
    }
    return max;
  }

  json::Value to_json() const {
    json::Object out;
    out["count"] = count;
    out["sum"] = sum;
    out["mean"] = count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
    out["max"] = max;
    out["p50"] = percentile(0.50);
    out["p95"] = percentile(0.95);
    out["p99"] = percentile(0.99);
    json::Array array;
    for (const auto& [index, n] : buckets) {
      json::Array pair;
      pair.push_back(json::Value(static_cast<long>(index)));
      pair.push_back(json::Value(n));
      array.push_back(json::Value(std::move(pair)));
    }
    out["buckets"] = std::move(array);
    return json::Value(std::move(out));
  }
};

void merge_object(json::Object& into, const json::Object& from);

/// Generic fleet merge: histograms merge by buckets, numbers sum, objects
/// recurse, everything else (strings, bools, arrays, type mismatches) keeps
/// the first worker's value. Ratio fields summed here are recomputed from the
/// merged totals afterwards (fix_fleet_rates).
void merge_value(json::Value& into, const json::Value& from) {
  if (is_histogram_node(into) && is_histogram_node(from)) {
    HistogramAccumulator acc;
    acc.absorb(into);
    acc.absorb(from);
    into = acc.to_json();
    return;
  }
  if (into.is_object() && from.is_object()) {
    merge_object(into.as_object(), from.as_object());
    return;
  }
  if (into.is_number() && from.is_number()) {
    into = json::Value(into.as_double() + from.as_double());
    return;
  }
}

void merge_object(json::Object& into, const json::Object& from) {
  for (const auto& [key, value] : from) {
    const auto it = into.find(key);
    if (it == into.end()) {
      into[key] = value;
    } else {
      merge_value(it->second, value);
    }
  }
}

/// Summing rates across workers is meaningless; recompute the fleet ratios
/// from the merged counters they derive from.
void fix_fleet_rates(json::Object& fleet) {
  if (const auto it = fleet.find("deploy"); it != fleet.end() && it->second.is_object()) {
    json::Object& deploy = it->second.as_object();
    const double total = num_field(deploy, "total");
    deploy["cache_hit_rate"] = total > 0 ? num_field(deploy, "cache_hits") / total : 0.0;
  }
  if (const auto it = fleet.find("backends"); it != fleet.end() && it->second.is_object()) {
    json::Object& backends = it->second.as_object();
    double dispatched = 0;
    for (const auto& [name, value] : backends) {
      if (value.is_object()) dispatched += num_field(value.as_object(), "dispatched");
    }
    backends["spill_rate"] =
        dispatched > 0 ? num_field(backends, "spilled") / dispatched : 0.0;
  }
}

}  // namespace

std::optional<std::string> compute_design_key(const std::string& body,
                                              web::HttpResponse* error) {
  json::Value doc;
  try {
    doc = json::parse(body);
  } catch (const json::JsonError& e) {
    if (error) *error = api_error(400, "bad_json", "request body is not valid JSON", e.what());
    return std::nullopt;
  }

  // Mirror ServingRuntime::handle_deploy exactly: consume a serve-level
  // string "precision", feed the descriptor parser the spelling it knows.
  nn::ServePrecision precision = nn::ServePrecision::kFloat32;
  if (const json::Value* requested = doc.find("precision");
      requested != nullptr && requested->is_string()) {
    if (!nn::parse_serve_precision(requested->as_string(), precision)) {
      if (error) {
        *error = api_error(400, "bad_request",
                           "deploy: precision must be one of float32, int16, int8");
      }
      return std::nullopt;
    }
    doc.as_object()["precision"] = "float32";
  }

  core::NetworkDescriptor descriptor;
  try {
    descriptor = core::NetworkDescriptor::from_json(doc);
  } catch (const core::DescriptorError& e) {
    if (error) *error = api_error(400, "bad_descriptor", e.what());
    return std::nullopt;
  }

  try {
    std::vector<std::uint8_t> weights;
    if (const json::Value* encoded = doc.find("weights_base64"); encoded != nullptr) {
      const auto bytes = util::base64_decode(encoded->as_string());
      if (!bytes) {
        if (error) *error = api_error(400, "bad_request", "weights_base64 is not valid base64");
        return std::nullopt;
      }
      weights = *bytes;
    } else {
      // deploy_random's expansion: the key must match what the worker's
      // registry computes from the same (descriptor, seed).
      const std::uint64_t seed = static_cast<std::uint64_t>(doc.get_int("seed", 1));
      nn::Network net = descriptor.build_network();
      util::Rng rng(seed);
      net.init_weights(rng);
      weights = nn::serialize_weights(net);
    }
    std::string key = core::Framework::cache_key(descriptor, weights);
    if (precision != nn::ServePrecision::kFloat32) {
      key += "-";
      key += nn::serve_precision_name(precision);
    }
    return key;
  } catch (const json::JsonError& e) {
    if (error) *error = api_error(400, "bad_request", e.what());
    return std::nullopt;
  } catch (const std::exception& e) {
    if (error) *error = api_error(400, "bad_request", e.what());
    return std::nullopt;
  }
}

Router::Router(RouterConfig config)
    : config_([&config] {
        if (config.replication == 0) config.replication = 1;
        return config;
      }()),
      ring_(config_.vnodes) {
  faults_.configure_from_env();
  if (!config_.journal_path.empty()) {
    // Open + replay up front so a construction-time config error (unwritable
    // path) fails loudly, not on the first deploy. The replayed bodies wait
    // for recover(): rebuilding the catalog is the caller's explicit step.
    journal_ = std::make_unique<DeployJournal>(config_.journal_path, config_.journal);
    replayed_bodies_ = journal_->open_and_replay();
  }
}

Router::~Router() { stop_probing(); }

void Router::add_worker(const std::string& id, const std::string& host, int port) {
  std::vector<Repair> repairs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (workers_.find(id) == workers_.end()) {
      // Route the router's injector into every worker connection so armed
      // client.* chaos (see web/http_client) breaks the real sockets the
      // failover and health paths depend on.
      WorkerClientConfig worker_config = config_.worker;
      worker_config.client.faults = &faults_;
      workers_.emplace(id, std::make_unique<WorkerClient>(id, host, port, worker_config));
    }
    repairs = restore_worker_locked(id);
  }
  execute_repairs(std::move(repairs));
}

std::size_t Router::recover() {
  if (journal_ == nullptr) return 0;
  std::vector<std::string> bodies;
  std::swap(bodies, replayed_bodies_);
  std::vector<Repair> repairs;
  std::set<std::string> recovered_keys;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& body : bodies) {
      const auto key = compute_design_key(body, nullptr);
      if (!key) {
        // A record that journaled as a valid deploy but no longer parses
        // means the deploy contract changed under the journal; keep serving,
        // loudly.
        LOG_WARN("shard") << "journal record no longer computes a design key; skipped";
        continue;
      }
      CatalogEntry& entry = catalog_[*key];
      entry.deploy_body = body;  // append order: the newest body wins
      recovered_keys.insert(*key);
    }
    // Re-replicate everything the catalog now knows onto the current ring.
    // With no workers yet this plans nothing — add_worker joins repair the
    // newcomers from this same catalog.
    for (auto& [key, entry] : catalog_) {
      Repair repair{key, entry.deploy_body, {}};
      for (const std::string& target : ring_.replicas(key, config_.replication)) {
        if (entry.holders.count(target) == 0) repair.targets.push_back(target);
      }
      if (!repair.targets.empty()) repairs.push_back(std::move(repair));
    }
    journal_recovered_.store(recovered_keys.size(), std::memory_order_relaxed);
  }
  execute_repairs(std::move(repairs));
  LOG_INFO("shard") << format("recovered %zu design(s) from journal %s",
                              recovered_keys.size(), journal_->path().c_str());
  return recovered_keys.size();
}

void Router::attach_supervisor(Supervisor* supervisor) {
  supervisor_ = supervisor;
  if (supervisor_ != nullptr) {
    supervisor_->on_restart([this](const std::string& id) {
      LOG_INFO("shard") << format("worker %s restarted; probing for rejoin", id.c_str());
      probe_now();
    });
  }
}

std::vector<std::string> Router::worker_ids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(workers_.size());
  for (const auto& [id, client] : workers_) out.push_back(id);
  return out;
}

WorkerClient* Router::worker(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Router::ring_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.workers().begin(), ring_.workers().end()};
}

std::vector<std::string> Router::holders(const std::string& design_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = catalog_.find(design_id);
  if (it == catalog_.end()) return {};
  return {it->second.holders.begin(), it->second.holders.end()};
}

std::vector<Router::Repair> Router::drop_worker_locked(const std::string& id) {
  std::vector<Repair> repairs;
  if (!ring_.contains(id)) return repairs;
  ring_.remove(id);
  if (const auto it = workers_.find(id); it != workers_.end()) {
    it->second->drop_connections();
  }
  LOG_INFO("shard") << format("worker %s left the ring (%zu remain)", id.c_str(),
                              ring_.size());
  for (auto& [key, entry] : catalog_) {
    if (entry.holders.erase(id) == 0) continue;
    // This design lost a replica; bring it back to full replication on the
    // workers the shrunken ring now names, minus those already holding it.
    Repair repair{key, entry.deploy_body, {}};
    for (const std::string& target : ring_.replicas(key, config_.replication)) {
      if (entry.holders.count(target) == 0) repair.targets.push_back(target);
    }
    if (!repair.targets.empty()) repairs.push_back(std::move(repair));
  }
  return repairs;
}

std::vector<Router::Repair> Router::restore_worker_locked(const std::string& id) {
  std::vector<Repair> repairs;
  if (ring_.contains(id)) return repairs;
  ring_.add(id);
  LOG_INFO("shard") << format("worker %s joined the ring (%zu total)", id.c_str(),
                              ring_.size());
  // The newcomer receives exactly the designs it is now a replica for — the
  // minimal-churn property: everything else stays where it is.
  for (auto& [key, entry] : catalog_) {
    const auto replicas = ring_.replicas(key, config_.replication);
    if (std::find(replicas.begin(), replicas.end(), id) == replicas.end()) continue;
    if (entry.holders.count(id) != 0) continue;
    repairs.push_back(Repair{key, entry.deploy_body, {id}});
  }
  return repairs;
}

void Router::execute_repairs(std::vector<Repair> repairs) {
  for (const Repair& repair : repairs) {
    for (const std::string& target : repair.targets) {
      WorkerClient* client = worker(target);
      if (client == nullptr) continue;
      const auto response = client->request("POST", kDeployPath, repair.deploy_body);
      if (response && response->status == 200) {
        repairs_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = catalog_.find(repair.design_id); it != catalog_.end()) {
          it->second.holders.insert(target);
        }
      } else {
        LOG_WARN("shard") << format("replication repair of %s to %s failed",
                                    repair.design_id.c_str(), target.c_str());
      }
    }
  }
}

bool Router::journal_deploy(const std::string& body, web::HttpResponse* error) {
  if (journal_ == nullptr) return true;
  try {
    journal_->append(body);
  } catch (const JournalError& e) {
    LOG_ERROR("shard") << e.what();
    if (error != nullptr) {
      *error = api_error(500, "journal_failed",
                         "deploy reached the workers but could not be made durable; retry",
                         e.what());
    }
    return false;
  }
  // Opportunistic compaction: once dead history dominates, rewrite the log
  // as a snapshot of the live catalog. Failure is benign — the uncompacted
  // log is still a correct (just longer) journal.
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live = catalog_.size();
  }
  if (journal_->wants_compaction(live)) {
    std::vector<std::string> bodies;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      bodies.reserve(catalog_.size());
      for (const auto& [key, entry] : catalog_) bodies.push_back(entry.deploy_body);
    }
    try {
      journal_->compact(bodies);
      LOG_INFO("shard") << format("journal compacted to %zu live design(s)", bodies.size());
    } catch (const JournalError& e) {
      LOG_WARN("shard") << format("journal compaction failed (log still valid): %s", e.what());
    }
  }
  return true;
}

void Router::probe_now() {
  std::vector<std::pair<std::string, WorkerClient*>> fleet;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, client] : workers_) fleet.emplace_back(id, client.get());
  }
  std::vector<Repair> repairs;
  for (const auto& [id, client] : fleet) {
    const WorkerState state = client->probe();
    const bool usable = state == WorkerState::kUp || state == WorkerState::kSaturated;
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.contains(id) && !usable) {
      auto planned = drop_worker_locked(id);
      repairs.insert(repairs.end(), std::make_move_iterator(planned.begin()),
                     std::make_move_iterator(planned.end()));
    } else if (!ring_.contains(id) && usable) {
      auto planned = restore_worker_locked(id);
      repairs.insert(repairs.end(), std::make_move_iterator(planned.begin()),
                     std::make_move_iterator(planned.end()));
    }
  }
  execute_repairs(std::move(repairs));
}

void Router::probe_loop() {
  while (probing_.load()) {
    // Supervision rides the probe cadence: reap/restart decisions happen
    // right before the probe that would re-admit a healthy worker.
    if (supervisor_ != nullptr) supervisor_->tick();
    probe_now();
    std::unique_lock<std::mutex> lock(probe_mutex_);
    probe_cv_.wait_for(lock, std::chrono::milliseconds(config_.probe_interval_ms),
                       [this] { return !probing_.load(); });
  }
}

void Router::start_probing() {
  if (config_.probe_interval_ms <= 0) return;
  if (probing_.exchange(true)) return;
  prober_ = std::thread([this] { probe_loop(); });
}

void Router::stop_probing() {
  if (!probing_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::vector<std::string> Router::candidates_locked(const std::string& key) const {
  const auto replicas = ring_.replicas(key, config_.replication);
  std::vector<std::string> usable, draining, down;
  for (const std::string& id : replicas) {
    const auto it = workers_.find(id);
    const WorkerState state =
        it == workers_.end() ? WorkerState::kDown : it->second->state();
    switch (state) {
      case WorkerState::kUp:
      case WorkerState::kSaturated: usable.push_back(id); break;
      case WorkerState::kDraining: draining.push_back(id); break;
      case WorkerState::kDown: down.push_back(id); break;
    }
  }
  std::vector<std::string> out = std::move(usable);
  out.insert(out.end(), draining.begin(), draining.end());
  // A holder the ring no longer names (e.g. its worker just rejoined, or the
  // ring shrank) can still answer — better than failing the request.
  if (const auto it = catalog_.find(key); it != catalog_.end()) {
    for (const std::string& id : it->second.holders) {
      if (std::find(out.begin(), out.end(), id) == out.end() &&
          std::find(down.begin(), down.end(), id) == down.end()) {
        out.push_back(id);
      }
    }
  }
  // Workers believed down go last: the request may be what proves recovery.
  out.insert(out.end(), down.begin(), down.end());
  return out;
}

web::HttpResponse Router::handle_deploy(const web::HttpRequest& request) {
  web::HttpResponse key_error;
  const auto key = compute_design_key(request.body, &key_error);
  if (!key) return key_error;

  std::vector<std::string> targets;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    targets = ring_.replicas(*key, config_.replication);
  }
  if (targets.empty()) {
    return api_error(503, "no_workers", "shard router has no workers on the ring");
  }

  std::optional<web::HttpResponse> success;
  std::optional<web::HttpResponse> failure;
  std::vector<std::string> holders;
  for (const std::string& id : targets) {
    WorkerClient* client = worker(id);
    if (client == nullptr) continue;
    const auto response = client->request("POST", kDeployPath, request.body);
    if (!response) continue;
    if (response->status == 200) {
      holders.push_back(id);
      if (!success) {
        // Sanity-check the router's local key computation against the
        // worker's registry; a mismatch means routing and placement diverge.
        try {
          const json::Value doc = json::parse(response->body);
          if (const json::Value* id_field = doc.find("design_id");
              id_field != nullptr && id_field->is_string() &&
              id_field->as_string() != *key) {
            key_mismatches_.fetch_add(1, std::memory_order_relaxed);
            LOG_WARN("shard") << format("design key mismatch: router=%s worker=%s",
                                        key->c_str(), id_field->as_string().c_str());
          }
        } catch (const json::JsonError&) {
        }
        success = response;
      }
    } else if (!failure) {
      failure = response;
    }
  }

  if (holders.empty()) {
    if (failure) return *failure;  // the worker's own 4xx/5xx, verbatim
    return api_error(503, "no_workers", "no worker accepted the deploy");
  }

  bool new_history = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CatalogEntry& entry = catalog_[*key];
    // Only bodies that change the catalog are history; an idempotent
    // redeploy must not grow the journal.
    new_history = entry.deploy_body != request.body;
    entry.deploy_body = request.body;
    for (const std::string& id : holders) entry.holders.insert(id);
  }
  if (new_history) {
    // Durability before the ack: a 200 means a router restart will still
    // know this design. If the journal cannot take the record the deploy
    // fails, even though workers accepted it — the client's retry is cheap
    // (worker deploy caches hit), a silently volatile ack is not.
    web::HttpResponse journal_error;
    if (!journal_deploy(request.body, &journal_error)) return journal_error;
  }

  web::HttpResponse response = *success;
  response.headers["X-Shard-Workers"] = util::join(holders, ",");
  response.headers["X-Shard-Replication"] = std::to_string(holders.size());
  return response;
}

web::HttpResponse Router::handle_predict(const web::HttpRequest& request) {
  std::string design_id;
  try {
    const json::Value doc = json::parse(request.body);
    const json::Value* id = doc.find("design_id");
    if (id == nullptr || !id->is_string()) {
      return api_error(400, "bad_request", "predict: design_id is required (deploy first)");
    }
    design_id = id->as_string();
  } catch (const json::JsonError& e) {
    return api_error(400, "bad_json", "request body is not valid JSON", e.what());
  }

  std::vector<std::string> candidates;
  std::string catalog_body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    candidates = candidates_locked(design_id);
    if (const auto it = catalog_.find(design_id); it != catalog_.end()) {
      catalog_body = it->second.deploy_body;
    }
  }
  if (candidates.empty()) {
    return api_error(503, "no_workers", "shard router has no workers on the ring");
  }

  // Deadline budget is fleet-wide, not per-attempt: each failover forwards
  // only what remains, and once the budget is spent the router answers 504
  // itself instead of letting a third replica burn the full window again.
  std::map<std::string, std::string> forward;
  std::optional<long long> deadline_budget_ms;
  const auto arrival = std::chrono::steady_clock::now();
  if (const auto deadline = request.headers.find("x-deadline-ms");
      deadline != request.headers.end()) {
    char* end = nullptr;
    const long long parsed = std::strtoll(deadline->second.c_str(), &end, 10);
    if (end != deadline->second.c_str() && parsed > 0) {
      deadline_budget_ms = parsed;
    } else {
      // Unparseable (or explicit 0 = unlimited): forward verbatim, the
      // worker owns the interpretation exactly as before.
      forward["X-Deadline-Ms"] = deadline->second;
    }
  }

  std::optional<web::HttpResponse> last_error;
  std::vector<Repair> pending_repairs;
  int attempts = 0;
  std::optional<web::HttpResponse> final;
  std::string served_by;

  for (const std::string& id : candidates) {
    WorkerClient* client = worker(id);
    if (client == nullptr) continue;
    if (deadline_budget_ms) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - arrival)
                               .count();
      const long long remaining = *deadline_budget_ms - static_cast<long long>(elapsed);
      if (remaining <= 0) {
        deadline_rejects_.fetch_add(1, std::memory_order_relaxed);
        auto expired = api_error(504, "deadline_exceeded",
                                 format("deadline of %lld ms spent after %d attempt(s)",
                                        *deadline_budget_ms, attempts));
        expired.headers["X-Shard-Attempts"] = std::to_string(attempts);
        return expired;
      }
      forward["X-Deadline-Ms"] = std::to_string(remaining);
    }
    ++attempts;
    if (attempts > 1) failovers_.fetch_add(1, std::memory_order_relaxed);

    if (faults_.enabled() && faults_.should_fail("shard.worker")) {
      // Simulated transport failure on this worker: fail over like a real one
      // (without poisoning the worker's actual health state).
      injected_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    auto response = client->request("POST", kPredictPath, request.body, forward);
    if (!response) {
      // Real transport failure. If this pushed the worker over its failure
      // threshold, take it off the ring now and plan re-replication — the
      // remap happens on the request that discovered the death, not a probe
      // cycle later.
      if (!client->usable()) {
        std::lock_guard<std::mutex> lock(mutex_);
        auto planned = drop_worker_locked(id);
        pending_repairs.insert(pending_repairs.end(),
                               std::make_move_iterator(planned.begin()),
                               std::make_move_iterator(planned.end()));
      }
      continue;
    }

    if (response->status == 404 && !catalog_body.empty()) {
      // The ring says this worker owns the design but its registry lost it
      // (restart, LRU eviction). Replay the catalogued deploy and retry once.
      const auto deployed = client->request("POST", kDeployPath, catalog_body);
      if (deployed && deployed->status == 200) {
        repairs_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(mutex_);
          if (const auto it = catalog_.find(design_id); it != catalog_.end()) {
            it->second.holders.insert(id);
          }
        }
        response = client->request("POST", kPredictPath, request.body, forward);
        if (!response) continue;
      }
    }

    const int status = response->status;
    if (status == 429 || status == 500 || status == 503) {
      // This worker cannot take the request right now; a replica might.
      last_error = std::move(response);
      continue;
    }
    final = std::move(response);
    served_by = id;
    break;
  }

  execute_repairs(std::move(pending_repairs));

  if (!final) {
    if (last_error) {
      last_error->headers["X-Shard-Attempts"] = std::to_string(attempts);
      return *last_error;
    }
    return api_error(503, "no_workers",
                     format("no worker could serve design %s", design_id.c_str()));
  }
  // Body passes through byte-for-byte: routing must never change a
  // prediction. Attribution rides in headers only.
  final->headers["X-Shard-Worker"] = served_by;
  final->headers["X-Shard-Attempts"] = std::to_string(attempts);
  return *final;
}

web::HttpResponse Router::handle_designs(const web::HttpRequest&) {
  std::vector<std::pair<std::string, WorkerClient*>> fleet;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, client] : workers_) fleet.emplace_back(id, client.get());
  }

  // Dedup by design_id across workers; each summary gains the holder list.
  std::vector<std::string> order;
  std::map<std::string, json::Value> designs;
  std::map<std::string, json::Array> held_by;
  json::Object per_worker;
  for (const auto& [id, client] : fleet) {
    const auto response = client->request("GET", kDesignsPath);
    if (!response || response->status != 200) continue;
    try {
      const json::Value doc = json::parse(response->body);
      per_worker[id] = json::Value(static_cast<std::size_t>(doc.get_int("resident", 0)));
      const json::Value* array = doc.find("designs");
      if (array == nullptr || !array->is_array()) continue;
      for (const json::Value& design : array->as_array()) {
        const json::Value* design_id = design.find("design_id");
        if (design_id == nullptr || !design_id->is_string()) continue;
        const std::string& key = design_id->as_string();
        if (designs.find(key) == designs.end()) {
          designs[key] = design;
          order.push_back(key);
        }
        held_by[key].push_back(id);
      }
    } catch (const json::JsonError&) {
    }
  }

  json::Array merged;
  for (const std::string& key : order) {
    json::Value design = designs[key];
    design.as_object()["workers"] = std::move(held_by[key]);
    merged.push_back(std::move(design));
  }
  json::Object body;
  body["designs"] = std::move(merged);
  body["resident"] = order.size();
  body["workers"] = std::move(per_worker);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body["catalog"] = catalog_.size();
    body["replication"] = config_.replication;
  }
  return web::api_ok(std::move(body));
}

web::HttpResponse Router::handle_metrics(const web::HttpRequest&) {
  std::vector<std::pair<std::string, WorkerClient*>> fleet;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, client] : workers_) fleet.emplace_back(id, client.get());
  }

  json::Object workers_block;
  std::optional<json::Value> merged;
  for (const auto& [id, client] : fleet) {
    const auto response = client->request("GET", kMetricsPath);
    if (!response || response->status != 200) continue;
    try {
      json::Value doc = json::parse(response->body);
      if (!merged) {
        merged = doc;
      } else {
        merge_value(*merged, doc);
      }
      workers_block[id] = std::move(doc);
    } catch (const json::JsonError&) {
    }
  }

  json::Object body;
  if (merged && merged->is_object()) {
    fix_fleet_rates(merged->as_object());
    body["fleet"] = std::move(*merged);
  } else {
    body["fleet"] = json::Object{};
  }
  body["workers"] = std::move(workers_block);

  json::Object router;
  router["failovers"] = failovers();
  router["repairs"] = repairs();
  router["key_mismatches"] = key_mismatches();
  router["injected_failures"] = injected_failures();
  router["deadline_rejects"] = deadline_rejects();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    router["catalog"] = catalog_.size();
    router["replication"] = config_.replication;
    json::Array on_ring;
    for (const std::string& id : ring_.workers()) on_ring.push_back(id);
    router["ring"] = std::move(on_ring);
  }
  if (journal_ != nullptr) {
    router["journal"] = journal_->to_json();
    // The drill gate reads this flat field: 0 == nothing was lost at replay.
    router["journal_truncated_records"] = journal_->truncated_records();
    router["journal_recovered"] = journal_recovered_.load(std::memory_order_relaxed);
  }
  if (supervisor_ != nullptr) router["supervisor"] = supervisor_->to_json();
  if (faults_.enabled()) router["faults"] = faults_.to_json();
  body["router"] = std::move(router);
  return {200, "application/json", json::Value(std::move(body)).dump(), {}};
}

web::HttpResponse Router::handle_readyz(const web::HttpRequest&) {
  std::vector<std::pair<std::string, WorkerClient*>> fleet;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, client] : workers_) fleet.emplace_back(id, client.get());
  }

  json::Object workers_block;
  std::size_t answering = 0;
  std::size_t degraded = 0;
  for (const auto& [id, client] : fleet) {
    json::Object one;
    const auto response = client->request("GET", kReadyzPath);
    if (response) {
      ++answering;
      try {
        one["readyz"] = json::parse(response->body);
      } catch (const json::JsonError&) {
        one["readyz"] = json::Value(nullptr);
      }
    } else {
      one["readyz"] = json::Value(nullptr);
    }
    const WorkerState state = client->state();
    if (state != WorkerState::kUp) ++degraded;
    one["state"] = std::string(worker_state_name(state));
    one["consecutive_failures"] = client->consecutive_failures();
    one["requests"] = client->requests();
    one["transport_failures"] = client->transport_failures();
    workers_block[id] = std::move(one);
  }

  json::Object body;
  body["workers"] = std::move(workers_block);
  std::size_t under_replicated = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    json::Object ring;
    json::Array on_ring;
    for (const std::string& id : ring_.workers()) on_ring.push_back(id);
    ring["workers"] = std::move(on_ring);
    ring["replication"] = config_.replication;
    ring["vnodes"] = config_.vnodes;
    body["ring"] = std::move(ring);

    const std::size_t expected = std::min(config_.replication, std::max<std::size_t>(
                                                                   ring_.size(), 1));
    for (const auto& [key, entry] : catalog_) {
      if (entry.holders.size() < expected) ++under_replicated;
    }
    json::Object designs;
    designs["total"] = catalog_.size();
    designs["under_replicated"] = under_replicated;
    body["designs"] = std::move(designs);
  }
  std::uint64_t permanently_down = 0;
  if (supervisor_ != nullptr) {
    // Slot states (running / backoff / dead) — a permanently-down worker is
    // visible here, not just as one more kDown in the probe view.
    body["supervisor"] = supervisor_->to_json();
    permanently_down = supervisor_->permanently_down();
  }

  const char* status = answering == 0 ? "unavailable"
                       : (degraded != 0 || under_replicated != 0 || permanently_down != 0)
                           ? "degraded"
                           : "ready";
  body["status"] = std::string(status);
  const int http_status = answering == 0 ? 503 : 200;
  return {http_status, "application/json", json::Value(std::move(body)).dump(), {}};
}

void install_router_api(web::HttpServer& server, Router& router) {
  web::route_api(server, "POST", "deploy",
                 [&router](const web::HttpRequest& r) { return router.handle_deploy(r); });
  web::route_api(server, "POST", "predict",
                 [&router](const web::HttpRequest& r) { return router.handle_predict(r); });
  web::route_api(server, "GET", "designs",
                 [&router](const web::HttpRequest& r) { return router.handle_designs(r); });
  web::route_api(server, "GET", "metrics",
                 [&router](const web::HttpRequest& r) { return router.handle_metrics(r); });
  web::route_api(server, "GET", "readyz",
                 [&router](const web::HttpRequest& r) { return router.handle_readyz(r); });
}

}  // namespace cnn2fpga::serve::shard
