#include "serve/shard/worker_client.hpp"

#include "json/json.hpp"

namespace cnn2fpga::serve::shard {

const char* worker_state_name(WorkerState state) {
  switch (state) {
    case WorkerState::kUp: return "up";
    case WorkerState::kSaturated: return "saturated";
    case WorkerState::kDraining: return "draining";
    case WorkerState::kDown: return "down";
  }
  return "unknown";
}

WorkerClient::WorkerClient(std::string id, std::string host, int port,
                           WorkerClientConfig config)
    : id_(std::move(id)), host_(std::move(host)), port_(port), config_([&config] {
        config.client.keep_alive = true;  // the pool exists to persist connections
        return config;
      }()) {}

std::unique_ptr<web::HttpClient> WorkerClient::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_.empty()) {
      auto client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  return std::make_unique<web::HttpClient>(host_, port_, config_.client);
}

void WorkerClient::release(std::unique_ptr<web::HttpClient> client) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_.size() < config_.max_pool) pool_.push_back(std::move(client));
}

void WorkerClient::record_success(WorkerState observed) {
  std::lock_guard<std::mutex> lock(mutex_);
  failures_ = 0;
  state_ = observed;
}

void WorkerClient::record_failure() {
  transport_failures_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  ++failures_;
  if (failures_ >= config_.down_after_failures) state_ = WorkerState::kDown;
}

std::optional<web::HttpResponse> WorkerClient::request(
    const std::string& method, const std::string& path, const std::string& body,
    const std::map<std::string, std::string>& headers) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto client = acquire();
  auto response = client->request(method, path, body, headers);
  if (!response) {
    // Transport failure (HttpClient already burned its one stale-socket
    // retry). Drop the connection rather than pooling a dead socket.
    record_failure();
    return std::nullopt;
  }
  // Any parsed response proves the worker process is alive. Preserve a
  // probe-observed draining/saturated state — a 200 on the predict path does
  // not contradict "draining"; only the next probe should clear it.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failures_ = 0;
    if (state_ == WorkerState::kDown) state_ = WorkerState::kUp;
  }
  release(std::move(client));
  return response;
}

WorkerState WorkerClient::probe() {
  probes_.fetch_add(1, std::memory_order_relaxed);
  auto client = acquire();
  auto response = client->request("GET", "/api/v1/readyz");
  if (!response) {
    record_failure();
    return state();
  }
  WorkerState observed = WorkerState::kUp;
  try {
    const json::Value doc = json::parse(response->body);
    if (const json::Value* status = doc.find("status")) {
      const std::string text = status->is_string() ? status->as_string() : "";
      if (text == "draining") {
        observed = WorkerState::kDraining;
      } else if (text == "saturated") {
        observed = WorkerState::kSaturated;
      }
    }
  } catch (const json::JsonError&) {
    // An unparsable readyz body still proves liveness; treat as plain up.
  }
  record_success(observed);
  release(std::move(client));
  return observed;
}

WorkerState WorkerClient::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

bool WorkerClient::usable() const {
  const WorkerState s = state();
  return s == WorkerState::kUp || s == WorkerState::kSaturated;
}

int WorkerClient::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

void WorkerClient::drop_connections() {
  std::lock_guard<std::mutex> lock(mutex_);
  pool_.clear();
}

}  // namespace cnn2fpga::serve::shard
