// Durable deploy journal for the shard router.
//
// The router's deploy catalog is the fleet's source of truth: it is what
// repair replays to heal an under-replicated design. Before this journal it
// lived only in memory, so a router crash silently forgot every deployed
// design. DeployJournal makes the catalog crash-safe with the smallest
// possible durability mechanism — an append-only record log:
//
//   file   := magic record*          magic  := "CJNL0001" (8 bytes)
//   record := length crc32 payload   length := u32 LE payload byte count
//                                    crc32  := u32 LE IEEE CRC of payload
//
// Each record is one verbatim deploy body (the same bytes the router
// replicates to workers). Append order is deploy order; replay rebuilds the
// catalog exactly, and the existing catalog-repair path re-replicates to the
// fleet — the journal never needs to know what a worker is.
//
// Torn tails: a crash mid-append leaves a half-written record. Replay accepts
// the longest valid prefix, truncates the file back to it, and reports the
// cut through truncated_records()/truncated_bytes() — a recovered router can
// see (and export to /api/v1/metrics) that the tail of history was lost
// rather than silently serving a shorter past. Anything after the first bad
// record is unreachable (length-prefixed framing has no resync point), so one
// flipped byte costs the suffix; the fsync policy bounds how much.
//
// Fsync policy: kEveryRecord (default) makes an acked deploy survive power
// loss at one fsync per deploy; kInterval amortizes over N appends (bounded
// loss window); kNever leaves flushing to the kernel (test speed). Compaction
// rewrites the log as a snapshot of the live catalog via temp file + fsync +
// rename, so a crash mid-compaction leaves either the old or the new journal,
// never a hybrid.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace cnn2fpga::serve::shard {

/// Thrown when the journal cannot uphold its durability contract (open or
/// write failure). A deploy whose journal append throws must NOT be acked.
struct JournalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class FsyncPolicy {
  kNever,        ///< kernel decides; fastest, loses the page cache on power cut
  kEveryRecord,  ///< fsync per append; an acked deploy survives anything
  kInterval,     ///< fsync every `fsync_interval` appends (bounded loss window)
};

struct JournalConfig {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  std::uint64_t fsync_interval = 16;  ///< appends per fsync (kInterval only)
  /// wants_compaction(): recommend compacting once the log holds more than
  /// 2 * live + slack records — enough history churn that a snapshot halves
  /// replay work, rare enough that compaction cost stays negligible.
  std::uint64_t compact_slack = 8;
  /// Replay rejects a record claiming a payload larger than this as corrupt
  /// (a torn length field can claim anything up to 4 GiB).
  std::uint64_t max_record_bytes = 64u << 20;
};

class DeployJournal {
 public:
  explicit DeployJournal(std::string path, JournalConfig config = {});
  ~DeployJournal();
  DeployJournal(const DeployJournal&) = delete;
  DeployJournal& operator=(const DeployJournal&) = delete;

  /// Open (creating if absent), validate, and replay the journal. Returns
  /// every intact record in append order. A torn or corrupt tail is cut off
  /// the file and reported via truncated_records()/truncated_bytes(); replay
  /// itself never throws on corruption — only on I/O failure (unopenable
  /// path, failed truncate). Leaves the journal open for append().
  std::vector<std::string> open_and_replay();

  /// Durably append one record (deploy body). Honors the fsync policy.
  /// Throws JournalError if the bytes cannot be written — the caller must
  /// fail the deploy rather than ack something the journal did not keep.
  void append(const std::string& record);

  /// Atomically replace the log with a snapshot holding exactly `records`
  /// (temp file + fsync + rename). Superseded history disappears; replay
  /// cost becomes proportional to the live set.
  void compact(const std::vector<std::string>& records);

  /// True when the log has accumulated enough dead history over `live`
  /// records that compact() is worth it (see JournalConfig::compact_slack).
  bool wants_compaction(std::uint64_t live_records) const;

  const std::string& path() const { return path_; }
  std::uint64_t records() const;           ///< records currently in the file
  std::uint64_t bytes() const;             ///< file size in bytes
  std::uint64_t appends() const;           ///< append() calls this process
  std::uint64_t fsyncs() const;            ///< fsync(2) calls issued
  std::uint64_t compactions() const;       ///< compact() calls completed
  std::uint64_t truncated_records() const; ///< bad records cut at replay
  std::uint64_t truncated_bytes() const;   ///< bytes cut at replay

  /// All counters + path + fsync policy, for /api/v1/metrics.
  json::Value to_json() const;

 private:
  void maybe_fsync_locked();
  void close_locked();

  const std::string path_;
  const JournalConfig config_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t truncated_records_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t appends_since_fsync_ = 0;
};

}  // namespace cnn2fpga::serve::shard
