#include "serve/shard/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve::shard {

using cnn2fpga::util::format;

namespace {

constexpr char kMagic[8] = {'C', 'J', 'N', 'L', '0', '0', '0', '1'};
constexpr std::size_t kMagicSize = sizeof(kMagic);
constexpr std::size_t kHeaderSize = 8;  // u32 length + u32 crc32, little-endian

std::uint32_t read_u32_le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_u32_le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xffu));
  out.push_back(static_cast<char>((value >> 8) & 0xffu));
  out.push_back(static_cast<char>((value >> 16) & 0xffu));
  out.push_back(static_cast<char>((value >> 24) & 0xffu));
}

std::string encode_record(const std::string& record) {
  std::string out;
  out.reserve(kHeaderSize + record.size());
  write_u32_le(out, static_cast<std::uint32_t>(record.size()));
  write_u32_le(out, util::crc32(record));
  out += record;
  return out;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort directory fsync so a rename/create survives power loss. Not
/// all filesystems allow fsync on a directory fd; failure is non-fatal.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kEveryRecord: return "every_record";
    case FsyncPolicy::kInterval: return "interval";
  }
  return "?";
}

}  // namespace

DeployJournal::DeployJournal(std::string path, JournalConfig config)
    : path_(std::move(path)), config_(config) {}

DeployJournal::~DeployJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  close_locked();
}

void DeployJournal::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::string> DeployJournal::open_and_replay() {
  std::lock_guard<std::mutex> lock(mutex_);
  close_locked();

  int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    throw JournalError(format("journal %s: open failed: %s", path_.c_str(),
                              std::strerror(errno)));
  }

  // Slurp the whole file: a journal is the live design set plus bounded
  // churn (compaction keeps it that way), not an unbounded history.
  std::string data;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0) data.append(buf, static_cast<std::size_t>(n));
    if (n < 0) {
      ::close(fd);
      throw JournalError(format("journal %s: read failed: %s", path_.c_str(),
                                std::strerror(errno)));
    }
  }

  std::vector<std::string> replayed;
  std::size_t good = 0;  // byte offset of the end of the valid prefix
  bool corrupt_tail = false;

  if (data.empty()) {
    // Fresh journal: stamp the magic so every non-empty journal is
    // self-identifying.
    if (!write_all(fd, kMagic, kMagicSize)) {
      ::close(fd);
      throw JournalError(format("journal %s: failed to write header", path_.c_str()));
    }
    ::fsync(fd);
    ++fsyncs_;
    good = kMagicSize;
  } else if (data.size() < kMagicSize ||
             std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    // Not our file (or a torn first write). Refuse to guess at the contents:
    // everything is a truncated tail over an empty valid prefix.
    corrupt_tail = true;
    good = 0;
  } else {
    std::size_t offset = kMagicSize;
    good = offset;
    while (offset < data.size()) {
      if (data.size() - offset < kHeaderSize) {
        corrupt_tail = true;  // torn mid-header
        break;
      }
      const auto* p = reinterpret_cast<const unsigned char*>(data.data() + offset);
      const std::uint32_t length = read_u32_le(p);
      const std::uint32_t crc = read_u32_le(p + 4);
      if (length > config_.max_record_bytes ||
          data.size() - offset - kHeaderSize < length) {
        corrupt_tail = true;  // absurd length or torn mid-payload
        break;
      }
      const std::string_view payload(data.data() + offset + kHeaderSize, length);
      if (util::crc32(payload.data(), payload.size()) != crc) {
        corrupt_tail = true;  // bit rot / torn payload overwritten by header
        break;
      }
      replayed.emplace_back(payload);
      offset += kHeaderSize + length;
      good = offset;
    }
  }

  if (corrupt_tail) {
    const std::uint64_t cut = data.size() - good;
    // One truncation event; the garbage tail has no record boundaries to
    // count, so the record counter reports events, the byte counter extent.
    truncated_records_ += 1;
    truncated_bytes_ += cut;
    LOG_WARN("journal") << format("%s: cut %llu corrupt tail byte(s) at offset %zu, %zu record(s) recovered",
                                  path_.c_str(), static_cast<unsigned long long>(cut), good,
                                  replayed.size());
    if (good < kMagicSize) {
      // The header itself was unreadable: start the file over.
      if (::ftruncate(fd, 0) != 0 || ::lseek(fd, 0, SEEK_SET) < 0 ||
          !write_all(fd, kMagic, kMagicSize)) {
        ::close(fd);
        throw JournalError(format("journal %s: failed to reset corrupt file", path_.c_str()));
      }
      good = kMagicSize;
    } else if (::ftruncate(fd, static_cast<off_t>(good)) != 0) {
      ::close(fd);
      throw JournalError(format("journal %s: failed to truncate torn tail", path_.c_str()));
    }
    ::fsync(fd);
    ++fsyncs_;
  }

  if (::lseek(fd, static_cast<off_t>(good), SEEK_SET) < 0) {
    ::close(fd);
    throw JournalError(format("journal %s: seek failed", path_.c_str()));
  }
  fd_ = fd;
  records_ = replayed.size();
  bytes_ = good;
  appends_since_fsync_ = 0;
  return replayed;
}

void DeployJournal::maybe_fsync_locked() {
  bool sync = false;
  switch (config_.fsync) {
    case FsyncPolicy::kNever: break;
    case FsyncPolicy::kEveryRecord: sync = true; break;
    case FsyncPolicy::kInterval:
      sync = ++appends_since_fsync_ >= (config_.fsync_interval == 0 ? 1 : config_.fsync_interval);
      break;
  }
  if (sync) {
    ::fsync(fd_);
    ++fsyncs_;
    appends_since_fsync_ = 0;
  }
}

void DeployJournal::append(const std::string& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) throw JournalError(format("journal %s: append before open", path_.c_str()));
  const std::string encoded = encode_record(record);
  if (!write_all(fd_, encoded.data(), encoded.size())) {
    throw JournalError(format("journal %s: append failed: %s", path_.c_str(),
                              std::strerror(errno)));
  }
  ++records_;
  ++appends_;
  bytes_ += encoded.size();
  maybe_fsync_locked();
}

void DeployJournal::compact(const std::vector<std::string>& records) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) throw JournalError(format("journal %s: compact before open", path_.c_str()));
  const std::string tmp_path = path_ + ".compact.tmp";
  const int tmp = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp < 0) {
    throw JournalError(format("journal %s: compact temp open failed: %s", path_.c_str(),
                              std::strerror(errno)));
  }
  std::string snapshot(kMagic, kMagicSize);
  for (const std::string& record : records) snapshot += encode_record(record);
  if (!write_all(tmp, snapshot.data(), snapshot.size()) || ::fsync(tmp) != 0) {
    ::close(tmp);
    ::unlink(tmp_path.c_str());
    throw JournalError(format("journal %s: compact write failed", path_.c_str()));
  }
  ++fsyncs_;
  ::close(tmp);
  // rename(2) is the atomicity point: readers see the old journal or the new
  // snapshot, never a partial rewrite.
  if (::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    throw JournalError(format("journal %s: compact rename failed: %s", path_.c_str(),
                              std::strerror(errno)));
  }
  fsync_parent_dir(path_);
  close_locked();
  const int fd = ::open(path_.c_str(), O_RDWR, 0644);
  if (fd < 0 || ::lseek(fd, 0, SEEK_END) < 0) {
    if (fd >= 0) ::close(fd);
    throw JournalError(format("journal %s: reopen after compact failed", path_.c_str()));
  }
  fd_ = fd;
  records_ = records.size();
  bytes_ = snapshot.size();
  ++compactions_;
  appends_since_fsync_ = 0;
}

bool DeployJournal::wants_compaction(std::uint64_t live_records) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_ > 2 * live_records + config_.compact_slack;
}

std::uint64_t DeployJournal::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}
std::uint64_t DeployJournal::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}
std::uint64_t DeployJournal::appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}
std::uint64_t DeployJournal::fsyncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsyncs_;
}
std::uint64_t DeployJournal::compactions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compactions_;
}
std::uint64_t DeployJournal::truncated_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return truncated_records_;
}
std::uint64_t DeployJournal::truncated_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return truncated_bytes_;
}

json::Value DeployJournal::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Object out;
  out["path"] = path_;
  out["fsync_policy"] = fsync_policy_name(config_.fsync);
  out["records"] = records_;
  out["bytes"] = bytes_;
  out["appends"] = appends_;
  out["fsyncs"] = fsyncs_;
  out["compactions"] = compactions_;
  out["truncated_records"] = truncated_records_;
  out["truncated_bytes"] = truncated_bytes_;
  return json::Value(std::move(out));
}

}  // namespace cnn2fpga::serve::shard
