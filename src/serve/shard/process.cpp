#include "serve/shard/process.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "web/http_client.hpp"

namespace cnn2fpga::serve::shard {

namespace {
// Every live control-pipe write end in this process. A fork inherits ALL of
// them, not just the new child's — and a sibling holding another worker's
// write end keeps that worker's pipe open forever, so closing the parent's
// copy would never deliver the EOF shutdown signal. Each fresh child
// therefore closes every previously registered write end first thing.
std::mutex g_control_mutex;
std::vector<int> g_control_fds;

void register_control_fd(int fd) {
  std::lock_guard<std::mutex> lock(g_control_mutex);
  g_control_fds.push_back(fd);
}

void unregister_control_fd(int fd) {
  std::lock_guard<std::mutex> lock(g_control_mutex);
  g_control_fds.erase(std::remove(g_control_fds.begin(), g_control_fds.end(), fd),
                      g_control_fds.end());
}

void close_inherited_control_fds() {
  // Post-fork, pre-threads: the registry is a plain copy from the parent.
  for (const int fd : g_control_fds) ::close(fd);
  g_control_fds.clear();
}
}  // namespace

int reserve_local_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  int port = 0;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = static_cast<int>(ntohs(addr.sin_port));
  }
  ::close(fd);
  return port;
}

ReservedPort::~ReservedPort() {
  if (fd_ >= 0) ::close(fd_);
}

ReservedPort::ReservedPort(ReservedPort&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ReservedPort& ReservedPort::operator=(ReservedPort&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

ReservedPort ReservedPort::reserve() {
  ReservedPort reserved;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reserved;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // Both members of a reuseport group must opt in; the worker's listening
  // socket sets it too (web::ServerConfig.reuse_port).
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reserved;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return reserved;
  }
  reserved.fd_ = fd;
  reserved.port_ = static_cast<int>(ntohs(addr.sin_port));
  return reserved;
}

WorkerProcess::~WorkerProcess() { stop(); }

WorkerProcess::WorkerProcess(WorkerProcess&& other) noexcept
    : pid_(other.pid_), control_fd_(other.control_fd_), port_(other.port_) {
  other.pid_ = -1;
  other.control_fd_ = -1;
  other.port_ = 0;
}

WorkerProcess& WorkerProcess::operator=(WorkerProcess&& other) noexcept {
  if (this != &other) {
    stop();
    pid_ = other.pid_;
    control_fd_ = other.control_fd_;
    port_ = other.port_;
    other.pid_ = -1;
    other.control_fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

bool WorkerProcess::spawn(int port, const ChildMain& child_main) {
  if (running()) return false;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: keep only the read end; EOF on it (parent closed its write end,
    // or died) is the shutdown signal. Drop the write ends inherited from
    // every sibling worker — holding them would block THEIR shutdown EOFs.
    ::close(pipe_fds[1]);
    close_inherited_control_fds();
    int code = 1;
    try {
      code = child_main(port, pipe_fds[0]);
    } catch (...) {
      code = 1;
    }
    ::_exit(code);
  }
  ::close(pipe_fds[0]);
  register_control_fd(pipe_fds[1]);
  pid_ = pid;
  control_fd_ = pipe_fds[1];
  port_ = port;
  return true;
}

void WorkerProcess::reap() {
  if (pid_ <= 0) return;
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
}

bool WorkerProcess::poll_alive() {
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t done = ::waitpid(pid_, &status, WNOHANG);
  if (done == 0) return true;  // still running
  // Exited (or ECHILD — someone else reaped it): either way the process is
  // gone. Drop the control fd so the registry doesn't accumulate dead ends.
  pid_ = -1;
  if (control_fd_ >= 0) {
    unregister_control_fd(control_fd_);
    ::close(control_fd_);
    control_fd_ = -1;
  }
  return false;
}

void WorkerProcess::stop() {
  if (control_fd_ >= 0) {
    unregister_control_fd(control_fd_);
    ::close(control_fd_);
    control_fd_ = -1;
  }
  reap();
}

void WorkerProcess::kill_now() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  if (control_fd_ >= 0) {
    unregister_control_fd(control_fd_);
    ::close(control_fd_);
    control_fd_ = -1;
  }
  reap();
}

bool wait_until_ready(int port, int timeout_ms) {
  web::ClientConfig config;
  config.connect_timeout_ms = 250;
  config.read_timeout_ms = 1000;
  config.write_timeout_ms = 1000;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    web::HttpClient client("127.0.0.1", port, config);
    if (client.request("GET", "/api/v1/readyz")) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace cnn2fpga::serve::shard
