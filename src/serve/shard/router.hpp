// Shard router: consistent-hash front door for a fleet of worker processes.
//
// One router process owns the public /api/v1 surface and fans requests out to
// N single-process serving runtimes (workers) over persistent local HTTP
// connections. Placement is content-addressed: the router computes the same
// design key the workers' registries compute (Framework::cache_key over the
// descriptor + expanded weights, plus the serving-precision suffix) and hashes
// it onto a consistent-hash ring (shard/ring.hpp), so
//
//   * a deploy lands on `replication` distinct workers (hot designs survive a
//     single worker death),
//   * every predict for a design goes to the workers that hold it — the
//     workers' own deploy caches, weight packs and measured-latency state stay
//     warm per shard instead of being duplicated everywhere,
//   * a worker joining or leaving moves only the keys whose ring ownership
//     changed (~K/N of K keys), not the whole catalog.
//
// Failure handling reuses the per-worker signals the single-process runtime
// already exports: a `readyz` probe that reports draining/saturated, or
// repeated transport failures, take a worker out of the ring; predicts that
// hit a dead worker fail over to the next replica in ring order; the router
// re-replicates the dead worker's designs from its catalog (it keeps every
// deploy body verbatim, so repair is a replay, not a state transfer). A
// recovered worker re-enters the ring and receives only the designs it is now
// a replica for — no full rebalance.
//
// Crash safety (PR 9): with RouterConfig.journal_path set, the deploy catalog
// is durable — every accepted deploy is journaled before it is acked
// (shard/journal.hpp) and a restarted router recover()s its exact pre-crash
// design set, re-replicating through the same repair path used for worker
// joins. attach_supervisor() lets the prober thread also restart crashed
// worker processes (shard/supervisor.hpp) so the fleet heals in both
// directions: routers forget nothing, workers come back.
//
// The router never interprets worker responses on the hot path: a predict
// response body is passed through byte-for-byte (routing must never change a
// prediction), with attribution added in `X-Shard-Worker` / `X-Shard-Attempts`
// response headers. Fleet observability is where bodies are merged:
// /api/v1/metrics sums counters and log2 histogram buckets across workers
// (exact, because workers export raw buckets), /api/v1/readyz reports
// per-worker state plus fleet-level replication health.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/fault.hpp"
#include "serve/shard/journal.hpp"
#include "serve/shard/ring.hpp"
#include "serve/shard/supervisor.hpp"
#include "serve/shard/worker_client.hpp"
#include "web/http.hpp"

namespace cnn2fpga::serve::shard {

struct RouterConfig {
  std::size_t replication = 2;   ///< distinct workers per design (clamped to fleet size)
  std::size_t vnodes = 64;       ///< ring virtual nodes per worker
  WorkerClientConfig worker;     ///< per-worker connection pool + health thresholds
  int probe_interval_ms = 200;   ///< background health-probe cadence (<= 0: manual only)
  /// Durable deploy journal path ("" = no journal). With a journal, every
  /// accepted deploy is appended (and fsynced per `journal` policy) before
  /// the client sees 200, and a restarted router calls recover() to rebuild
  /// its catalog from the log — see shard/journal.hpp.
  std::string journal_path;
  JournalConfig journal;
};

/// Registry-identical content key for a deploy request body, or std::nullopt
/// with `*error` filled with the same 400 the worker would have answered.
/// Exposed for tests and the bench harness (offline placement planning).
std::optional<std::string> compute_design_key(const std::string& body,
                                              web::HttpResponse* error);

class Router {
 public:
  explicit Router(RouterConfig config = {});
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Register a worker and place it on the ring. Call before serving traffic
  /// or at runtime (a join triggers replication repair toward the newcomer).
  void add_worker(const std::string& id, const std::string& host, int port);

  std::vector<std::string> worker_ids() const;
  /// The client for `id` (nullptr if unknown). Stable for the router's
  /// lifetime — workers are never erased, only taken off the ring.
  WorkerClient* worker(const std::string& id) const;
  /// Workers currently on the ring (i.e. receiving new placements).
  std::vector<std::string> ring_workers() const;

  /// Start/stop the background prober (readyz every probe_interval_ms).
  void start_probing();
  void stop_probing();
  /// One synchronous probe cycle: probe every worker, apply ring
  /// membership changes and replication repair. Deterministic for tests.
  void probe_now();

  /// Rebuild the catalog from the journal replayed at construction, then
  /// re-replicate every catalogued design through the ordinary repair path.
  /// Call once after add_worker()s (calling with an empty ring only fills
  /// the catalog; joins repair later). Returns the number of designs
  /// recovered into the catalog. No-op without a journal.
  std::size_t recover();

  /// Let the prober thread drive `supervisor` (tick per probe cycle) and
  /// hook its on_restart to probe_now(), so a restarted-empty worker rejoins
  /// the ring and is repaired immediately. Supervisor state is exported in
  /// readyz/metrics. Call before start_probing(); not owned.
  void attach_supervisor(Supervisor* supervisor);

  // Transport-free handlers mirroring ServingRuntime's /api/v1 contract.
  web::HttpResponse handle_deploy(const web::HttpRequest& request);
  web::HttpResponse handle_predict(const web::HttpRequest& request);
  web::HttpResponse handle_designs(const web::HttpRequest& request);
  web::HttpResponse handle_metrics(const web::HttpRequest& request);
  web::HttpResponse handle_readyz(const web::HttpRequest& request);

  /// Router-side injector (site `shard.worker`: simulate a worker's transport
  /// failing on the predict path). Arm before traffic; reads env on start.
  FaultInjector& faults() { return faults_; }

  // Observability (tests + fleet metrics).
  std::uint64_t failovers() const { return failovers_.load(std::memory_order_relaxed); }
  std::uint64_t key_mismatches() const {
    return key_mismatches_.load(std::memory_order_relaxed);
  }
  std::uint64_t repairs() const { return repairs_.load(std::memory_order_relaxed); }
  std::uint64_t injected_failures() const {
    return injected_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadline_rejects() const {
    return deadline_rejects_.load(std::memory_order_relaxed);
  }
  /// nullptr when RouterConfig.journal_path is empty.
  const DeployJournal* journal() const { return journal_.get(); }
  /// Workers currently holding `design_id` according to the catalog.
  std::vector<std::string> holders(const std::string& design_id) const;

 private:
  struct CatalogEntry {
    std::string deploy_body;        ///< original request body, replayable verbatim
    std::set<std::string> holders;  ///< workers believed to hold the design
  };
  /// A replication repair planned under the lock, executed outside it.
  struct Repair {
    std::string design_id;
    std::string deploy_body;
    std::vector<std::string> targets;
  };

  /// Ordered predict candidates for a key: ring replicas first (usable before
  /// draining, down skipped unless nothing else), then any catalog holders
  /// the ring no longer names. Caller must hold mutex_.
  std::vector<std::string> candidates_locked(const std::string& key) const;
  /// Take `id` off the ring and plan re-replication of its designs.
  std::vector<Repair> drop_worker_locked(const std::string& id);
  /// Put `id` back on the ring and plan the deploys it is now a replica for.
  std::vector<Repair> restore_worker_locked(const std::string& id);
  void execute_repairs(std::vector<Repair> repairs);
  void probe_loop();
  /// Append `body` to the journal if it is new history; compact when the log
  /// has outgrown the live catalog. Returns false (with *error filled) when
  /// the journal cannot take the record — the deploy must NOT be acked.
  bool journal_deploy(const std::string& body, web::HttpResponse* error);

  const RouterConfig config_;
  FaultInjector faults_;

  mutable std::mutex mutex_;  ///< guards ring_ + catalog_ (workers_ is append-only)
  HashRing ring_;
  std::map<std::string, std::unique_ptr<WorkerClient>> workers_;
  std::map<std::string, CatalogEntry> catalog_;

  std::unique_ptr<DeployJournal> journal_;    ///< nullptr without journal_path
  std::vector<std::string> replayed_bodies_;  ///< journal records awaiting recover()
  std::atomic<std::uint64_t> journal_recovered_{0};  ///< designs rebuilt by recover()
  Supervisor* supervisor_ = nullptr;          ///< not owned; see attach_supervisor

  std::atomic<std::uint64_t> failovers_{0};         ///< predicts retried on a replica
  std::atomic<std::uint64_t> key_mismatches_{0};    ///< router key != worker design_id
  std::atomic<std::uint64_t> repairs_{0};           ///< re-replication deploys executed
  std::atomic<std::uint64_t> injected_failures_{0};  ///< shard.worker fires
  std::atomic<std::uint64_t> deadline_rejects_{0};   ///< 504s answered locally

  std::thread prober_;
  std::atomic<bool> probing_{false};
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
};

/// Mount the router's fleet surface on `server` under /api/v1 (deploy,
/// predict, designs, metrics, readyz) — drop-in for install_serve_api.
void install_router_api(web::HttpServer& server, Router& router);

}  // namespace cnn2fpga::serve::shard
