#include "serve/shard/ring.hpp"

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::serve::shard {

namespace {
/// splitmix64 finalizer. Raw FNV-1a digests of near-identical strings
/// ("worker-0#17" vs "worker-0#18") land too close together on the ring,
/// which skews per-worker shares badly at practical vnode counts; the mix
/// spreads them over the full 64-bit circle.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t hash_key(const std::string& key) {
  util::Fnv1a hash;
  hash.update(key);
  return mix(hash.digest());
}
}  // namespace

std::uint64_t HashRing::point(const std::string& worker, std::size_t vnode) const {
  // "worker-id#vnode" — the separator keeps ("a", 11) and ("a1", 1) apart.
  util::Fnv1a hash;
  hash.update(worker);
  hash.update(util::format("#%zu", vnode));
  return mix(hash.digest());
}

void HashRing::add(const std::string& worker) {
  if (workers_.count(worker) != 0) return;
  workers_.insert(worker);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // On the astronomically unlikely vnode hash collision the earlier owner
    // keeps the point; the ring stays consistent, just one vnode lighter.
    points_.emplace(point(worker, v), worker);
  }
}

void HashRing::remove(const std::string& worker) {
  if (workers_.erase(worker) == 0) return;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == worker) {
      it = points_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string HashRing::primary(const std::string& key) const {
  if (points_.empty()) return {};
  auto it = points_.lower_bound(hash_key(key));
  if (it == points_.end()) it = points_.begin();  // wrap around
  return it->second;
}

std::vector<std::string> HashRing::replicas(const std::string& key, std::size_t n) const {
  std::vector<std::string> out;
  if (points_.empty() || n == 0) return out;
  if (n > workers_.size()) n = workers_.size();
  auto it = points_.lower_bound(hash_key(key));
  // Walk clockwise collecting distinct workers; at most one full lap.
  for (std::size_t steps = 0; steps < points_.size() && out.size() < n; ++steps) {
    if (it == points_.end()) it = points_.begin();
    const std::string& worker = it->second;
    bool seen = false;
    for (const auto& w : out) {
      if (w == worker) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(worker);
    ++it;
  }
  return out;
}

}  // namespace cnn2fpga::serve::shard
