// Router-side handle to one worker process: connection pool + health state.
//
// Each worker the router knows about gets one WorkerClient. It owns a small
// pool of persistent keep-alive HTTP connections (web/http_client.hpp) so the
// hot predict path pays a socket handshake once per connection, not once per
// request, and it tracks the worker's health as observed from the router:
// consecutive transport failures (requests and probes both count) flip the
// worker to `down` after a threshold; a `readyz` probe that answers maps the
// worker's own status string (ready / saturated / draining) into the state
// the router's ring maintenance acts on. All methods are thread-safe — many
// router handler threads share one WorkerClient.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "web/http_client.hpp"

namespace cnn2fpga::serve::shard {

/// Router-observed worker state. `kDraining`/`kSaturated` come from the
/// worker's own readyz body (it still answers, but asks for less traffic);
/// `kDown` is the router's verdict after repeated transport failures.
enum class WorkerState { kUp, kSaturated, kDraining, kDown };

const char* worker_state_name(WorkerState state);

struct WorkerClientConfig {
  web::ClientConfig client;        ///< per-connection timeouts (keep_alive forced on)
  std::size_t max_pool = 8;        ///< idle connections kept per worker
  int down_after_failures = 3;     ///< consecutive transport failures -> kDown
};

class WorkerClient {
 public:
  WorkerClient(std::string id, std::string host, int port, WorkerClientConfig config = {});

  const std::string& id() const { return id_; }
  const std::string& host() const { return host_; }
  int port() const { return port_; }

  /// One round trip on a pooled connection. std::nullopt means transport
  /// failure (and bumps the consecutive-failure count); any parsed HTTP
  /// response — including 4xx/5xx — resets it.
  std::optional<web::HttpResponse> request(const std::string& method, const std::string& path,
                                           const std::string& body = "",
                                           const std::map<std::string, std::string>& headers = {});

  /// GET /api/v1/readyz and fold the answer into `state()`. Returns the
  /// state after the probe. Cheap enough to call on a fixed cadence.
  WorkerState probe();

  WorkerState state() const;
  bool usable() const;  ///< kUp or kSaturated — can still take traffic
  int consecutive_failures() const;

  /// Forget pooled connections (e.g. after the process behind them was
  /// killed) without touching health state.
  void drop_connections();

  // Observability for fleet readyz and tests.
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t transport_failures() const {
    return transport_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<web::HttpClient> acquire();
  void release(std::unique_ptr<web::HttpClient> client);
  void record_success(WorkerState observed);
  void record_failure();

  const std::string id_;
  const std::string host_;
  const int port_;
  const WorkerClientConfig config_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<web::HttpClient>> pool_;  ///< idle connections
  WorkerState state_ = WorkerState::kUp;
  int failures_ = 0;  ///< consecutive transport failures

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> transport_failures_{0};
  std::atomic<std::uint64_t> probes_{0};
};

}  // namespace cnn2fpga::serve::shard
