// Worker supervisor: crash detection, backoff restarts, restart budgets.
//
// PR 8's fleet tolerated worker death (failover + repair) but never undid it:
// a SIGKILLed worker left the fleet one shard smaller forever. The Supervisor
// closes that loop. It owns one slot per worker and, driven by the router's
// existing prober thread (Supervisor::tick() — no SIGCHLD handler, no extra
// thread), runs this state machine per slot:
//
//            crash detected (waitpid WNOHANG)
//   kRunning ────────────────────────────────► kBackoff(delay)
//      ▲                                            │ delay elapsed
//      │ restart succeeded (process up + readyz)    ▼
//      └──────────────────────────────────── restart attempt ──► failed:
//                                                 next kBackoff(delay×factor),
//                                                 or kDead once the rolling
//                                                 window holds > budget crashes
//
// Backoff is deterministic (initial × factor^(n-1), capped), so a flapping
// worker's schedule is reproducible in tests. The restart budget is a rolling
// window: `restart_budget` crashes within `budget_window_ms` marks the slot
// permanently down (kDead) — visible in /api/v1/readyz — instead of burning
// CPU on a worker that can never stay up (e.g. its model file is gone).
//
// A restarted worker comes back EMPTY. The supervisor does not re-deploy;
// it fires the on_restart callback and the router's probe/repair path does
// what it already does for any returning worker: restore it to the ring and
// replay missing designs from the catalog (redeploy-on-404 covers races).
//
// Mechanism vs policy: the supervisor only knows the WorkerLauncher
// interface. ProcessLauncher is the real fork-based one (reserved port held
// across restarts, so a restart cannot lose the port); tests inject an
// in-process launcher, which keeps the whole state machine runnable under
// ThreadSanitizer (TSan does not support fork+threads).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "serve/shard/process.hpp"

namespace cnn2fpga::serve::shard {

/// How a supervisor slot starts, probes and stops its worker. All calls are
/// made from the supervising thread (plus stop_all at teardown); a launcher
/// that is also poked from elsewhere (a chaos driver killing workers) must
/// synchronize internally, as ProcessLauncher does.
class WorkerLauncher {
 public:
  virtual ~WorkerLauncher() = default;
  /// (Re)start the worker on its fixed port and wait until it answers
  /// readyz. Returns false if the worker could not be brought up.
  virtual bool start() = 0;
  /// Cheap liveness poll. Must reap an exited worker (no zombies).
  virtual bool alive() = 0;
  /// Graceful stop (fleet teardown).
  virtual void stop() = 0;
  virtual int port() const = 0;
};

/// Fork-based launcher: owns the worker's port reservation and its
/// WorkerProcess. NOTE restart forks from whatever the supervising process
/// has become — under load that is a multithreaded router, so the child must
/// only rely on async-signal-safe-ish state until exec-free re-init is done
/// (our child mains build everything fresh and first of all silence logging;
/// see bench_serving --chaos).
class ProcessLauncher : public WorkerLauncher {
 public:
  ProcessLauncher(ReservedPort reserved, WorkerProcess::ChildMain child_main,
                  int ready_timeout_ms = 10000);

  bool start() override;
  bool alive() override;
  void stop() override;
  int port() const override { return reserved_.port(); }

  /// SIGKILL the worker (chaos drills). Safe to call from any thread.
  void kill_now();

 private:
  std::mutex mutex_;
  ReservedPort reserved_;
  WorkerProcess::ChildMain child_main_;
  WorkerProcess process_;
  int ready_timeout_ms_;
};

struct SupervisorConfig {
  int backoff_initial_ms = 200;   ///< first restart delay after a crash
  double backoff_factor = 2.0;    ///< deterministic exponential growth
  int backoff_max_ms = 5000;      ///< backoff cap
  /// Crashes tolerated per rolling window before the slot is marked
  /// permanently down. 0 disables the budget (always restart).
  std::uint64_t restart_budget = 5;
  int budget_window_ms = 60000;   ///< rolling window for the budget
};

enum class SlotState { kRunning, kBackoff, kDead };

const char* slot_state_name(SlotState state);

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config = {});
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Register a worker slot. `id` must match the router's worker id
  /// ("host:port") so readyz output lines up. Slots are added before
  /// supervision starts and never removed (same append-only rule as
  /// Router::add_worker).
  void add_slot(const std::string& id, std::unique_ptr<WorkerLauncher> launcher);

  /// Invoked after a slot was successfully restarted (worker answering
  /// readyz) with the slot id. The router hooks this to probe_now() so the
  /// empty worker rejoins the ring and gets repaired immediately instead of
  /// on the next probe period.
  void on_restart(std::function<void(const std::string& id)> callback);

  /// One supervision cycle: reap crashes, restart slots whose backoff
  /// expired, retire slots over budget. Called from the router's prober
  /// thread; a restart blocks the tick for up to the launcher's ready
  /// timeout, which is the price of not owning a thread.
  void tick();

  /// Gracefully stop every worker (fleet teardown). Dead slots are skipped.
  void stop_all();

  struct SlotStatus {
    std::string id;
    int port = 0;
    SlotState state = SlotState::kRunning;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    int backoff_ms = 0;  ///< current delay when state == kBackoff
  };
  std::vector<SlotStatus> status() const;

  std::uint64_t restarts() const;          ///< successful restarts, all slots
  std::uint64_t crashes() const;           ///< crashes detected, all slots
  std::uint64_t permanently_down() const;  ///< slots in kDead

  /// {"slots": [...], "restarts": n, "crashes": n, "permanently_down": n}
  json::Value to_json() const;

 private:
  struct Slot {
    std::string id;
    std::unique_ptr<WorkerLauncher> launcher;
    SlotState state = SlotState::kRunning;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    int backoff_ms = 0;
    std::chrono::steady_clock::time_point restart_due{};
    std::deque<std::chrono::steady_clock::time_point> window;  ///< recent crashes
  };

  /// Crash accounting shared by "died while running" and "restart attempt
  /// failed". Returns the slot's next state. Caller holds mutex_.
  SlotState record_crash_locked(Slot& slot, std::chrono::steady_clock::time_point now);

  const SupervisorConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::function<void(const std::string&)> on_restart_;
};

}  // namespace cnn2fpga::serve::shard
