// Consistent-hash ring over worker ids.
//
// The router shards deployed designs across worker processes by hashing the
// registry's content-addressed design key (framework cache key + precision
// suffix) onto a ring of virtual nodes. Consistent hashing is what makes the
// fleet elastic: when a worker dies or joins, only the keys whose nearest
// vnode belonged to (or now belongs to) that worker move — on average K/N of
// K keys for an N-worker ring — instead of the full reshuffle a modulo hash
// would force. Virtual nodes (default 64 per worker) smooth the per-worker
// share of the key space; FNV-1a is the same hash the rest of the codebase
// uses (util/hash.hpp), so placement is deterministic across processes and
// runs.
//
// The ring is a passive data structure: not internally thread-safe. The
// router guards it with its own mutex alongside the catalog it must stay
// consistent with.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cnn2fpga::serve::shard {

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64) : vnodes_(vnodes) {}

  /// Add a worker's vnodes. No-op if already present.
  void add(const std::string& worker);

  /// Remove a worker's vnodes. No-op if absent.
  void remove(const std::string& worker);

  bool contains(const std::string& worker) const { return workers_.count(worker) != 0; }
  std::size_t size() const { return workers_.size(); }
  bool empty() const { return workers_.empty(); }
  const std::set<std::string>& workers() const { return workers_; }

  /// Worker owning `key`: the first vnode at or clockwise after hash(key).
  /// Empty string when the ring is empty.
  std::string primary(const std::string& key) const;

  /// Up to `n` distinct workers for `key`, starting at the primary and
  /// walking clockwise (the primary is replicas(key, n)[0]). Fewer than `n`
  /// when the ring has fewer workers.
  std::vector<std::string> replicas(const std::string& key, std::size_t n) const;

 private:
  std::uint64_t point(const std::string& worker, std::size_t vnode) const;

  std::size_t vnodes_;
  std::map<std::uint64_t, std::string> points_;  ///< vnode hash -> worker id
  std::set<std::string> workers_;
};

}  // namespace cnn2fpga::serve::shard
