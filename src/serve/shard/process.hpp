// Worker process lifecycle for the shard router (fork + control pipe).
//
// A sharded fleet is real processes, not threads: each worker owns its own
// registry, batcher and executor, so a crash (or a SIGKILL in a failover
// drill) takes down exactly one shard. The helpers here keep the lifecycle
// minimal and dependency-free:
//
//   * ReservedPort picks a free ephemeral port up front AND keeps holding it
//     (a bound, never-listening SO_REUSEPORT socket) so the router knows
//     every worker's address before any of them is up and a supervisor can
//     restart a crashed worker on the same port with zero race window — the
//     kernel never hands a reserved port to an unrelated bind,
//   * WorkerProcess forks a child that runs the caller's `child_main` (it
//     starts the serving runtime, then blocks on the inherited control pipe;
//     EOF on that pipe is the shutdown signal — robust even when the parent
//     dies, since the kernel closes the pipe for it),
//   * wait_until_ready() polls the worker's /api/v1/readyz until it answers.
//
// fork(2) must happen before the parent creates threads (a forked copy of a
// multithreaded process only keeps the calling thread — any mutex another
// thread held stays locked forever in the child). codegen_server and the
// bench harness therefore spawn every worker first and only then build their
// own router/runtime state. Tests that run under ThreadSanitizer use
// in-process workers instead (TSan does not support fork+threads).
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>

namespace cnn2fpga::serve::shard {

/// Reserve a free 127.0.0.1 port: bind ephemeral, read it back, close. The
/// tiny window before the worker rebinds it is acceptable for one-shot local
/// fleets; supervised fleets use ReservedPort, which has no window at all.
int reserve_local_port();

/// A 127.0.0.1 port held reserved for a worker's whole lifetime, across any
/// number of crash/restart cycles. The reservation is a bound socket with
/// SO_REUSEADDR | SO_REUSEPORT that never listens; the worker (same uid) joins
/// the reuseport group when it binds, and because the reservation never
/// accepts, every connection goes to the worker's listening socket. While the
/// worker is dead its connections are refused promptly (no listener in the
/// group) — exactly the signal the router's health tracking wants.
class ReservedPort {
 public:
  ReservedPort() = default;
  ~ReservedPort();
  ReservedPort(const ReservedPort&) = delete;
  ReservedPort& operator=(const ReservedPort&) = delete;
  ReservedPort(ReservedPort&& other) noexcept;
  ReservedPort& operator=(ReservedPort&& other) noexcept;

  /// Bind and hold a free ephemeral port. Returns an invalid reservation
  /// (port() == 0) on failure.
  static ReservedPort reserve();

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

class WorkerProcess {
 public:
  /// Runs in the forked child. Must start serving on `port`, block until
  /// `shutdown_fd` reads EOF, shut down cleanly and return. The child
  /// _exit()s with the returned code (destructors of the parent's globals are
  /// deliberately not run twice).
  using ChildMain = std::function<int(int port, int shutdown_fd)>;

  WorkerProcess() = default;
  ~WorkerProcess();
  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;
  WorkerProcess(WorkerProcess&& other) noexcept;
  WorkerProcess& operator=(WorkerProcess&& other) noexcept;

  /// Fork and run `child_main` in the child. Returns false if fork failed.
  bool spawn(int port, const ChildMain& child_main);

  /// Graceful stop: close the control pipe (child sees EOF), wait for exit.
  void stop();

  /// SIGKILL the child (failover drills: death without any goodbye).
  void kill_now();

  /// Non-blocking liveness poll (waitpid WNOHANG). Returns true while the
  /// child is alive; an exited/crashed child is reaped — no zombie — and
  /// running() turns false. This is the supervisor's crash detector.
  bool poll_alive();

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  int port() const { return port_; }

 private:
  void reap();

  pid_t pid_ = -1;
  int control_fd_ = -1;  ///< write end; closing it is the shutdown signal
  int port_ = 0;
};

/// Poll GET /api/v1/readyz on 127.0.0.1:`port` until any HTTP response
/// arrives (readyz may legitimately answer 503 while empty — answering at all
/// proves the server is up) or `timeout_ms` elapses.
bool wait_until_ready(int port, int timeout_ms);

}  // namespace cnn2fpga::serve::shard
