#include "serve/breaker.hpp"

namespace cnn2fpga::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

Breaker::Breaker(BreakerConfig config, Counter* opens)
    : config_{config.failure_threshold == 0 ? 1 : config.failure_threshold,
              config.cooldown_ms},
      opens_counter_(opens) {}

void Breaker::open_locked() {
  state_ = BreakerState::kOpen;
  probe_in_flight_ = false;
  opened_at_ = Clock::now();
  ++opens_;
  if (opens_counter_ != nullptr) opens_counter_->add();
}

bool Breaker::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto cooldown = std::chrono::milliseconds(config_.cooldown_ms);
      if (Clock::now() - opened_at_ < cooldown) return false;
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;  // this request is the probe
      return true;
    }
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;  // one probe at a time
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

bool Breaker::would_allow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return Clock::now() - opened_at_ >= std::chrono::milliseconds(config_.cooldown_ms);
    case BreakerState::kHalfOpen:
      return !probe_in_flight_;
  }
  return true;
}

void Breaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    probe_in_flight_ = false;
  }
  // A straggler success while open (batch admitted before the trip) does not
  // close the breaker: recovery must come through a half-open probe.
}

void Breaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) open_locked();
      break;
    case BreakerState::kHalfOpen:
      ++consecutive_failures_;
      open_locked();  // probe failed: quarantine again, cooldown restarts
      break;
    case BreakerState::kOpen:
      ++consecutive_failures_;  // straggler from a pre-trip batch
      break;
  }
}

void Breaker::record_abandoned() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
}

BreakerState Breaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::size_t Breaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutive_failures_;
}

std::uint64_t Breaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

std::uint64_t Breaker::retry_after_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kOpen) return 0;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - opened_at_);
  const auto cooldown = std::chrono::milliseconds(config_.cooldown_ms);
  return elapsed >= cooldown
             ? 0
             : static_cast<std::uint64_t>((cooldown - elapsed).count());
}

}  // namespace cnn2fpga::serve
