// Deterministic fault injection for the serving runtime.
//
// Robustness behavior (load shedding, deadline drops, circuit breaking) is
// only trustworthy if it is exercised by actually injecting the fault, not by
// hand-crafting the state it would leave behind. FaultInjector lets tests,
// the bench harness and a locally started server arm faults at named sites:
//
//   registry.deploy   error / latency / alloc   before design generation
//   batcher.enqueue   latency / alloc           in Batcher::predict
//   executor.batch    error / latency           at batch execution
//   shard.worker      error                     in the shard router, before a
//                                               predict is sent to a worker —
//                                               simulates that worker's
//                                               transport failing, forcing a
//                                               failover to its replica
//   client.connect    error / latency           in web::HttpClient — error
//                                               refuses the connection,
//                                               latency stalls then fails it
//                                               (a connect timeout)
//   client.send       error                     in web::HttpClient — tears the
//                                               write after `bytes` real bytes
//                                               and closes the socket, so the
//                                               server sees a truncated
//                                               request
//   client.recv       error / latency           in web::HttpClient — error
//                                               resets the connection before
//                                               the response is read, latency
//                                               stalls then resets (a read
//                                               timeout)
//
// Three fault kinds: kError makes the site throw InjectedFault, kLatency adds
// a fixed delay, kAlloc makes the site throw std::bad_alloc. Decisions are
// deterministic: every armed fault keeps a hit counter, and firing is a pure
// function of (seed, site, kind, hit index), so a seeded run replays exactly.
// An optional fire budget (`count`) arms a fault for its first N firings —
// "fail the next 3 batches, then heal" is one arm() call.
//
// Disabled cost: when nothing is armed every query is a single relaxed atomic
// load and an immediate return — no lock, no map lookup — so production
// builds keep the hooks compiled in. Arm via code, `configure("spec")`, or
// the CNN2FPGA_FAULTS / CNN2FPGA_FAULT_SEED environment variables.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace cnn2fpga::serve {

/// Thrown by a site where an error fault fired. Distinct from every
/// serving-control error so an injected fault surfaces as what it simulates:
/// an internal execution failure.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class FaultKind { kError, kLatency, kAlloc };

struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  double rate = 1.0;             ///< firing probability per hit (deterministic)
  std::uint64_t count = 0;       ///< fire at most this many times; 0 = unlimited
  std::uint64_t latency_us = 0;  ///< added delay (kLatency only)
  std::uint64_t bytes = 0;       ///< torn-write length for client.send (kError)
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm `spec` at `site` (replaces a previously armed fault of the same
  /// kind at that site; other kinds at the site stay armed).
  void arm(const std::string& site, FaultSpec spec);
  /// Remove every fault armed at `site`.
  void disarm(const std::string& site);
  /// Remove everything.
  void clear();

  /// Seed of the deterministic firing decisions (default 1).
  void seed(std::uint64_t value);

  /// Parse and arm a comma-separated spec, e.g.
  ///   "executor.batch=error:1.0:3,batcher.enqueue=latency:500"
  /// entry grammar: site=error[:rate[:count[:bytes]]] | site=latency:us[:count]
  ///              | site=alloc[:rate[:count]]
  /// (`bytes` is the torn-write length consumed by the client.send site).
  /// Returns false (and fills *error) on a malformed spec; nothing is armed
  /// from a spec that fails to parse.
  bool configure(const std::string& spec, std::string* error = nullptr);

  /// Arm from CNN2FPGA_FAULTS / CNN2FPGA_FAULT_SEED if set. Malformed specs
  /// are reported on stderr and ignored (a typo must not take the server
  /// down).
  void configure_from_env();

  /// True if any fault is armed anywhere (single relaxed load).
  bool enabled() const { return armed_.load(std::memory_order_relaxed) != 0; }

  // --- hot-path queries (immediate false/no-op while nothing is armed) ---

  /// Did an error fault fire at `site`? Callers throw InjectedFault. When
  /// `spec` is non-null it receives the armed spec on fire, so transport
  /// sites can read auxiliary fields (the torn-write `bytes` length).
  bool should_fail(std::string_view site, FaultSpec* spec = nullptr);
  /// Did an alloc fault fire at `site`? Callers throw std::bad_alloc.
  bool should_fail_alloc(std::string_view site);
  /// Sleep for the armed latency if a latency fault fires at `site`.
  void inject_latency(std::string_view site);
  /// Like inject_latency but does NOT sleep: reports the armed stall through
  /// *latency_us and lets the caller decide what the stall means (the
  /// transport sites sleep and then fail the operation, simulating a timeout).
  bool should_stall(std::string_view site, std::uint64_t* latency_us);

  /// Total fires across all kinds at `site` (observability for tests).
  std::uint64_t fired(std::string_view site) const;

  /// {"site": [{"kind", "rate", "count", "latency_us", "bytes", "hits",
  /// "fires"}, ...], ...} — the full armed spec plus firing accounting, so an
  /// armed chaos configuration is observable end to end in /api/v1/metrics.
  json::Value to_json() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;   ///< times the site was queried for this kind
    std::uint64_t fires = 0;  ///< times the fault actually fired
  };

  /// Decide (and account) one query of `kind` at `site`. On fire the armed
  /// spec is copied through *spec when non-null.
  bool fire(std::string_view site, FaultKind kind, FaultSpec* spec = nullptr);

  std::atomic<std::size_t> armed_{0};  ///< armed fault count (enabled() gate)
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<Armed>, std::less<>> sites_;
  std::uint64_t seed_ = 1;
};

}  // namespace cnn2fpga::serve
