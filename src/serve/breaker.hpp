// Per-design circuit breaker: quarantine a failing design, keep the fleet up.
//
// The paper's block design wires a Processor System Reset into the fabric
// (Fig. 5) so a wedged IP core can be reset instead of taking the system
// down. This is the same discipline one level up: when a deployed design's
// batches fail `failure_threshold` times in a row, the breaker opens and
// predict requests for that design are rejected immediately (503
// design_unavailable) instead of burning executor slots on work that will
// fail. After `cooldown_ms` the breaker goes half-open and admits exactly one
// probe batch; a successful probe closes the breaker, a failed one reopens it
// and restarts the cooldown. Healthy designs never notice.
//
// State machine:
//
//     closed --(N consecutive failures)--> open
//     open   --(cooldown elapsed, next allow())--> half-open
//     half-open --(probe succeeds)--> closed
//     half-open --(probe fails)-----> open        (cooldown restarts)
//     half-open --(probe abandoned)-> half-open   (probe slot freed)
//
// Thread model: every transition happens under the breaker's own mutex;
// allow() is called once per request and record_* once per batch, so the
// lock is far off the per-image hot path.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "serve/metrics.hpp"

namespace cnn2fpga::serve {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  /// Consecutive failed batches that open the breaker (clamped to >= 1).
  std::size_t failure_threshold = 5;
  /// Open duration before a half-open probe is admitted.
  std::uint64_t cooldown_ms = 1000;
};

class Breaker {
 public:
  using Clock = std::chrono::steady_clock;

  /// `opens` may be null; when set it is bumped on every transition to open.
  explicit Breaker(BreakerConfig config = {}, Counter* opens = nullptr);

  /// May this request be admitted? Transitions open -> half-open once the
  /// cooldown has elapsed (the admitted request is the probe).
  bool allow();

  /// Would allow() succeed right now? Non-mutating: neither transitions the
  /// state nor claims the half-open probe slot. The batcher admits a request
  /// when any backend's breaker would allow it, and only consumes allow() on
  /// the backend the placer actually chooses at flush time.
  bool would_allow() const;

  /// A batch for this design executed successfully.
  void record_success();
  /// A batch for this design failed (execution error / injected fault).
  void record_failure();
  /// A batch executed nothing (every request expired): frees the half-open
  /// probe slot without deciding health either way.
  void record_abandoned();

  BreakerState state() const;
  const char* state_name() const { return breaker_state_name(state()); }
  std::size_t consecutive_failures() const;
  /// Cumulative closed/half-open -> open transitions.
  std::uint64_t opens() const;
  /// Cooldown remaining while open (0 otherwise) — feeds Retry-After.
  std::uint64_t retry_after_ms() const;

  const BreakerConfig& config() const { return config_; }

 private:
  void open_locked();

  const BreakerConfig config_;
  Counter* opens_counter_;

  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::uint64_t opens_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
};

}  // namespace cnn2fpga::serve
