// Fixed-size worker pool executing opaque tasks FIFO.
//
// The serving runtime submits one task per micro-batch; the pool bounds the
// number of concurrently executing batches to the hardware the host actually
// has, independent of how many HTTP handler threads are blocked on futures.
// Shutdown is graceful: every task already submitted runs to completion
// before the workers join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cnn2fpga::serve {

class Executor {
 public:
  /// Spawns `threads` workers immediately (at least 1).
  explicit Executor(std::size_t threads);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown().
  void submit(std::function<void()> task);

  /// Drain the queue, run everything already submitted, join the workers.
  /// Idempotent; further submit() calls fail.
  void shutdown();

  std::size_t thread_count() const { return threads_.size(); }

  /// Tasks submitted but not yet finished (approximate; for tests/metrics).
  std::size_t backlog() const;

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t active_ = 0;   ///< tasks currently executing
  bool stopping_ = false;
};

}  // namespace cnn2fpga::serve
