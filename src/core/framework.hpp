// The cnn2fpga framework facade (paper Sec. IV, Fig. 3).
//
// Input:  a network descriptor (the GUI's JSON) and the trained weights
//         (a CNN2FPGAW1 weight file, or "random weights for the sake of
//         simplicity" as in the paper's Test 4).
// Output: the synthesizable C++ source, the three tcl scripts, and — our
//         substitute for running Vivado — the HLS simulator's latency and
//         utilization report, with warnings when the design does not fit
//         the selected board.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/codegen_cpp.hpp"
#include "core/codegen_tcl.hpp"
#include "core/descriptor.hpp"
#include "hls/estimator.hpp"
#include "nn/serialize.hpp"

namespace cnn2fpga::core {

struct GeneratedDesign {
  NetworkDescriptor descriptor;
  std::string cpp_file_name;   ///< "<name>.cpp"
  std::string cpp_source;
  std::map<std::string, std::string> tcl_files;
  hls::HlsReport hls_report;
  std::vector<std::string> warnings;

  /// Write every artifact (C++ + tcl + report.txt) into a directory.
  void write_to(const std::string& directory) const;
};

class Framework {
 public:
  /// Generate from a descriptor and an already-trained network. The network
  /// must structurally match the descriptor.
  static GeneratedDesign generate(const NetworkDescriptor& descriptor,
                                  const nn::Network& trained);

  /// Generate from a descriptor and a serialized weight file (the canonical
  /// web-API path: JSON + weight blob in, artifacts out).
  static GeneratedDesign generate_from_weights(const NetworkDescriptor& descriptor,
                                               const std::vector<std::uint8_t>& weight_file);

  /// Paper Sec. IV: "the user ... can also directly use the proposed
  /// automation framework ... by specifying random weights for the sake of
  /// simplicity". Deterministic per seed.
  static GeneratedDesign generate_with_random_weights(const NetworkDescriptor& descriptor,
                                                      std::uint64_t seed);

  /// Content hash of (canonical descriptor JSON, weight blob): the serving
  /// registry's cache key. generate() is a pure function of these two inputs,
  /// so equal keys imply identical artifacts and an identical HLS report.
  static std::string cache_key(const NetworkDescriptor& descriptor,
                               const std::vector<std::uint8_t>& weight_file);
};

}  // namespace cnn2fpga::core
