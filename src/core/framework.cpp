#include "core/framework.hpp"

#include "util/fileio.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::core {

using cnn2fpga::util::format;

void GeneratedDesign::write_to(const std::string& directory) const {
  util::make_dirs(directory);
  util::write_file(directory + "/" + cpp_file_name, cpp_source);
  for (const auto& [name, contents] : tcl_files) {
    util::write_file(directory + "/" + name, contents);
  }
  util::write_file(directory + "/hls_report.txt", hls_report.to_string());
  util::write_file(directory + "/descriptor.json", descriptor.to_json().dump(/*pretty=*/true));
}

GeneratedDesign Framework::generate(const NetworkDescriptor& descriptor,
                                    const nn::Network& trained) {
  descriptor.validate();

  GeneratedDesign design;
  design.descriptor = descriptor;
  design.cpp_file_name = util::sanitize_identifier(descriptor.name) + ".cpp";
  design.cpp_source = generate_cpp(descriptor, trained);
  design.tcl_files = generate_tcl_files(descriptor, trained);

  hls::FpgaDevice device = *hls::find_device(descriptor.board);
  if (descriptor.clock_mhz > 0.0) device.clock_mhz = descriptor.clock_mhz;
  const hls::DirectiveSet directives =
      descriptor.optimize ? hls::DirectiveSet::optimized() : hls::DirectiveSet::naive();
  design.hls_report = hls::estimate(trained, directives, device, descriptor.precision,
                                    descriptor.streamed_weights);

  if (!design.hls_report.fits()) {
    design.warnings.push_back(format(
        "design '%s' exceeds the %s budget on: %s -- synthesis would fail placement",
        descriptor.name.c_str(), descriptor.board.c_str(),
        util::join(design.hls_report.overflowing_resources(), ", ").c_str()));
  }
  const double dsp_util = design.hls_report.util.dsp;
  if (design.hls_report.fits() && dsp_util > 0.9) {
    design.warnings.push_back("DSP utilization above 90%: little headroom for a larger network");
  }

  LOG_INFO("framework") << format("generated '%s' for %s: %llu cycles/image, fits=%d",
                                  descriptor.name.c_str(), descriptor.board.c_str(),
                                  (unsigned long long)design.hls_report.latency_cycles,
                                  design.hls_report.fits() ? 1 : 0);
  return design;
}

GeneratedDesign Framework::generate_from_weights(const NetworkDescriptor& descriptor,
                                                 const std::vector<std::uint8_t>& weight_file) {
  nn::Network net = descriptor.build_network();
  nn::deserialize_weights(net, weight_file);
  return generate(descriptor, net);
}

GeneratedDesign Framework::generate_with_random_weights(const NetworkDescriptor& descriptor,
                                                        std::uint64_t seed) {
  nn::Network net = descriptor.build_network();
  util::Rng rng(seed);
  net.init_weights(rng);
  return generate(descriptor, net);
}

std::string Framework::cache_key(const NetworkDescriptor& descriptor,
                                 const std::vector<std::uint8_t>& weight_file) {
  util::Fnv1a hash;
  hash.update(descriptor.to_json().dump());
  hash.update(std::span<const std::uint8_t>(weight_file));
  return hash.hex();
}

}  // namespace cnn2fpga::core
