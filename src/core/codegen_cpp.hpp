// Synthesizable C++ emitter (the paper's "first wrapper", Sec. IV-A).
//
// Produces a single self-contained C++ file containing:
//   - all network parameters as hard-coded static const arrays,
//   - `cnn_core`: the feed-forward function, one code block per layer, a
//     LogSoftMax block appended by default, returning the predicted class
//     index — written in the Vivado-HLS-synthesizable C++ subset (static
//     arrays, fixed trip counts, labeled loops, no dynamic allocation);
//   - `cnn_xtop`: the AXI4-Stream top-level wrapper (paper Sec. IV-B) with
//     interface pragmas, compiled against hls_stream.h under __SYNTHESIS__
//     and against a tiny FIFO shim otherwise so the artifact runs anywhere;
//   - optionally a testbench `main` (guarded by CNN2FPGA_TESTBENCH) that
//     reads an image as hex floats on stdin and prints the scores and the
//     prediction — the equivalence tests compile and execute it against the
//     reference library.
//
// In optimized mode the emitter inlines the directives the paper settled on
// after its design-space exploration (Sec. V-E): HLS DATAFLOW on the core and
// HLS PIPELINE II=1 on every convolutional/linear reduction loop. The same
// directives are also emitted into directives.tcl by the tcl generator.
//
// Loop order and accumulation order match `src/nn` exactly, so the generated
// design and the reference software produce bit-identical outputs — the
// paper's "hardware implementation is as accurate as software one".
#pragma once

#include <string>

#include "core/descriptor.hpp"

namespace cnn2fpga::core {

struct CodegenOptions {
  bool emit_testbench = true;
  std::string top_function = "cnn_xtop";
  std::string core_function = "cnn_core";
};

/// Emit the network source. `net` must structurally match `descriptor`
/// (same layers in the same order); throws DescriptorError otherwise.
std::string generate_cpp(const NetworkDescriptor& descriptor, const nn::Network& net,
                         const CodegenOptions& options = {});

/// Render one float as a C literal that round-trips the exact float32 value.
std::string float_literal(float value);

}  // namespace cnn2fpga::core
