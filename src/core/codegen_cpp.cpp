#include "core/codegen_cpp.hpp"

#include <cmath>
#include <cstdio>

#include "nn/fixed_inference.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::core {

using cnn2fpga::util::format;
using nn::FixedPointFormat;
using nn::Shape;

std::string float_literal(float value) {
  if (!std::isfinite(value)) return "0.0f /* non-finite weight replaced */";
  // %.9g prints enough significant digits to round-trip any float32.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(value));
  std::string text = buf;
  // Ensure the literal parses as floating (avoid "3" becoming an int literal).
  if (text.find('.') == std::string::npos && text.find('e') == std::string::npos &&
      text.find("inf") == std::string::npos) {
    text += ".0";
  }
  return text + "f";
}

namespace {

/// Verifies that the trained network has exactly the architecture the
/// descriptor describes (the weight file belongs to this design).
void check_structure(const NetworkDescriptor& descriptor, const nn::Network& net) {
  const nn::Network expected = descriptor.build_network();
  bool mismatch = expected.layer_count() != net.layer_count() ||
                  expected.input_shape() != net.input_shape();
  for (std::size_t i = 0; !mismatch && i < expected.layer_count(); ++i) {
    mismatch = expected.layer(i).kind() != net.layer(i).kind() ||
               expected.shape_after(i) != net.shape_after(i);
  }
  if (mismatch) {
    throw DescriptorError(format(
        "generate_cpp: network does not match descriptor '%s' (layer structure or "
        "shapes differ); re-train or fix the descriptor", descriptor.name.c_str()));
  }
}

void emit_float_array(std::string& out, const std::string& name, const nn::Tensor& tensor) {
  out += format("static const float %s[%zu] = {\n", name.c_str(), tensor.size());
  std::string line = "  ";
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    line += float_literal(tensor[i]);
    if (i + 1 != tensor.size()) line += ", ";
    if (line.size() > 90 || i + 1 == tensor.size()) {
      out += line + "\n";
      line = "  ";
    }
  }
  out += "};\n";
}

void emit_fixed_array(std::string& out, const std::string& name, const nn::Tensor& tensor,
                      const FixedPointFormat& fmt) {
  out += format("static const fixed_t %s[%zu] = {  // %s raw values\n", name.c_str(),
                tensor.size(), fmt.name().c_str());
  std::string line = "  ";
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    line += format("%d", nn::fixed_quantize(tensor[i], fmt));
    if (i + 1 != tensor.size()) line += ", ";
    if (line.size() > 90 || i + 1 == tensor.size()) {
      out += line + "\n";
      line = "  ";
    }
  }
  out += "};\n";
}

struct EmitContext {
  bool optimize = false;
  bool streamed = false;       ///< weights uploaded over the stream at start-up
  nn::NumericFormat numeric;
  std::string current_buffer;  ///< name of the buffer holding the last output
  Shape current_shape;
  std::string blocks;          ///< accumulated layer code
  std::string weight_decls;    ///< accumulated weight arrays
  /// (array name, element count) in upload order -- matches Network::params().
  std::vector<std::pair<std::string, std::size_t>> weight_arrays;

  bool fixed() const { return numeric.is_fixed; }
  const char* value_type() const { return fixed() ? "fixed_t" : "float"; }
};

void emit_one_weight_array(EmitContext& ctx, const std::string& name,
                           const nn::Tensor& tensor) {
  if (ctx.streamed) {
    ctx.weight_decls += format("static %s %s[%zu];  // loaded at start-up\n",
                               ctx.value_type(), name.c_str(), tensor.size());
    ctx.weight_arrays.emplace_back(name, tensor.size());
    return;
  }
  if (ctx.fixed()) {
    emit_fixed_array(ctx.weight_decls, name, tensor, ctx.numeric.fixed);
  } else {
    emit_float_array(ctx.weight_decls, name, tensor);
  }
}

void emit_weight_pair(EmitContext& ctx, const std::string& wname, const nn::Tensor& weights,
                      const std::string& bname, const nn::Tensor& bias) {
  emit_one_weight_array(ctx, wname, weights);
  emit_one_weight_array(ctx, bname, bias);
}

void emit_conv(EmitContext& ctx, const nn::Conv2D& conv, const Shape& out_shape,
               std::size_t index) {
  const std::string w = format("w_conv%zu", index);
  const std::string b = format("b_conv%zu", index);
  const std::string buf = format("buf_conv%zu", index);
  emit_weight_pair(ctx, w, conv.weights(), b, conv.bias());

  const std::size_t K = conv.out_channels(), C = conv.in_channels();
  const std::size_t KH = conv.kernel_h(), KW = conv.kernel_w();
  const std::size_t OH = out_shape.height(), OW = out_shape.width();
  const std::size_t IH = ctx.current_shape.height(), IW = ctx.current_shape.width();

  std::string& s = ctx.blocks;
  s += format("  // layer %zu: convolution, %zu kernels of %zux%zux%zu (Eq. 1)\n", index, K, C,
              KH, KW);
  s += format("  static %s %s[%zu];\n", ctx.value_type(), buf.c_str(), out_shape.elements());
  s += format("L%zu_k: for (int k = 0; k < %zu; ++k) {\n", index, K);
  s += format("  L%zu_i: for (int i = 0; i < %zu; ++i) {\n", index, OH);
  s += format("    L%zu_j: for (int j = 0; j < %zu; ++j) {\n", index, OW);
  if (ctx.fixed()) {
    s += format("        acc_t acc = ((acc_t)%s[k]) << FRAC_BITS;\n", b.c_str());
  } else {
    s += format("        float acc = %s[k];\n", b.c_str());
  }
  s += format("      L%zu_c: for (int c = 0; c < %zu; ++c) {\n", index, C);
  if (ctx.optimize) s += "#pragma HLS PIPELINE II=1\n";
  s += format("        L%zu_m: for (int m = 0; m < %zu; ++m) {\n", index, KH);
  s += format("          L%zu_n: for (int n = 0; n < %zu; ++n) {\n", index, KW);
  if (ctx.fixed()) {
    s += format("            acc += (acc_t)%s[((k * %zu + c) * %zu + m) * %zu + n] *\n",
                w.c_str(), C, KH, KW);
    s += format("                   (acc_t)%s[(c * %zu + (i + m)) * %zu + (j + n)];\n",
                ctx.current_buffer.c_str(), IH, IW);
  } else {
    s += format("            acc += %s[((k * %zu + c) * %zu + m) * %zu + n] *\n", w.c_str(), C,
                KH, KW);
    s += format("                   %s[(c * %zu + (i + m)) * %zu + (j + n)];\n",
                ctx.current_buffer.c_str(), IH, IW);
  }
  s += "          }\n        }\n      }\n";
  if (ctx.fixed()) {
    s += format("      %s[(k * %zu + i) * %zu + j] = renorm(acc);\n", buf.c_str(), OH, OW);
  } else {
    s += format("      %s[(k * %zu + i) * %zu + j] = acc;\n", buf.c_str(), OH, OW);
  }
  s += "    }\n  }\n}\n\n";

  ctx.current_buffer = buf;
  ctx.current_shape = out_shape;
}

void emit_pool(EmitContext& ctx, const nn::Pool2D& pool, const Shape& out_shape,
               std::size_t index) {
  const std::string buf = format("buf_pool%zu", index);
  const bool is_max = pool.pool_kind() == nn::PoolKind::kMax;
  const std::size_t C = out_shape.channels(), OH = out_shape.height(), OW = out_shape.width();
  const std::size_t KH = pool.kernel_h(), KW = pool.kernel_w(), S = pool.step();
  const std::size_t IH = ctx.current_shape.height(), IW = ctx.current_shape.width();

  std::string& s = ctx.blocks;
  s += format("  // layer %zu: %s-pooling %zux%zu stride %zu (Eq. 4/5)\n", index,
              is_max ? "max" : "mean", KH, KW, S);
  s += format("  static %s %s[%zu];\n", ctx.value_type(), buf.c_str(), out_shape.elements());
  s += format("L%zu_c: for (int c = 0; c < %zu; ++c) {\n", index, C);
  s += format("  L%zu_i: for (int i = 0; i < %zu; ++i) {\n", index, OH);
  s += format("    L%zu_j: for (int j = 0; j < %zu; ++j) {\n", index, OW);
  if (is_max) {
    s += format("        %s best = %s[(c * %zu + i * %zu) * %zu + j * %zu];\n",
                ctx.value_type(), ctx.current_buffer.c_str(), IH, S, IW, S);
  } else {
    s += ctx.fixed() ? "        acc_t acc = 0;\n" : "        float acc = 0.0f;\n";
  }
  s += format("      L%zu_m: for (int m = 0; m < %zu; ++m) {\n", index, KH);
  s += format("        L%zu_n: for (int n = 0; n < %zu; ++n) {\n", index, KW);
  s += format("          const %s v = %s[(c * %zu + (i * %zu + m)) * %zu + (j * %zu + n)];\n",
              ctx.value_type(), ctx.current_buffer.c_str(), IH, S, IW, S);
  if (is_max) {
    s += "          if (v > best) best = v;\n";
  } else {
    s += ctx.fixed() ? "          acc += (acc_t)v;\n" : "          acc += v;\n";
  }
  s += "        }\n      }\n";
  if (is_max) {
    s += format("      %s[(c * %zu + i) * %zu + j] = best;\n", buf.c_str(), OH, OW);
  } else if (ctx.fixed()) {
    // Symmetric round-half-away integer mean (mirrors nn::forward_fixed).
    const std::size_t window = KH * KW;
    s += format("      const acc_t mean = acc >= 0 ? (acc + %zu) / %zu : -((-acc + %zu) / %zu);\n",
                window / 2, window, window / 2, window);
    s += format("      %s[(c * %zu + i) * %zu + j] = sat(mean);\n", buf.c_str(), OH, OW);
  } else {
    s += format("      %s[(c * %zu + i) * %zu + j] = acc * %s;\n", buf.c_str(), OH, OW,
                float_literal(1.0f / static_cast<float>(KH * KW)).c_str());
  }
  s += "    }\n  }\n}\n\n";

  ctx.current_buffer = buf;
  ctx.current_shape = out_shape;
}

void emit_linear(EmitContext& ctx, const nn::Linear& linear, std::size_t index) {
  const std::string w = format("w_linear%zu", index);
  const std::string b = format("b_linear%zu", index);
  const std::string buf = format("buf_linear%zu", index);
  emit_weight_pair(ctx, w, linear.weights(), b, linear.bias());

  const std::size_t J = linear.out_features(), I = linear.in_features();

  std::string& s = ctx.blocks;
  s += format("  // layer %zu: linear, %zu -> %zu neurons (Eq. 6)\n", index, I, J);
  s += format("  static %s %s[%zu];\n", ctx.value_type(), buf.c_str(), J);
  s += format("L%zu_j: for (int j = 0; j < %zu; ++j) {\n", index, J);
  if (ctx.fixed()) {
    s += format("      acc_t acc = ((acc_t)%s[j]) << FRAC_BITS;\n", b.c_str());
  } else {
    s += format("      float acc = %s[j];\n", b.c_str());
  }
  s += format("  L%zu_i: for (int i = 0; i < %zu; ++i) {\n", index, I);
  if (ctx.optimize) s += "#pragma HLS PIPELINE II=1\n";
  if (ctx.fixed()) {
    s += format("    acc += (acc_t)%s[j * %zu + i] * (acc_t)%s[i];\n", w.c_str(), I,
                ctx.current_buffer.c_str());
  } else {
    s += format("    acc += %s[j * %zu + i] * %s[i];\n", w.c_str(), I,
                ctx.current_buffer.c_str());
  }
  s += "  }\n";
  s += format("  %s[j] = %s;\n", buf.c_str(), ctx.fixed() ? "renorm(acc)" : "acc");
  s += "}\n\n";

  ctx.current_buffer = buf;
  ctx.current_shape = Shape{J};
}

void emit_activation(EmitContext& ctx, const nn::Activation& act, std::size_t index) {
  const std::string buf = format("buf_act%zu", index);
  const std::size_t N = ctx.current_shape.elements();
  const std::string prev = ctx.current_buffer;

  std::string& s = ctx.blocks;
  s += format("  // layer %zu: %s non-linearity\n", index, act.kind().c_str());
  s += format("  static %s %s[%zu];\n", ctx.value_type(), buf.c_str(), N);
  s += format("L%zu_e: for (int e = 0; e < %zu; ++e) {\n", index, N);
  switch (act.act()) {
    case nn::ActKind::kTanh:
      if (ctx.fixed()) {
        s += format("  %s[e] = q(tanhf(dq(%s[e])));\n", buf.c_str(), prev.c_str());
      } else {
        s += format("  %s[e] = tanhf(%s[e]);\n", buf.c_str(), prev.c_str());
      }
      break;
    case nn::ActKind::kSigmoid:
      if (ctx.fixed()) {
        s += format("  %s[e] = q(1.0f / (1.0f + expf(-dq(%s[e]))));\n", buf.c_str(),
                    prev.c_str());
      } else {
        s += format("  %s[e] = 1.0f / (1.0f + expf(-%s[e]));\n", buf.c_str(), prev.c_str());
      }
      break;
    case nn::ActKind::kReLU:
      s += format("  %s[e] = %s[e] > 0 ? %s[e] : 0;\n", buf.c_str(), prev.c_str(),
                  prev.c_str());
      break;
  }
  s += "}\n\n";

  ctx.current_buffer = buf;
}

/// LogSoftMax block writing float log-probabilities into `scores`, identical
/// arithmetic order to nn::LogSoftMax / nn::forward_fixed.
void emit_logsoftmax(EmitContext& ctx, std::size_t classes, const std::string& scores) {
  std::string& s = ctx.blocks;
  const std::string prev = ctx.current_buffer;
  s += "  // output block: LogSoftMax normalization (Eq. 7)\n";
  if (ctx.fixed()) {
    // The normalizer evaluates in float on dequantized logits (the fixed
    // design instantiates one small float datapath here, as the reference
    // fixed-point model does).
    s += format("  static float ls_logits[%zu];\n", classes);
    s += format("LS_dq: for (int k = 0; k < %zu; ++k) {\n", classes);
    s += format("  ls_logits[k] = dq(%s[k]);\n}\n", prev.c_str());
    s += format("  float ls_max = ls_logits[0];\n");
    s += format("LS_max: for (int k = 1; k < %zu; ++k) {\n", classes);
    s += "  if (ls_logits[k] > ls_max) ls_max = ls_logits[k];\n}\n";
    s += "  float ls_sum = 0.0f;\n";
    s += format("LS_sum: for (int k = 0; k < %zu; ++k) {\n", classes);
    s += "  ls_sum += expf(ls_logits[k] - ls_max);\n}\n";
    s += "  const float ls_log = logf(ls_sum);\n";
    s += format("LS_out: for (int k = 0; k < %zu; ++k) {\n", classes);
    s += format("  %s[k] = (ls_logits[k] - ls_max) - ls_log;\n}\n\n", scores.c_str());
  } else {
    s += format("  float ls_max = %s[0];\n", prev.c_str());
    s += format("LS_max: for (int k = 1; k < %zu; ++k) {\n", classes);
    s += format("  if (%s[k] > ls_max) ls_max = %s[k];\n}\n", prev.c_str(), prev.c_str());
    s += "  float ls_sum = 0.0f;\n";
    s += format("LS_sum: for (int k = 0; k < %zu; ++k) {\n", classes);
    s += format("  ls_sum += expf(%s[k] - ls_max);\n}\n", prev.c_str());
    s += "  const float ls_log = logf(ls_sum);\n";
    s += format("LS_out: for (int k = 0; k < %zu; ++k) {\n", classes);
    s += format("  %s[k] = (%s[k] - ls_max) - ls_log;\n}\n\n", scores.c_str(), prev.c_str());
  }
  ctx.current_buffer = scores;
}

void emit_fixed_helpers(std::string& out, const FixedPointFormat& fmt) {
  out += format("// fixed-point plumbing: %s, scale 2^%d, saturating, round-half-up\n",
                fmt.name().c_str(), fmt.frac_bits);
  out += "typedef int fixed_t;       // raw Q values (synthesis: ap_int<TOTAL_BITS>)\n";
  out += "typedef long long acc_t;   // dot-product accumulator\n";
  out += format("#define FRAC_BITS %d\n", fmt.frac_bits);
  out += format("#define FIXED_MAX %lldLL\n", static_cast<long long>(fmt.max_raw()));
  out += format("#define FIXED_MIN (%lldLL)\n", static_cast<long long>(fmt.min_raw()));
  out += format("#define FIXED_SCALE %lldLL\n\n", static_cast<long long>(fmt.scale()));
  out += "static fixed_t sat(acc_t v) {\n";
  out += "  if (v > FIXED_MAX) return (fixed_t)FIXED_MAX;\n";
  out += "  if (v < FIXED_MIN) return (fixed_t)FIXED_MIN;\n";
  out += "  return (fixed_t)v;\n";
  out += "}\n";
  out += "static fixed_t renorm(acc_t a) {\n";
  out += format("  return sat((a + (1LL << (FRAC_BITS - 1))) >> FRAC_BITS);\n");
  out += "}\n";
  out += "static fixed_t q(float v) {\n";
  out += format("  const float s = v * %s;\n",
                float_literal(static_cast<float>(fmt.scale())).c_str());
  out += format("  if (!(s < %s)) return (fixed_t)FIXED_MAX;\n",
                float_literal(static_cast<float>(fmt.max_raw())).c_str());
  out += format("  if (s < %s) return (fixed_t)FIXED_MIN;\n",
                float_literal(static_cast<float>(fmt.min_raw())).c_str());
  out += "  return (fixed_t)lrintf(s);\n";
  out += "}\n";
  out += "static float dq(acc_t v) { return (float)((double)v / (double)FIXED_SCALE); }\n\n";
}

}  // namespace

std::string generate_cpp(const NetworkDescriptor& descriptor, const nn::Network& net,
                         const CodegenOptions& options) {
  check_structure(descriptor, net);
  if (descriptor.precision.is_fixed) descriptor.precision.fixed.validate();

  const std::size_t in_elems = net.input_shape().elements();
  const std::size_t classes = net.output_shape().elements();

  EmitContext ctx;
  ctx.optimize = descriptor.optimize;
  ctx.streamed = descriptor.streamed_weights;
  ctx.numeric = descriptor.precision;
  ctx.current_buffer = "in";
  ctx.current_shape = net.input_shape();

  bool logsoftmax_emitted = false;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::Layer& layer = net.layer(i);
    const Shape& out_shape = net.shape_after(i);
    if (const auto* conv = dynamic_cast<const nn::Conv2D*>(&layer)) {
      emit_conv(ctx, *conv, out_shape, i);
    } else if (const auto* pool = dynamic_cast<const nn::Pool2D*>(&layer)) {
      emit_pool(ctx, *pool, out_shape, i);
    } else if (const auto* linear = dynamic_cast<const nn::Linear*>(&layer)) {
      emit_linear(ctx, *linear, i);
    } else if (const auto* act = dynamic_cast<const nn::Activation*>(&layer)) {
      emit_activation(ctx, *act, i);
    } else if (dynamic_cast<const nn::LogSoftMax*>(&layer) != nullptr) {
      emit_logsoftmax(ctx, classes, "scores");
      logsoftmax_emitted = true;
    } else {
      throw DescriptorError(format("generate_cpp: unsupported layer kind '%s'",
                                   layer.kind().c_str()));
    }
  }

  std::string out;
  out += "// =====================================================================\n";
  out += format("// %s.cpp -- synthesizable CNN generated by cnn2fpga\n",
                util::sanitize_identifier(descriptor.name).c_str());
  out += format("// network: %s   input: %zux%zux%zu   classes: %zu   precision: %s\n",
                descriptor.name.c_str(), descriptor.input_channels, descriptor.input_height,
                descriptor.input_width, classes, descriptor.precision.name().c_str());
  out += format("// board: %s   directives: %s   weights: %s\n", descriptor.board.c_str(),
                descriptor.optimize ? "HLS DATAFLOW + HLS PIPELINE" : "none (naive)",
                descriptor.streamed_weights ? "streamed at start-up" : "hard-coded");
  out += "// Generated file: do not edit. Loop/accumulation order matches the\n";
  out += "// cnn2fpga reference library bit-for-bit.\n";
  out += "// =====================================================================\n";
  out += "#include <math.h>\n\n";

  if (ctx.fixed()) emit_fixed_helpers(out, ctx.numeric.fixed);

  out += "// ---- network parameters (trained offline, hard-coded) ----\n";
  out += ctx.weight_decls;
  out += "\n";

  out += "// ---- feed-forward core: one code block per layer ----\n";
  out += format("int %s(const %s in[%zu], float scores[%zu]) {\n", options.core_function.c_str(),
                ctx.fixed() ? "fixed_t" : "float", in_elems, classes);
  if (descriptor.optimize) out += "#pragma HLS DATAFLOW\n";
  out += ctx.blocks;

  if (!logsoftmax_emitted) {
    out += "  // no LogSoftMax requested: raw class scores\n";
    out += format("RAW_out: for (int k = 0; k < %zu; ++k) {\n", classes);
    if (ctx.fixed()) {
      out += format("  scores[k] = dq(%s[k]);\n}\n\n", ctx.current_buffer.c_str());
    } else {
      out += format("  scores[k] = %s[k];\n}\n\n", ctx.current_buffer.c_str());
    }
  }

  out += "  // predicted class: argmax over the normalized scores\n";
  out += "  int best = 0;\n";
  out += format("ARGMAX: for (int k = 1; k < %zu; ++k) {\n", classes);
  out += "  if (scores[k] > scores[best]) best = k;\n}\n";
  out += "  return best;\n";
  out += "}\n\n";

  out += "// ---- AXI4-Stream top-level wrapper (DMA-facing interface) ----\n";
  out += "#ifdef __SYNTHESIS__\n";
  out += "#include \"hls_stream.h\"\n";
  out += "typedef hls::stream<float> float_stream;\n";
  out += "#else\n";
  out += "#include <deque>\n";
  out += "struct float_stream {  // simulation substitute for hls::stream\n";
  out += "  std::deque<float> q;\n";
  out += "  void write(float v) { q.push_back(v); }\n";
  out += "  float read() { float v = q.front(); q.pop_front(); return v; }\n";
  out += "};\n";
  out += "#endif\n\n";

  std::size_t total_weights = 0;
  for (const auto& [name, count] : ctx.weight_arrays) total_weights += count;

  if (ctx.streamed) {
    out += format("int %s(float_stream &in_stream, float_stream &out_stream, "
                  "int load_weights) {\n",
                  options.top_function.c_str());
  } else {
    out += format("int %s(float_stream &in_stream, float_stream &out_stream) {\n",
                  options.top_function.c_str());
  }
  out += "#pragma HLS INTERFACE axis port=in_stream\n";
  out += "#pragma HLS INTERFACE axis port=out_stream\n";
  out += "#pragma HLS INTERFACE s_axilite port=return\n";
  if (ctx.streamed) {
    out += "#pragma HLS INTERFACE s_axilite port=load_weights\n";
    out += format("  // start-up weight upload: %zu words in Network::params() order\n",
                  total_weights);
    out += "  if (load_weights) {\n";
    for (const auto& [name, count] : ctx.weight_arrays) {
      out += format("  WLOAD_%s: for (int e = 0; e < %zu; ++e) {\n", name.c_str(), count);
      out += format("    %s[e] = %s;\n  }\n", name.c_str(),
                    ctx.fixed() ? "q(in_stream.read())" : "in_stream.read()");
    }
    out += "    return 0;\n";
    out += "  }\n";
  }
  out += format("  %s in[%zu];\n", ctx.fixed() ? "fixed_t" : "float", in_elems);
  out += format("READ_in: for (int e = 0; e < %zu; ++e) {\n", in_elems);
  out += ctx.fixed() ? "  in[e] = q(in_stream.read());\n}\n" : "  in[e] = in_stream.read();\n}\n";
  out += format("  float scores[%zu];\n", classes);
  out += format("  const int predicted = %s(in, scores);\n", options.core_function.c_str());
  out += format("WRITE_out: for (int k = 0; k < %zu; ++k) {\n", classes);
  out += "  out_stream.write(scores[k]);\n}\n";
  out += "  out_stream.write((float)predicted);\n";
  out += "  return predicted;\n";
  out += "}\n";

  if (options.emit_testbench) {
    out += "\n// ---- host testbench (not synthesized) ----\n";
    out += "#ifdef CNN2FPGA_TESTBENCH\n";
    out += "#include <stdio.h>\n";
    out += "int main() {\n";
    out += "  float_stream in_stream, out_stream;\n";
    if (ctx.streamed) {
      out += format("  // streamed-weights design: the first %zu stdin values are the\n",
                    total_weights);
      out += "  // parameter upload (Network::params() order), then the image.\n";
      out += format("  for (int e = 0; e < %zu; ++e) {\n", total_weights);
      out += "    float v;\n";
      out +=
          "    if (scanf(\"%a\", &v) != 1) { fprintf(stderr, \"short weights\\n\"); return 2; }\n";
      out += "    in_stream.write(v);\n";
      out += "  }\n";
      out += format("  (void)%s(in_stream, out_stream, /*load_weights=*/1);\n",
                    options.top_function.c_str());
    }
    out += format("  for (int e = 0; e < %zu; ++e) {\n", in_elems);
    out += "    float v;\n";
    out += "    if (scanf(\"%a\", &v) != 1) { fprintf(stderr, \"short input\\n\"); return 2; }\n";
    out += "    in_stream.write(v);\n";
    out += "  }\n";
    if (ctx.streamed) {
      out += format("  const int predicted = %s(in_stream, out_stream, 0);\n",
                    options.top_function.c_str());
    } else {
      out += format("  const int predicted = %s(in_stream, out_stream);\n",
                    options.top_function.c_str());
    }
    out += format("  for (int k = 0; k < %zu; ++k) printf(\"%%a\\n\", out_stream.read());\n",
                  classes);
    out += "  (void)out_stream.read();  // predicted index echoed on the stream\n";
    out += "  printf(\"%d\\n\", predicted);\n";
    out += "  return 0;\n";
    out += "}\n";
    out += "#endif  // CNN2FPGA_TESTBENCH\n";
  }

  return out;
}

}  // namespace cnn2fpga::core
