#include "core/descriptor.hpp"

#include "hls/device.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::core {

using cnn2fpga::util::format;

namespace {

std::size_t require_positive(const json::Value& obj, const std::string& key,
                             const std::string& context) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw DescriptorError(format("%s: missing required field '%s'", context.c_str(),
                                 key.c_str()));
  }
  long value;
  try {
    value = v->as_int();
  } catch (const json::JsonError&) {
    throw DescriptorError(format("%s: field '%s' must be an integer", context.c_str(),
                                 key.c_str()));
  }
  if (value <= 0) {
    throw DescriptorError(format("%s: field '%s' must be positive, got %ld", context.c_str(),
                                 key.c_str(), value));
  }
  return static_cast<std::size_t>(value);
}

std::optional<nn::ActKind> parse_activation(const json::Value& obj,
                                            const std::string& context) {
  const json::Value* act = obj.find("activation");
  if (act == nullptr || act->is_null()) return std::nullopt;
  if (!act->is_string()) {
    throw DescriptorError(context + ": 'activation' must be a string");
  }
  const std::string name = act->as_string();
  if (name == "none") return std::nullopt;
  if (name == "tanh") return nn::ActKind::kTanh;
  if (name == "relu") return nn::ActKind::kReLU;
  if (name == "sigmoid") return nn::ActKind::kSigmoid;
  throw DescriptorError(format("%s: activation '%s' unknown (none, tanh, relu, sigmoid)",
                               context.c_str(), name.c_str()));
}

PoolSpec parse_pool(const json::Value& obj, const std::string& context) {
  PoolSpec pool;
  const std::string type = obj.get_string("type", "max");
  if (type == "max") {
    pool.kind = nn::PoolKind::kMax;
  } else if (type == "mean") {
    pool.kind = nn::PoolKind::kMean;
  } else {
    throw DescriptorError(format("%s: pool type '%s' unknown (use 'max' or 'mean')",
                                 context.c_str(), type.c_str()));
  }
  pool.kernel = require_positive(obj, "kernel", context + ".pool");
  pool.step = obj.find("step") != nullptr
                  ? require_positive(obj, "step", context + ".pool")
                  : pool.kernel;  // default: non-overlapping windows
  return pool;
}

LayerSpec parse_layer(const json::Value& obj, std::size_t index) {
  const std::string context = format("layers[%zu]", index);
  if (!obj.is_object()) throw DescriptorError(context + ": must be an object");

  const std::string type = obj.get_string("type", "");
  LayerSpec spec;
  if (type == "conv") {
    spec.type = LayerSpec::Type::kConv;
    spec.conv.feature_maps_out = require_positive(obj, "feature_maps_out", context);
    if (obj.find("kernel") != nullptr) {
      spec.conv.kernel_h = spec.conv.kernel_w = require_positive(obj, "kernel", context);
    } else {
      spec.conv.kernel_h = require_positive(obj, "kernel_h", context);
      spec.conv.kernel_w = require_positive(obj, "kernel_w", context);
    }
    spec.conv.activation = parse_activation(obj, context);
    if (const json::Value* pool = obj.find("pool"); pool != nullptr && !pool->is_null()) {
      spec.conv.pool = parse_pool(*pool, context);
    }
  } else if (type == "linear") {
    spec.type = LayerSpec::Type::kLinear;
    spec.linear.neurons = require_positive(obj, "neurons", context);
    spec.linear.activation = parse_activation(obj, context);
    // Back-compat with the paper's GUI flag.
    if (!spec.linear.activation && obj.get_bool("tanh", false)) {
      spec.linear.activation = nn::ActKind::kTanh;
    }
  } else {
    throw DescriptorError(format("%s: layer type '%s' unknown (use 'conv' or 'linear')",
                                 context.c_str(), type.c_str()));
  }
  return spec;
}

}  // namespace

NetworkDescriptor NetworkDescriptor::from_json(const json::Value& doc) {
  if (!doc.is_object()) throw DescriptorError("descriptor: document must be a JSON object");

  NetworkDescriptor d;
  if (const json::Value* version = doc.find("schema_version"); version != nullptr) {
    long declared;
    try {
      declared = version->as_int();
    } catch (const json::JsonError&) {
      throw DescriptorError("descriptor: 'schema_version' must be an integer");
    }
    if (declared != NetworkDescriptor::kSchemaVersion) {
      throw DescriptorError(format(
          "descriptor: schema_version %ld is not supported (this build reads version %d)",
          declared, NetworkDescriptor::kSchemaVersion));
    }
    d.schema_version = static_cast<int>(declared);
  }
  d.name = doc.get_string("name", "cnn");
  d.board = doc.get_string("board", "zedboard");
  d.optimize = doc.get_bool("optimize", false);
  d.logsoftmax = doc.get_bool("logsoftmax", true);

  if (const json::Value* precision = doc.find("precision"); precision != nullptr) {
    if (precision->is_string()) {
      const std::string name = precision->as_string();
      if (name != "float32" && name != "float") {
        throw DescriptorError(format(
            "descriptor: precision '%s' unknown (use \"float32\" or a fixed object)",
            name.c_str()));
      }
      d.precision = nn::NumericFormat::float32();
    } else if (precision->is_object()) {
      if (precision->get_string("type", "") != "fixed") {
        throw DescriptorError("descriptor: precision object requires \"type\": \"fixed\"");
      }
      const long total = precision->get_int("total_bits", 16);
      const long frac = precision->get_int("frac_bits", 8);
      try {
        d.precision = nn::NumericFormat::fixed_point(static_cast<int>(total),
                                                     static_cast<int>(frac));
      } catch (const std::invalid_argument& e) {
        throw DescriptorError(format("descriptor: %s", e.what()));
      }
    } else {
      throw DescriptorError("descriptor: 'precision' must be a string or object");
    }
  }

  const json::Value* input = doc.find("input");
  if (input == nullptr || !input->is_object()) {
    throw DescriptorError("descriptor: missing 'input' object");
  }
  d.input_channels = require_positive(*input, "channels", "input");
  d.input_height = require_positive(*input, "height", "input");
  d.input_width = require_positive(*input, "width", "input");

  if (const json::Value* clock = doc.find("clock_mhz"); clock != nullptr) {
    if (!clock->is_number()) throw DescriptorError("descriptor: 'clock_mhz' must be a number");
    d.clock_mhz = clock->as_double();
    if (d.clock_mhz < 50.0 || d.clock_mhz > 250.0) {
      throw DescriptorError(format(
          "descriptor: clock_mhz %.1f outside the supported 50..250 MHz range", d.clock_mhz));
    }
  }

  if (const json::Value* mode = doc.find("weights_mode"); mode != nullptr) {
    const std::string name = mode->is_string() ? mode->as_string() : "";
    if (name == "hardcoded") {
      d.streamed_weights = false;
    } else if (name == "streamed") {
      d.streamed_weights = true;
    } else {
      throw DescriptorError(
          "descriptor: weights_mode must be \"hardcoded\" or \"streamed\"");
    }
  }

  const json::Value* layers = doc.find("layers");
  if (layers == nullptr || !layers->is_array()) {
    throw DescriptorError("descriptor: missing 'layers' array");
  }
  for (std::size_t i = 0; i < layers->as_array().size(); ++i) {
    d.layers.push_back(parse_layer(layers->as_array()[i], i));
  }

  d.validate();
  return d;
}

NetworkDescriptor NetworkDescriptor::from_json_text(const std::string& text) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const json::JsonError& e) {
    throw DescriptorError(format("descriptor: %s", e.what()));
  }
  return from_json(doc);
}

json::Value NetworkDescriptor::to_json() const {
  json::Object doc;
  doc["schema_version"] = kSchemaVersion;
  doc["name"] = name;
  doc["board"] = board;
  doc["optimize"] = optimize;
  doc["logsoftmax"] = logsoftmax;
  if (precision.is_fixed) {
    json::Object prec;
    prec["type"] = "fixed";
    prec["total_bits"] = precision.fixed.total_bits;
    prec["frac_bits"] = precision.fixed.frac_bits;
    doc["precision"] = std::move(prec);
  } else {
    doc["precision"] = "float32";
  }
  doc["weights_mode"] = streamed_weights ? "streamed" : "hardcoded";
  if (clock_mhz > 0.0) doc["clock_mhz"] = clock_mhz;
  json::Object input;
  input["channels"] = input_channels;
  input["height"] = input_height;
  input["width"] = input_width;
  doc["input"] = std::move(input);

  json::Array layer_array;
  for (const LayerSpec& spec : layers) {
    json::Object layer;
    const auto activation_name = [](nn::ActKind kind) {
      switch (kind) {
        case nn::ActKind::kTanh: return "tanh";
        case nn::ActKind::kReLU: return "relu";
        case nn::ActKind::kSigmoid: return "sigmoid";
      }
      return "none";
    };
    if (spec.type == LayerSpec::Type::kConv) {
      layer["type"] = "conv";
      layer["feature_maps_out"] = spec.conv.feature_maps_out;
      layer["kernel_h"] = spec.conv.kernel_h;
      layer["kernel_w"] = spec.conv.kernel_w;
      if (spec.conv.activation) layer["activation"] = activation_name(*spec.conv.activation);
      if (spec.conv.pool) {
        json::Object pool;
        pool["type"] = spec.conv.pool->kind == nn::PoolKind::kMax ? "max" : "mean";
        pool["kernel"] = spec.conv.pool->kernel;
        pool["step"] = spec.conv.pool->step;
        layer["pool"] = std::move(pool);
      }
    } else {
      layer["type"] = "linear";
      layer["neurons"] = spec.linear.neurons;
      if (spec.linear.activation) {
        layer["activation"] = activation_name(*spec.linear.activation);
      }
    }
    layer_array.push_back(std::move(layer));
  }
  doc["layers"] = std::move(layer_array);
  return json::Value(std::move(doc));
}

void NetworkDescriptor::validate() const {
  if (name.empty()) throw DescriptorError("descriptor: 'name' must not be empty");
  if (!hls::find_device(board)) {
    std::string known;
    for (const hls::FpgaDevice& dev : hls::device_catalog()) {
      if (!known.empty()) known += ", ";
      known += dev.board;
    }
    throw DescriptorError(format("descriptor: board '%s' not supported (available: %s)",
                                 board.c_str(), known.c_str()));
  }
  if (layers.empty()) throw DescriptorError("descriptor: at least one layer is required");

  // The paper's CNN structure: the convolutional part strictly precedes the
  // linear part (Fig. 1), and the network must end in a linear layer so the
  // LogSoftMax output has class scores to normalize.
  bool seen_linear = false;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (layers[i].type == LayerSpec::Type::kLinear) {
      seen_linear = true;
    } else if (seen_linear) {
      throw DescriptorError(format(
          "layers[%zu]: convolutional layer after a linear layer; the "
          "convolutional part must precede the linear part", i));
    }
  }
  if (layers.back().type != LayerSpec::Type::kLinear) {
    throw DescriptorError("descriptor: the last layer must be linear (class scores)");
  }

  // Shape feasibility: building the network performs per-layer checks and
  // throws std::invalid_argument on e.g. a kernel larger than its input;
  // rewrap as DescriptorError for a uniform error surface.
  try {
    (void)build_network_unchecked_();
  } catch (const std::invalid_argument& e) {
    throw DescriptorError(format("descriptor: infeasible network shape: %s", e.what()));
  }
}

nn::Network NetworkDescriptor::build_network() const {
  validate();
  return build_network_unchecked_();
}

nn::Network NetworkDescriptor::build_network_unchecked_() const {
  nn::Network net(nn::Shape{input_channels, input_height, input_width}, name);
  for (const LayerSpec& spec : layers) {
    if (spec.type == LayerSpec::Type::kConv) {
      net.add_conv(spec.conv.feature_maps_out, spec.conv.kernel_h, spec.conv.kernel_w);
      if (spec.conv.activation) net.add_activation(*spec.conv.activation);
      if (spec.conv.pool) {
        if (spec.conv.pool->kind == nn::PoolKind::kMax) {
          net.add_max_pool(spec.conv.pool->kernel, spec.conv.pool->step);
        } else {
          net.add_mean_pool(spec.conv.pool->kernel, spec.conv.pool->step);
        }
      }
    } else {
      net.add_linear(spec.linear.neurons);
      if (spec.linear.activation) net.add_activation(*spec.linear.activation);
    }
  }
  if (logsoftmax) net.add_logsoftmax();
  return net;
}

std::size_t NetworkDescriptor::num_classes() const {
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    if (it->type == LayerSpec::Type::kLinear) return it->linear.neurons;
  }
  return 0;
}

}  // namespace cnn2fpga::core
