// Automated design-space exploration.
//
// The paper's authors explored the directive space by hand ("we followed this
// approach in order to come up with the Vivado optimization directives we
// applied", Sec. V-E). This module automates that exploration across every
// axis the framework controls — target board, optimization directives and
// numeric precision — evaluating each candidate with the HLS and power models
// and returning the feasible Pareto front plus a recommendation for a chosen
// objective.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/descriptor.hpp"
#include "hls/estimator.hpp"
#include "power/power_model.hpp"

namespace cnn2fpga::core {

struct DsePoint {
  std::string board;
  bool optimize = false;
  nn::NumericFormat precision;

  bool fits = false;
  std::uint64_t latency_cycles = 0;
  std::uint64_t interval_cycles = 0;
  double latency_seconds = 0.0;      ///< per-image, incl. blocking driver overhead
  double images_per_second = 0.0;    ///< steady-state streaming throughput
  double power_w = 0.0;
  double joules_per_image = 0.0;
  hls::Utilization util;

  std::string label() const;  ///< e.g. "zedboard / DATAFLOW+PIPELINE / Q8.8"
};

enum class DseObjective { kThroughput, kEnergy, kLatency };

DseObjective parse_objective(const std::string& name);  ///< throws DescriptorError
const char* objective_name(DseObjective objective);

struct DseOptions {
  /// Boards to consider; empty = the full device catalog.
  std::vector<std::string> boards;
  /// Precisions to consider; empty = {float32, Q8.8}.
  std::vector<nn::NumericFormat> precisions;
  /// Explore naive as well as optimized directive sets.
  bool explore_directives = true;
  DseObjective objective = DseObjective::kThroughput;
};

struct DseResult {
  std::vector<DsePoint> points;        ///< every evaluated candidate
  /// Indices into `points`: the feasible Pareto front over (throughput up,
  /// power down), sorted by descending throughput.
  std::vector<std::size_t> pareto;
  /// Index of the objective-optimal feasible point; nullopt if nothing fits.
  std::optional<std::size_t> best;

  std::string to_string() const;  ///< rendered table + recommendation
};

/// Evaluate the whole space for the architecture described by `base` (its
/// own board/optimize/precision fields are ignored; the sweep covers them).
DseResult explore_design_space(const NetworkDescriptor& base, const DseOptions& options = {});

}  // namespace cnn2fpga::core
