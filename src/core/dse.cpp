#include "core/dse.hpp"

#include <algorithm>

#include "axi/block_design.hpp"  // kBlockingDriverSeconds, kStreamingDriverSeconds
#include "util/strings.hpp"
#include "util/table.hpp"

namespace cnn2fpga::core {

using cnn2fpga::util::format;

std::string DsePoint::label() const {
  return format("%s / %s / %s", board.c_str(), optimize ? "DATAFLOW+PIPELINE" : "naive",
                precision.name().c_str());
}

DseObjective parse_objective(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "throughput") return DseObjective::kThroughput;
  if (lower == "energy") return DseObjective::kEnergy;
  if (lower == "latency") return DseObjective::kLatency;
  throw DescriptorError(format(
      "objective '%s' unknown (throughput, energy, latency)", name.c_str()));
}

const char* objective_name(DseObjective objective) {
  switch (objective) {
    case DseObjective::kThroughput: return "throughput";
    case DseObjective::kEnergy: return "energy";
    case DseObjective::kLatency: return "latency";
  }
  return "?";
}

namespace {

DsePoint evaluate(const nn::Network& net, const std::string& board, bool optimize,
                  const nn::NumericFormat& precision, const hls::FpgaDevice& device) {
  DsePoint point;
  point.board = board;
  point.optimize = optimize;
  point.precision = precision;

  const hls::DirectiveSet directives =
      optimize ? hls::DirectiveSet::optimized() : hls::DirectiveSet::naive();
  const hls::HlsReport report = hls::estimate(net, directives, device, precision);

  point.fits = report.fits();
  point.latency_cycles = report.latency_cycles;
  point.interval_cycles = report.interval_cycles;
  point.latency_seconds = report.latency_seconds() + axi::kBlockingDriverSeconds;
  point.images_per_second =
      1.0 / (report.interval_seconds() + axi::kStreamingDriverSeconds);
  point.power_w = power::hardware_power_w(report.usage);
  point.joules_per_image = point.power_w * point.latency_seconds;
  point.util = report.util;
  return point;
}

double score(const DsePoint& point, DseObjective objective) {
  // Lower is better.
  switch (objective) {
    case DseObjective::kThroughput: return -point.images_per_second;
    case DseObjective::kEnergy: return point.joules_per_image;
    case DseObjective::kLatency: return point.latency_seconds;
  }
  return 0.0;
}

}  // namespace

DseResult explore_design_space(const NetworkDescriptor& base, const DseOptions& options) {
  std::vector<std::string> boards = options.boards;
  if (boards.empty()) {
    for (const hls::FpgaDevice& device : hls::device_catalog()) boards.push_back(device.board);
  }
  std::vector<nn::NumericFormat> precisions = options.precisions;
  if (precisions.empty()) {
    precisions = {nn::NumericFormat::float32(), nn::NumericFormat::fixed_point(16, 8)};
  }
  const std::vector<bool> directive_choices =
      options.explore_directives ? std::vector<bool>{false, true} : std::vector<bool>{true};

  // The architecture is fixed; only the implementation axes vary.
  NetworkDescriptor architecture = base;
  architecture.board = "zedboard";  // any valid board; build_network ignores it
  const nn::Network net = architecture.build_network();

  DseResult result;
  for (const std::string& board : boards) {
    const auto device = hls::find_device(board);
    if (!device) {
      throw DescriptorError(format("explore_design_space: unknown board '%s'", board.c_str()));
    }
    for (const bool optimize : directive_choices) {
      for (const nn::NumericFormat& precision : precisions) {
        result.points.push_back(evaluate(net, board, optimize, precision, *device));
      }
    }
  }

  // Feasible Pareto front over (images_per_second maximize, power minimize).
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const DsePoint& a = result.points[i];
    if (!a.fits) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < result.points.size() && !dominated; ++j) {
      if (i == j) continue;
      const DsePoint& b = result.points[j];
      if (!b.fits) continue;
      const bool no_worse =
          b.images_per_second >= a.images_per_second && b.power_w <= a.power_w;
      const bool strictly_better =
          b.images_per_second > a.images_per_second || b.power_w < a.power_w;
      dominated = no_worse && strictly_better;
    }
    if (!dominated) result.pareto.push_back(i);
  }
  std::sort(result.pareto.begin(), result.pareto.end(), [&](std::size_t a, std::size_t b) {
    return result.points[a].images_per_second > result.points[b].images_per_second;
  });

  // Objective-optimal feasible point.
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (!result.points[i].fits) continue;
    if (!result.best ||
        score(result.points[i], options.objective) <
            score(result.points[*result.best], options.objective)) {
      result.best = i;
    }
  }
  return result;
}

std::string DseResult::to_string() const {
  util::Table table({"configuration", "fits", "latency", "imgs/s", "power", "mJ/img",
                     "DSP%", "BRAM%", "pareto"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DsePoint& p = points[i];
    const bool on_front = std::find(pareto.begin(), pareto.end(), i) != pareto.end();
    table.add_row({p.label(), p.fits ? "yes" : "NO",
                   util::human_seconds(p.latency_seconds),
                   format("%.0f", p.images_per_second), format("%.2fW", p.power_w),
                   format("%.3f", p.joules_per_image * 1e3),
                   format("%.1f%%", p.util.dsp * 100), format("%.1f%%", p.util.bram * 100),
                   on_front ? "*" : ""});
  }
  std::string out = table.render();
  if (best) {
    out += format("recommended: %s\n", points[*best].label().c_str());
  } else {
    out += "no feasible configuration for this architecture\n";
  }
  return out;
}

}  // namespace cnn2fpga::core
