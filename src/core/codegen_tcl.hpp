// Tcl script generator (the paper's "second wrapper", Sec. IV-A/B).
//
// Emits the three scripts the framework returns to the user:
//   cnn_vivado_hls.tcl  -- drives Vivado HLS: project setup, top function,
//                          target part and clock, sources directives.tcl,
//                          C synthesis and IP export;
//   directives.tcl      -- interface and optimization directives (AXI4-Stream
//                          ports, and in optimized mode DATAFLOW + PIPELINE
//                          on the convolutional/linear reduction loops);
//   cnn_vivado.tcl      -- drives Vivado Design Suite: builds the Fig. 5
//                          block design (ZYNQ7 PS, AXI DMA, two AXI
//                          interconnects, Processor System Reset, the CNN IP
//                          core), validates it, wraps it and launches the
//                          synthesis flow through bitstream generation.
//
// These scripts are faithful to the Vivado 2015.2 tcl API so a user with a
// license can run them unmodified; in this repository their content is
// validated structurally by the test suite.
#pragma once

#include <map>
#include <string>

#include "core/descriptor.hpp"

namespace cnn2fpga::core {

std::string generate_vivado_hls_tcl(const NetworkDescriptor& descriptor);
std::string generate_directives_tcl(const NetworkDescriptor& descriptor, const nn::Network& net);
std::string generate_vivado_tcl(const NetworkDescriptor& descriptor);

/// All three, keyed by file name.
std::map<std::string, std::string> generate_tcl_files(const NetworkDescriptor& descriptor,
                                                      const nn::Network& net);

}  // namespace cnn2fpga::core
