// The network descriptor: the JSON document the web GUI produces and the
// generator back-end consumes (paper Sec. IV-A, Fig. 3/4).
//
// The GUI collects: the input dimensions, the number and configuration of
// convolutional layers (kernel count/size + optional integrated max-pooling,
// Fig. 4), the linear layers (neuron count + optional tanh), and the target
// board. A LogSoftMax block is appended by default. This module parses,
// validates and serializes that document and builds the equivalent reference
// network.
//
// Example:
//   {
//     "name": "usps_test1",
//     "board": "zedboard",
//     "input": {"channels": 1, "height": 16, "width": 16},
//     "optimize": true,
//     "layers": [
//       {"type": "conv", "feature_maps_out": 6, "kernel": 5,
//        "pool": {"type": "max", "kernel": 2, "step": 2}},
//       {"type": "linear", "neurons": 10, "tanh": false}
//     ]
//   }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace cnn2fpga::core {

/// Thrown on structurally/semantically invalid descriptors.
class DescriptorError : public std::runtime_error {
 public:
  explicit DescriptorError(const std::string& what) : std::runtime_error(what) {}
};

struct PoolSpec {
  nn::PoolKind kind = nn::PoolKind::kMax;
  std::size_t kernel = 2;
  std::size_t step = 2;
};

struct ConvLayerSpec {
  std::size_t feature_maps_out = 1;  ///< number of kernels (Fig. 4 "Feature maps out")
  std::size_t kernel_h = 5;
  std::size_t kernel_w = 5;
  /// Optional non-linearity applied before the sub-sampling stage (paper
  /// Sec. III-A: ReLU/tanh/sigmoid "to emphasize relevant features").
  /// JSON: "activation": "none" | "tanh" | "relu" | "sigmoid".
  std::optional<nn::ActKind> activation;
  std::optional<PoolSpec> pool;      ///< integrated sub-sampling stage
};

struct LinearLayerSpec {
  std::size_t neurons = 1;
  /// Optional non-linearity at the end of the layer. The paper's GUI offers
  /// tanh (JSON "tanh": true, still accepted); "activation" generalizes it.
  std::optional<nn::ActKind> activation;
};

struct LayerSpec {
  enum class Type { kConv, kLinear } type = Type::kConv;
  ConvLayerSpec conv;
  LinearLayerSpec linear;
};

struct NetworkDescriptor {
  /// Version of the descriptor JSON schema this library reads and writes.
  /// Bump when a change would make old readers misinterpret new documents.
  static constexpr int kSchemaVersion = 1;

  /// Declared schema version of the parsed document. Documents without a
  /// "schema_version" field are treated as version 1 (every descriptor ever
  /// produced before the field existed); any other value is rejected by
  /// from_json. to_json always emits the current kSchemaVersion.
  int schema_version = kSchemaVersion;
  std::string name = "cnn";
  std::string board = "zedboard";
  std::size_t input_channels = 1;
  std::size_t input_height = 16;
  std::size_t input_width = 16;
  bool optimize = false;     ///< apply HLS DATAFLOW + PIPELINE directives
  bool logsoftmax = true;    ///< appended by default (paper Sec. IV-A)
  /// Numeric format of the generated design. The paper uses float32
  /// throughout (Sec. V); fixed-point is this library's extension, cutting
  /// DSP/BRAM pressure at a small accuracy cost. JSON forms:
  ///   "precision": "float32"
  ///   "precision": {"type": "fixed", "total_bits": 16, "frac_bits": 8}
  nn::NumericFormat precision;
  /// Where the parameters live. The paper hard-codes them into the source
  /// ("included the hard-coded weights", Sec. IV-A); "streamed" instead loads
  /// them over the AXI stream at start-up (the off-chip-weight style of the
  /// related-work accelerators [7][8]) — same BRAM, RAM instead of ROM, a new
  /// network without re-synthesis, at the cost of a one-time upload.
  /// JSON: "weights_mode": "hardcoded" (default) | "streamed".
  bool streamed_weights = false;
  /// Target fabric clock in MHz; 0 = the board default (100 MHz, the paper's
  /// operating point). Feeds the HLS `create_clock` period and every
  /// cycles-to-seconds conversion. JSON: "clock_mhz": 125.
  double clock_mhz = 0.0;
  std::vector<LayerSpec> layers;

  /// Parse and fully validate a JSON document. All errors raise
  /// DescriptorError with a message naming the offending field.
  static NetworkDescriptor from_json(const json::Value& doc);
  static NetworkDescriptor from_json_text(const std::string& text);

  json::Value to_json() const;

  /// Semantic validation: positive dimensions, known board, convolutional
  /// layers before linear ones (the paper's CNN structure), and shape
  /// feasibility (kernels fit their inputs all the way through the network).
  /// Called by from_json; call again after programmatic mutation.
  void validate() const;

  /// Build the equivalent reference network (weights uninitialized).
  nn::Network build_network() const;

  /// Output class count (neurons of the last linear layer).
  std::size_t num_classes() const;

 private:
  /// Builds without re-running validate() (validate() itself uses this to
  /// check shape feasibility; layer constructors do their own shape checks).
  nn::Network build_network_unchecked_() const;
};

}  // namespace cnn2fpga::core
