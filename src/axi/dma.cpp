#include "axi/dma.hpp"

namespace cnn2fpga::axi {

std::uint64_t AxiDma::mm2s(std::span<const float> data) {
  std::uint64_t cycles = kSetupCycles;
  for (std::size_t i = 0; i < data.size(); ++i) {
    to_ip_.push_float(data[i], /*last=*/i + 1 == data.size());
    ++cycles;
  }
  ++mm2s_stats_.transfers;
  mm2s_stats_.words += data.size();
  mm2s_stats_.cycles += cycles;
  return cycles;
}

std::uint64_t AxiDma::s2mm(std::span<float> out, bool* ok) {
  std::uint64_t cycles = kSetupCycles;
  bool success = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto beat = from_ip_.pop();
    if (!beat) {
      success = false;  // stream underflow: IP produced fewer words than expected
      break;
    }
    out[i] = bits_to_float(beat->data);
    ++cycles;
    const bool expect_last = (i + 1 == out.size());
    if (beat->last != expect_last) {
      success = false;  // packet framing error
      break;
    }
  }
  ++s2mm_stats_.transfers;
  s2mm_stats_.words += out.size();
  s2mm_stats_.cycles += cycles;
  if (!success) ++s2mm_stats_.errors;
  if (ok != nullptr) *ok = success;
  return cycles;
}

}  // namespace cnn2fpga::axi
