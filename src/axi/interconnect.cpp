#include "axi/interconnect.hpp"

namespace cnn2fpga::axi {

std::uint64_t AxiInterconnect::record_burst(std::uint64_t byte_count) {
  ++bursts_;
  bytes_ += byte_count;
  return kArbitrationCycles;
}

}  // namespace cnn2fpga::axi
