// The CNN IP core inside the fabric model.
//
// Functionally it executes the reference network (whose layer loops are
// ordered exactly as the generated HLS C++, so predictions match the
// generated design bit-for-bit); temporally it charges the latency the HLS
// simulator reports for the chosen directive set.
//
// Packet protocol (matching the generated cnn_top wrapper):
//   in:  C*H*W float words, TLAST on the final pixel;
//   out: num_classes log-probability words followed by the predicted class
//        index (as float), TLAST on the index word.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/stream.hpp"
#include "hls/estimator.hpp"
#include "nn/execution.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace cnn2fpga::axi {

struct IpRunResult {
  bool ok = false;             ///< false on stream underflow / framing error
  std::size_t predicted = 0;
  std::vector<float> scores;   ///< log-probabilities
  std::uint64_t cycles = 0;    ///< fabric cycles consumed by this invocation
};

class CnnIpCore {
 public:
  /// `net` must outlive the core. The HLS report is synthesized on
  /// construction for the given directives/device/numeric format; fixed-point
  /// designs execute the bit-exact quantized model (nn::forward_fixed).
  CnnIpCore(nn::Network& net, const hls::DirectiveSet& directives,
            const hls::FpgaDevice& device,
            const nn::NumericFormat& format = nn::NumericFormat::float32(),
            bool streamed_weights = false);

  /// Streamed-weights designs: consume one parameter-upload packet (all
  /// parameter words in Network::params() order, TLAST on the final word)
  /// and install the values into the network. Returns false on a malformed
  /// packet. No-op (returns false) on hard-coded designs.
  bool load_weights(AxiStreamChannel& in);

  bool weights_ready() const { return !streamed_weights_ || weights_loaded_; }
  bool streamed_weights() const { return streamed_weights_; }

  /// Consume one input packet from `in`, classify, emit one output packet to
  /// `out`. On a malformed packet the core drains nothing further and
  /// reports ok=false (the real core would hang; the model fails fast).
  IpRunResult run(AxiStreamChannel& in, AxiStreamChannel& out);

  const hls::HlsReport& report() const { return report_; }
  std::uint64_t invocations() const { return invocations_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::size_t input_words() const { return input_words_; }
  std::size_t output_words() const { return output_words_; }

 private:
  nn::Network& net_;
  nn::ExecutionContext ctx_;  ///< reused float-path arenas (one run at a time)
  nn::NumericFormat format_;
  bool streamed_weights_ = false;
  bool weights_loaded_ = false;
  hls::HlsReport report_;
  std::size_t input_words_;
  std::size_t output_words_;
  std::uint64_t invocations_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace cnn2fpga::axi
