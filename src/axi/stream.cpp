#include "axi/stream.hpp"

#include <cstring>

namespace cnn2fpga::axi {

std::uint32_t float_to_bits(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

float bits_to_float(std::uint32_t bits) {
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

AxiStreamChannel::AxiStreamChannel(std::size_t depth) : depth_(depth) {}

void AxiStreamChannel::push(StreamBeat beat) {
  if (fifo_.size() >= depth_) ++backpressure_events_;
  fifo_.push_back(beat);
  ++total_beats_;
  if (fifo_.size() > high_water_) high_water_ = fifo_.size();
}

void AxiStreamChannel::push_float(float value, bool last) {
  push({float_to_bits(value), last});
}

std::optional<StreamBeat> AxiStreamChannel::pop() {
  if (fifo_.empty()) return std::nullopt;
  StreamBeat beat = fifo_.front();
  fifo_.pop_front();
  return beat;
}

std::optional<float> AxiStreamChannel::pop_float() {
  const auto beat = pop();
  if (!beat) return std::nullopt;
  return bits_to_float(beat->data);
}

void AxiStreamChannel::clear() { fifo_.clear(); }

}  // namespace cnn2fpga::axi
