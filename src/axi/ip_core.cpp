#include "axi/ip_core.hpp"

#include "nn/fixed_inference.hpp"

namespace cnn2fpga::axi {

CnnIpCore::CnnIpCore(nn::Network& net, const hls::DirectiveSet& directives,
                     const hls::FpgaDevice& device, const nn::NumericFormat& format,
                     bool streamed_weights)
      // The functional model must match the generated HLS C++ (and
      // Network::forward) bit-for-bit, so it pins the scalar kernel engine
      // regardless of the process-wide SIMD dispatch.
    : net_(net),
      ctx_(net, nn::kernels::Kind::kScalar, nullptr),
      format_(format),
      streamed_weights_(streamed_weights),
      report_(hls::estimate(net, directives, device, format, streamed_weights)),
      input_words_(net.input_shape().elements()),
      output_words_(net.output_shape().elements() + 1) {}

bool CnnIpCore::load_weights(AxiStreamChannel& in) {
  if (!streamed_weights_) return false;
  const std::vector<nn::Param> params = net_.params();
  std::size_t remaining = 0;
  for (const nn::Param& p : params) remaining += p.value->size();

  for (const nn::Param& p : params) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      const auto beat = in.pop();
      if (!beat) return false;
      --remaining;
      const bool expect_last = remaining == 0;
      if (beat->last != expect_last) return false;
      (*p.value)[i] = bits_to_float(beat->data);
    }
  }
  weights_loaded_ = true;
  return true;
}

IpRunResult CnnIpCore::run(AxiStreamChannel& in, AxiStreamChannel& out) {
  IpRunResult result;
  if (!weights_ready()) return result;  // classify before upload: refuse

  nn::Tensor image(net_.input_shape());
  for (std::size_t i = 0; i < input_words_; ++i) {
    const auto beat = in.pop();
    if (!beat) return result;  // underflow: ok stays false
    image[i] = bits_to_float(beat->data);
    const bool expect_last = (i + 1 == input_words_);
    if (beat->last != expect_last) return result;  // framing error
  }

  nn::Tensor scores;
  if (format_.is_fixed) {
    // Fresh context per run: streamed-weights designs may reload parameters
    // between invocations, which would invalidate a cached quantization.
    scores = nn::forward_fixed(net_, image, format_.fixed).scores;
  } else {
    scores = net_.infer(image, ctx_);
  }
  result.predicted = scores.argmax();
  result.scores.assign(scores.data(), scores.data() + scores.size());

  for (std::size_t i = 0; i < scores.size(); ++i) out.push_float(scores[i], false);
  out.push_float(static_cast<float>(result.predicted), /*last=*/true);

  result.cycles = report_.latency_cycles;
  result.ok = true;
  ++invocations_;
  busy_cycles_ += result.cycles;
  return result;
}

}  // namespace cnn2fpga::axi
