// AXI4-Stream channel model.
//
// Transaction-level: beats are 32-bit words (the generated IP core streams
// float32 pixels in and float32 scores + the predicted class index out), with
// a TLAST marker on the final beat of a packet, as on the real AXI DMA <->
// IP core link of the paper's block design (Fig. 5).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

namespace cnn2fpga::axi {

struct StreamBeat {
  std::uint32_t data = 0;
  bool last = false;
};

/// Bit-cast helpers for the float payload.
std::uint32_t float_to_bits(float value);
float bits_to_float(std::uint32_t bits);

class AxiStreamChannel {
 public:
  /// `depth` bounds the in-flight occupancy statistics; the channel stores
  /// beats without loss (backpressure is implicit at this abstraction level)
  /// but records every high-water mark so over-depth episodes are observable.
  explicit AxiStreamChannel(std::size_t depth = 512);

  void push(StreamBeat beat);
  void push_float(float value, bool last = false);

  /// Pops the oldest beat; empty channel yields nullopt (stream underflow,
  /// which the DMA reports as an error).
  std::optional<StreamBeat> pop();
  std::optional<float> pop_float();

  std::size_t size() const { return fifo_.size(); }
  bool empty() const { return fifo_.empty(); }
  std::size_t depth() const { return depth_; }

  /// Lifetime beat counter (for throughput accounting).
  std::uint64_t total_beats() const { return total_beats_; }
  /// Highest simultaneous occupancy observed.
  std::size_t high_water() const { return high_water_; }
  /// Number of pushes that found the FIFO at or above its nominal depth
  /// (i.e. would have stalled the producer on real hardware).
  std::uint64_t backpressure_events() const { return backpressure_events_; }

  void clear();

 private:
  std::size_t depth_;
  std::deque<StreamBeat> fifo_;
  std::uint64_t total_beats_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t backpressure_events_ = 0;
};

}  // namespace cnn2fpga::axi
