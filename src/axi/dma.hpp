// AXI DMA engine model (the "AXI DMA" block of Fig. 5).
//
// Two independent channels, as in the Xilinx AXI DMA IP:
//   MM2S (memory-mapped to stream): reads a buffer from PS memory through the
//        HP port and pushes it onto the IP core's input stream;
//   S2MM (stream to memory-mapped): drains the IP core's output stream back
//        into PS memory.
// Transaction-level timing: a fixed descriptor-setup cost plus one beat per
// 32-bit word at the fabric clock.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "axi/stream.hpp"

namespace cnn2fpga::axi {

struct DmaChannelStats {
  std::uint64_t transfers = 0;
  std::uint64_t words = 0;
  std::uint64_t cycles = 0;
  std::uint64_t errors = 0;  ///< underflow / missing-TLAST events
};

class AxiDma {
 public:
  /// Cycles to program one descriptor and raise the start bit.
  static constexpr std::uint64_t kSetupCycles = 30;

  AxiDma(AxiStreamChannel& to_ip, AxiStreamChannel& from_ip)
      : to_ip_(to_ip), from_ip_(from_ip) {}

  /// Push `data` to the IP core, TLAST on the final word. Returns cycles.
  std::uint64_t mm2s(std::span<const float> data);

  /// Pop exactly `out.size()` words from the IP core into `out`. Expects the
  /// final popped beat to carry TLAST. Returns cycles; on stream underflow or
  /// a misplaced TLAST the transfer aborts, the error counter increments and
  /// `ok` (if given) is set false.
  std::uint64_t s2mm(std::span<float> out, bool* ok = nullptr);

  const DmaChannelStats& mm2s_stats() const { return mm2s_stats_; }
  const DmaChannelStats& s2mm_stats() const { return s2mm_stats_; }

 private:
  AxiStreamChannel& to_ip_;
  AxiStreamChannel& from_ip_;
  DmaChannelStats mm2s_stats_;
  DmaChannelStats s2mm_stats_;
};

}  // namespace cnn2fpga::axi
