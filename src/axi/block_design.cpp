#include "axi/block_design.hpp"

#include <algorithm>

#include "hls/schedule.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::axi {

using cnn2fpga::util::format;

BlockDesign::BlockDesign(nn::Network& net, const hls::DirectiveSet& directives,
                         const hls::FpgaDevice& device, const nn::NumericFormat& format,
                         bool streamed_weights)
    : net_(net),
      to_ip_(512),
      from_ip_(64),
      dma_(to_ip_, from_ip_),
      ic_control_("axi_interconnect_ctrl"),
      ic_data_("axi_interconnect_data"),
      ip_(net, directives, device, format, streamed_weights) {}

bool BlockDesign::upload_weights() {
  if (!ip_.streamed_weights()) return false;
  // Serialize the parameters in params() order into one DMA transfer.
  std::vector<float> payload;
  for (const nn::Param& p : net_.params()) {
    payload.insert(payload.end(), p.value->data(), p.value->data() + p.value->size());
  }
  ic_control_.record_burst(16);
  ic_data_.record_burst(payload.size() * 4);
  dma_.mm2s(payload);
  ps_driver_seconds_ += kBlockingDriverSeconds;
  return ip_.load_weights(to_ip_);
}

void BlockDesign::reset() {
  to_ip_.clear();
  from_ip_.clear();
}

ClassifyResult BlockDesign::classify(const nn::Tensor& image) {
  ClassifyResult result;

  // Control-path register writes to start the two DMA channels.
  std::uint64_t cycles = ic_control_.record_burst(2 * 16);

  // MM2S: PS memory -> stream (data interconnect carries the image bytes).
  cycles += ic_data_.record_burst(image.size() * 4);
  const std::uint64_t mm2s_cycles = dma_.mm2s({image.data(), image.size()});

  // IP core consumes the packet and classifies. Its stream_in block runs
  // concurrently with the DMA's beat stream, so only the setup portion of
  // the MM2S transfer adds to the critical path.
  const IpRunResult ip_result = ip_.run(to_ip_, from_ip_);
  cycles += AxiDma::kSetupCycles + std::max(mm2s_cycles, ip_result.cycles);
  if (!ip_result.ok) {
    result.seconds = kBlockingDriverSeconds;
    return result;
  }

  // S2MM: stream -> PS memory (scores + predicted index).
  std::vector<float> out(ip_result.scores.size() + 1);
  bool s2mm_ok = false;
  cycles += dma_.s2mm(out, &s2mm_ok);
  cycles += ic_data_.record_burst(out.size() * 4);
  if (!s2mm_ok) {
    result.seconds = kBlockingDriverSeconds;
    return result;
  }

  ++ps_transfers_;
  ps_driver_seconds_ += kBlockingDriverSeconds;

  result.ok = true;
  result.predicted = ip_result.predicted;
  result.scores = ip_result.scores;
  result.fabric_cycles = cycles;
  result.seconds = hls::cycles_to_seconds(cycles, ip_.report().device.clock_mhz) +
                   kBlockingDriverSeconds;
  return result;
}

BatchResult BlockDesign::classify_batch(const std::vector<nn::Tensor>& images, bool streaming) {
  BatchResult batch;
  batch.images = images.size();

  if (!streaming) {
    for (const nn::Tensor& image : images) {
      const ClassifyResult r = classify(image);
      if (!r.ok) {
        ++batch.failures;
        continue;
      }
      batch.predictions.push_back(r.predicted);
      batch.fabric_cycles += r.fabric_cycles;
      batch.seconds += r.seconds;
    }
    return batch;
  }

  // Streaming (scatter-gather) mode: functional results computed per image,
  // timing from the pipelined batch latency of the HLS report.
  for (const nn::Tensor& image : images) {
    const ClassifyResult r = classify(image);
    if (!r.ok) {
      ++batch.failures;
      continue;
    }
    batch.predictions.push_back(r.predicted);
  }
  const hls::HlsReport& report = ip_.report();
  const std::uint64_t cycles =
      report.latency_cycles +
      (images.empty() ? 0 : (images.size() - 1) * report.interval_cycles);
  batch.fabric_cycles = cycles;
  batch.seconds = hls::cycles_to_seconds(cycles, report.device.clock_mhz) +
                  static_cast<double>(images.size()) * kStreamingDriverSeconds;
  return batch;
}

std::string BlockDesign::occupancy_report() const {
  std::string out;
  out += format("ZYNQ7 PS          : %llu blocking transfers, %.3f ms driver time\n",
                (unsigned long long)ps_transfers_, ps_driver_seconds_ * 1e3);
  out += format("AXI DMA   MM2S    : %llu transfers, %llu words, %llu errors\n",
                (unsigned long long)dma_.mm2s_stats().transfers,
                (unsigned long long)dma_.mm2s_stats().words,
                (unsigned long long)dma_.mm2s_stats().errors);
  out += format("AXI DMA   S2MM    : %llu transfers, %llu words, %llu errors\n",
                (unsigned long long)dma_.s2mm_stats().transfers,
                (unsigned long long)dma_.s2mm_stats().words,
                (unsigned long long)dma_.s2mm_stats().errors);
  out += format("Interconnect ctrl : %llu bursts, %llu bytes\n",
                (unsigned long long)ic_control_.bursts(), (unsigned long long)ic_control_.bytes());
  out += format("Interconnect data : %llu bursts, %llu bytes\n",
                (unsigned long long)ic_data_.bursts(), (unsigned long long)ic_data_.bytes());
  out += format("CNN IP core       : %llu invocations, %llu busy cycles\n",
                (unsigned long long)ip_.invocations(), (unsigned long long)ip_.busy_cycles());
  out += format("stream to IP      : high water %zu/%zu beats, %llu backpressure events\n",
                to_ip_.high_water(), to_ip_.depth(),
                (unsigned long long)to_ip_.backpressure_events());
  out += format("stream from IP    : high water %zu/%zu beats\n", from_ip_.high_water(),
                from_ip_.depth());
  return out;
}

}  // namespace cnn2fpga::axi
