// AXI Interconnect accounting (the two "AXI Interconnect" blocks of Fig. 5).
//
// One instance sits on the control path (GP port: register reads/writes to
// the DMA and IP core), one on the data path (HP slave port: the DMA's memory
// traffic). At this abstraction level the interconnect adds a fixed
// arbitration latency per burst and tracks byte/burst counters for the
// block-design occupancy report.
#pragma once

#include <cstdint>
#include <string>

namespace cnn2fpga::axi {

class AxiInterconnect {
 public:
  static constexpr std::uint64_t kArbitrationCycles = 4;

  explicit AxiInterconnect(std::string name) : name_(std::move(name)) {}

  /// Record one burst of `bytes` through the interconnect; returns the
  /// arbitration latency the initiator observes.
  std::uint64_t record_burst(std::uint64_t bytes);

  const std::string& name() const { return name_; }
  std::uint64_t bursts() const { return bursts_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::string name_;
  std::uint64_t bursts_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace cnn2fpga::axi
