// The complete Fig. 5 block design:
//
//   ZYNQ7 Processing System --(AXI Interconnect, control)--> AXI DMA
//   ZYNQ7 HP slave <--(AXI Interconnect, data)-- AXI DMA <--> CNN IP core
//   (+ Processor System Reset, modeled as the explicit reset() entry point)
//
// `classify` reproduces the paper's measurement loop: the ARM core sends one
// image through the DMA, blocks until the classification returns, and
// repeats. `classify_batch(..., streaming=true)` models a scatter-gather
// driver that keeps the DATAFLOW-pipelined IP core fed back-to-back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/dma.hpp"
#include "axi/interconnect.hpp"
#include "axi/ip_core.hpp"
#include "axi/stream.hpp"

namespace cnn2fpga::axi {

/// Software cost on the ARM side of one blocking DMA round trip: ioctl into
/// the Linux DMA driver (ref. [21] of the paper), cache flush/invalidate of
/// the image buffer, interrupt wake-up. Dominates small-network round trips.
constexpr double kBlockingDriverSeconds = 50e-6;
/// Per-descriptor cost when transfers are queued scatter-gather style.
constexpr double kStreamingDriverSeconds = 5e-6;

struct ClassifyResult {
  bool ok = false;
  std::size_t predicted = 0;
  std::vector<float> scores;
  std::uint64_t fabric_cycles = 0;  ///< cycles spent in the PL
  double seconds = 0.0;             ///< wall time incl. driver overhead
};

struct BatchResult {
  std::size_t images = 0;
  std::size_t failures = 0;
  std::vector<std::size_t> predictions;
  std::uint64_t fabric_cycles = 0;
  double seconds = 0.0;
};

class BlockDesign {
 public:
  BlockDesign(nn::Network& net, const hls::DirectiveSet& directives,
              const hls::FpgaDevice& device,
              const nn::NumericFormat& format = nn::NumericFormat::float32(),
              bool streamed_weights = false);

  /// Streamed-weights designs: DMA the network's parameters into the IP core
  /// (one-time start-up transaction). Returns false on hard-coded designs or
  /// transfer failure. Classification on a streamed design fails until this
  /// succeeds — the real core would hang waiting for parameters.
  bool upload_weights();

  /// Processor System Reset: clears streams and statistics.
  void reset();

  /// One blocking round trip (image -> prediction).
  ClassifyResult classify(const nn::Tensor& image);

  /// Classify a set of images; `streaming` enables back-to-back task-level
  /// pipelining (only effective when the design was built with DATAFLOW).
  BatchResult classify_batch(const std::vector<nn::Tensor>& images, bool streaming = false);

  const CnnIpCore& ip_core() const { return ip_; }
  const AxiDma& dma() const { return dma_; }
  const AxiInterconnect& control_interconnect() const { return ic_control_; }
  const AxiInterconnect& data_interconnect() const { return ic_data_; }
  std::uint64_t ps_transfers() const { return ps_transfers_; }
  double ps_driver_seconds() const { return ps_driver_seconds_; }

  /// Per-block occupancy summary (Fig. 5 bench).
  std::string occupancy_report() const;

 private:
  nn::Network& net_;
  AxiStreamChannel to_ip_;
  AxiStreamChannel from_ip_;
  AxiDma dma_;
  AxiInterconnect ic_control_;
  AxiInterconnect ic_data_;
  CnnIpCore ip_;
  std::uint64_t ps_transfers_ = 0;
  double ps_driver_seconds_ = 0.0;
};

}  // namespace cnn2fpga::axi
