#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace cnn2fpga::json {

using cnn2fpga::util::format;

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

namespace {
const char* type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(Type want, Type got) {
  throw JsonError(format("JSON type mismatch: wanted %s, got %s", type_name(want), type_name(got)));
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error(Type::kBool, type());
  return std::get<bool>(data_);
}

double Value::as_double() const {
  if (!is_number()) type_error(Type::kNumber, type());
  return std::get<double>(data_);
}

long Value::as_int() const {
  const double d = as_double();
  const double rounded = std::nearbyint(d);
  if (rounded != d) throw JsonError(format("expected integer, got %g", d));
  return static_cast<long>(rounded);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error(Type::kString, type());
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error(Type::kArray, type());
  return std::get<Array>(data_);
}

Array& Value::as_array() {
  if (!is_array()) type_error(Type::kArray, type());
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error(Type::kObject, type());
  return std::get<Object>(data_);
}

Object& Value::as_object() {
  if (!is_object()) type_error(Type::kObject, type());
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError(format("missing JSON key '%s'", key.c_str()));
  return it->second;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

long Value::get_int(const std::string& key, long fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

double Value::get_double(const std::string& key, double fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_double() : fallback;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  return v && v->is_bool() ? v->as_bool() : fallback;
}

std::string Value::get_string(const std::string& key, const std::string& fallback) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->as_string() : fallback;
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

namespace {

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void number_into(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON cannot represent non-finite numbers; null is the conventional stand-in.
    out += "null";
    return;
  }
  const double rounded = std::nearbyint(d);
  if (rounded == d && std::fabs(d) < 1e15) {
    out += format("%lld", static_cast<long long>(rounded));
  } else {
    // %.17g round-trips every IEEE-754 double.
    out += format("%.17g", d);
  }
}

void dump_into(std::string& out, const Value& v, bool pretty, int depth);

void dump_array(std::string& out, const Array& arr, bool pretty, int depth) {
  if (arr.empty()) {
    out += "[]";
    return;
  }
  out.push_back('[');
  const std::string pad(pretty ? static_cast<std::size_t>(2 * (depth + 1)) : 0, ' ');
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (i) out.push_back(',');
    if (pretty) {
      out.push_back('\n');
      out += pad;
    }
    dump_into(out, arr[i], pretty, depth + 1);
  }
  if (pretty) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(2 * depth), ' ');
  }
  out.push_back(']');
}

void dump_object(std::string& out, const Object& obj, bool pretty, int depth) {
  if (obj.empty()) {
    out += "{}";
    return;
  }
  out.push_back('{');
  const std::string pad(pretty ? static_cast<std::size_t>(2 * (depth + 1)) : 0, ' ');
  bool first = true;
  for (const auto& [key, value] : obj) {
    if (!first) out.push_back(',');
    first = false;
    if (pretty) {
      out.push_back('\n');
      out += pad;
    }
    escape_into(out, key);
    out += pretty ? ": " : ":";
    dump_into(out, value, pretty, depth + 1);
  }
  if (pretty) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(2 * depth), ' ');
  }
  out.push_back('}');
}

void dump_into(std::string& out, const Value& v, bool pretty, int depth) {
  switch (v.type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Type::kNumber: number_into(out, v.as_double()); break;
    case Type::kString: escape_into(out, v.as_string()); break;
    case Type::kArray: dump_array(out, v.as_array(), pretty, depth); break;
    case Type::kObject: dump_object(out, v.as_object(), pretty, depth); break;
  }
}

}  // namespace

std::string Value::dump(bool pretty) const {
  std::string out;
  dump_into(out, *this, pretty, 0);
  if (pretty) out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    // Compute 1-based line/column from the byte offset for the error message.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError(format("JSON parse error at line %zu, column %zu: %s", line, col, msg.c_str()));
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(format("expected '%c'", c));
    }
  }

  void expect_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) fail(format("invalid literal (expected '%s')", std::string(kw).c_str()));
    pos_ += kw.size();
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting depth exceeds limit");
    Value result = parse_value_inner();
    --depth_;
    return result;
  }

  Value parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_keyword("true"); return Value(true);
      case 'f': expect_keyword("false"); return Value(false);
      case 'n': expect_keyword("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (take() != '\\' || take() != 'u') {
        fail("unpaired surrogate in \\u escape");
      }
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // Encode as UTF-8.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    if (peek() == '0') {
      ++pos_;  // leading zero must not be followed by more digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) fail("leading zero in number");
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("digit required after decimal point");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) fail("digit required in exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace cnn2fpga::json
