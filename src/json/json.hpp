// Self-contained JSON value model, parser and serializer.
//
// The framework's network descriptor (Sec. IV-A of the paper) is a JSON
// document produced by the GUI and consumed by the generator back-end; this
// module implements RFC 8259 JSON with precise error positions so malformed
// descriptors are reported usefully.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cnn2fpga::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps keys ordered, which makes serialization deterministic —
// important because generated artifacts are compared against goldens in tests.
using Object = std::map<std::string, Value>;

/// Error thrown by the parser (with 1-based line/column) and by typed accessors.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(long l) : data_(static_cast<double>(l)) {}
  Value(unsigned u) : data_(static_cast<double>(u)) {}
  Value(std::size_t s) : data_(static_cast<double>(s)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_double() const;
  /// as_int additionally rejects non-integral numbers.
  long as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; `at` throws on a missing key, `find` returns null.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;
  Value& operator[](const std::string& key);  // inserts null if missing

  /// Convenience typed lookups with defaults (object only).
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;

  /// Serialize. `pretty` uses 2-space indentation and newlines.
  std::string dump(bool pretty = false) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a complete JSON document. Trailing non-whitespace is an error.
Value parse(std::string_view text);

}  // namespace cnn2fpga::json
