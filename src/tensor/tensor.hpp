// Dense row-major float tensor (rank 1..4).
//
// The reference CNN library (`src/nn`), the dataset generators (`src/data`)
// and the functional model of the generated hardware (`src/axi`) all exchange
// data through this type. Feature maps use CHW layout: (channels, height,
// width), matching the memory layout the generated HLS C++ uses on the FPGA
// so equivalence tests can compare buffers element-by-element.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace cnn2fpga::tensor {

/// Shape of a tensor; unused trailing dimensions are 1.
class Shape {
 public:
  Shape() : dims_{1, 1, 1, 1}, rank_(0) {}
  Shape(std::initializer_list<std::size_t> dims);
  explicit Shape(std::span<const std::size_t> dims);

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t i) const { return dims_[i]; }
  std::size_t elements() const;

  /// CHW accessors for the common feature-map case (rank 3).
  std::size_t channels() const { return dims_[0]; }
  std::size_t height() const { return rank_ >= 2 ? dims_[1] : 1; }
  std::size_t width() const { return rank_ >= 3 ? dims_[2] : 1; }

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const;  // e.g. "(6, 12, 12)"

 private:
  std::array<std::size_t, 4> dims_;
  std::size_t rank_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  /// Flat element access (bounds-checked in debug builds via vector::operator[]
  /// semantics; at() variants are always checked).
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Multi-dimensional access; index count must match rank usage by caller.
  float& at(std::size_t i0);
  float& at(std::size_t i0, std::size_t i1);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2);
  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3);
  float at(std::size_t i0) const;
  float at(std::size_t i0, std::size_t i1) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2) const;
  float at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const;

  void fill(float value);
  /// Uniform in [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);
  /// Gaussian.
  void fill_normal(util::Rng& rng, float mean, float stddev);

  /// Element-wise maximum absolute difference; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);
  /// True if every element differs by at most `tol`.
  static bool all_close(const Tensor& a, const Tensor& b, float tol);

  /// Index of the maximum element (ties: first). Empty tensor returns 0.
  std::size_t argmax() const;

  /// Sum / min / max over all elements.
  float sum() const;
  float min() const;
  float max() const;

 private:
  void check_index(std::size_t flat) const;

  Shape shape_;
  // 64-byte-aligned backing so SIMD kernels can assume cache-line-aligned
  // bases for activation and weight buffers (util/aligned.hpp).
  util::aligned_vector<float> data_;
};

}  // namespace cnn2fpga::tensor
