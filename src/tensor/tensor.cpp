#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::tensor {

using cnn2fpga::util::format;

Shape::Shape(std::initializer_list<std::size_t> dims) : dims_{1, 1, 1, 1}, rank_(dims.size()) {
  if (dims.size() > 4) throw std::invalid_argument("Shape: rank > 4 unsupported");
  std::size_t i = 0;
  for (std::size_t d : dims) dims_[i++] = d;
}

Shape::Shape(std::span<const std::size_t> dims) : dims_{1, 1, 1, 1}, rank_(dims.size()) {
  if (dims.size() > 4) throw std::invalid_argument("Shape: rank > 4 unsupported");
  std::copy(dims.begin(), dims.end(), dims_.begin());
}

std::size_t Shape::elements() const {
  std::size_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return rank_ == 0 ? 0 : n;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) out += ", ";
    out += format("%zu", dims_[i]);
  }
  return out + ")";
}

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(shape), data_(shape.elements(), fill_value) {}

void Tensor::check_index(std::size_t flat) const {
  if (flat >= data_.size()) {
    throw std::out_of_range(
        format("tensor index %zu out of range for shape %s", flat, shape_.to_string().c_str()));
  }
}

float& Tensor::at(std::size_t i0) {
  check_index(i0);
  return data_[i0];
}

float& Tensor::at(std::size_t i0, std::size_t i1) {
  const std::size_t flat = i0 * shape_[1] + i1;
  check_index(flat);
  return data_[flat];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) {
  const std::size_t flat = (i0 * shape_[1] + i1) * shape_[2] + i2;
  check_index(flat);
  return data_[flat];
}

float& Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
  const std::size_t flat = ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3;
  check_index(flat);
  return data_[flat];
}

float Tensor::at(std::size_t i0) const { return const_cast<Tensor*>(this)->at(i0); }
float Tensor::at(std::size_t i0, std::size_t i1) const {
  return const_cast<Tensor*>(this)->at(i0, i1);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2);
}
float Tensor::at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
  return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(util::Rng& rng, float mean, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(format("max_abs_diff: shape mismatch %s vs %s",
                                       a.shape().to_string().c_str(),
                                       b.shape().to_string().c_str()));
  }
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

bool Tensor::all_close(const Tensor& a, const Tensor& b, float tol) {
  return a.shape() == b.shape() && max_abs_diff(a, b) <= tol;
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

float Tensor::sum() const {
  // Kahan summation: deterministic and accurate regardless of tensor size.
  float sum = 0.0f, carry = 0.0f;
  for (float v : data_) {
    const float y = v - carry;
    const float t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("min() of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("max() of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace cnn2fpga::tensor
