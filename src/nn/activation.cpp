#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace cnn2fpga::nn {

Activation::Activation(ActKind act) : act_(act) {}

std::string Activation::kind() const {
  switch (act_) {
    case ActKind::kTanh: return "tanh";
    case ActKind::kSigmoid: return "sigmoid";
    case ActKind::kReLU: return "relu";
  }
  return "?";
}

float Activation::apply(ActKind act, float x) {
  switch (act) {
    case ActKind::kTanh: return std::tanh(x);
    case ActKind::kSigmoid: return 1.0f / (1.0f + std::exp(-x));
    case ActKind::kReLU: return x > 0.0f ? x : 0.0f;
  }
  return x;
}

float Activation::derivative_from_output(ActKind act, float y) {
  switch (act) {
    case ActKind::kTanh: return 1.0f - y * y;
    case ActKind::kSigmoid: return y * (1.0f - y);
    case ActKind::kReLU: return y > 0.0f ? 1.0f : 0.0f;
  }
  return 1.0f;
}

Tensor Activation::forward(const Tensor& input, bool train) {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = apply(act_, input[i]);
  if (train) {
    cached_output_ = out;
    cached_input_ = input;
  }
  return out;
}

void Activation::infer_into(const Tensor& input, Tensor& out) const {
  if (out.shape() != input.shape()) {
    throw std::invalid_argument("Activation::infer_into: output arena shape mismatch");
  }
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = apply(act_, input[i]);
}

Tensor Activation::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Activation::backward before forward(train=true)");
  }
  if (grad_output.shape() != cached_output_.shape()) {
    throw std::invalid_argument("Activation::backward: gradient shape mismatch");
  }
  Tensor grad_input(cached_output_.shape());
  for (std::size_t i = 0; i < grad_input.size(); ++i) {
    grad_input[i] = grad_output[i] * derivative_from_output(act_, cached_output_[i]);
  }
  return grad_input;
}

}  // namespace cnn2fpga::nn
