// Sub-sampling layers (paper Sec. III-B, Eq. 4-5).
//
// Max-pooling is what the framework's GUI offers per convolutional layer;
// mean-pooling is the paper's stated future-work extension and is provided
// here as well. The window slides with stride `step` (the paper's p_step),
// and the output dimensions follow Eq. 4/5:
//   new = floor((old - kernel) / step) + 1
#pragma once

#include "nn/layer.hpp"

namespace cnn2fpga::nn {

enum class PoolKind { kMax, kMean };

class Pool2D final : public Layer {
 public:
  Pool2D(PoolKind pool_kind, std::size_t kernel_h, std::size_t kernel_w, std::size_t step);

  /// Convenience: square kernel with stride equal to the kernel size
  /// (non-overlapping windows — the configuration used in all four tests).
  static Pool2D max_pool(std::size_t kernel) { return {PoolKind::kMax, kernel, kernel, kernel}; }
  static Pool2D mean_pool(std::size_t kernel) { return {PoolKind::kMean, kernel, kernel, kernel}; }

  std::string kind() const override { return pool_kind_ == PoolKind::kMax ? "maxpool" : "meanpool"; }
  std::string describe() const override;
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool train) override;
  void infer_into(const Tensor& input, Tensor& out) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t mac_count(const Shape& input) const override;

  PoolKind pool_kind() const { return pool_kind_; }
  std::size_t kernel_h() const { return kernel_h_; }
  std::size_t kernel_w() const { return kernel_w_; }
  std::size_t step() const { return step_; }

 private:
  PoolKind pool_kind_;
  std::size_t kernel_h_, kernel_w_, step_;
  Shape cached_input_shape_;
  // For max-pool backward: flat input index of each window's winner.
  std::vector<std::size_t> argmax_;
};

}  // namespace cnn2fpga::nn
