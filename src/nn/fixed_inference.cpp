#include "nn/fixed_inference.hpp"

#include <cmath>
#include <stdexcept>

namespace cnn2fpga::nn {

namespace {

using Raw = std::int32_t;

std::vector<Raw> quantize_tensor(const Tensor& t, const FixedPointFormat& format) {
  std::vector<Raw> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = fixed_quantize(t[i], format);
  return out;
}

/// Quantize every conv/linear parameter tensor into the context's cache.
/// Rebuilt only when the cache is cold or the format changed.
void build_fixed_cache(const Network& net, const FixedPointFormat& format,
                       ExecutionContext::FixedState& fs) {
  if (fs.valid && fs.format == format) return;
  fs.weights.assign(net.layer_count(), {});
  fs.biases.assign(net.layer_count(), {});
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const Layer& layer = net.layer(l);
    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      fs.weights[l] = quantize_tensor(conv->weights(), format);
      fs.biases[l] = quantize_tensor(conv->bias(), format);
    } else if (const auto* linear = dynamic_cast<const Linear*>(&layer)) {
      fs.weights[l] = quantize_tensor(linear->weights(), format);
      fs.biases[l] = quantize_tensor(linear->bias(), format);
    }
  }
  fs.format = format;
  fs.valid = true;
}

void run_conv(const Conv2D& conv, const std::vector<Raw>& w, const std::vector<Raw>& b,
              const std::vector<Raw>& x, const Shape& in_shape, const Shape& out_shape,
              const FixedPointFormat& format, std::vector<Raw>& out) {
  const std::size_t C = conv.in_channels(), KH = conv.kernel_h(), KW = conv.kernel_w();
  const std::size_t IH = in_shape.height(), IW = in_shape.width();
  const std::size_t OH = out_shape.height(), OW = out_shape.width();

  out.resize(out_shape.elements());
  for (std::size_t k = 0; k < conv.out_channels(); ++k) {
    for (std::size_t i = 0; i < OH; ++i) {
      for (std::size_t j = 0; j < OW; ++j) {
        // Bias is frac-scaled; products are 2*frac-scaled: align the bias up.
        std::int64_t acc = static_cast<std::int64_t>(b[k]) << format.frac_bits;
        for (std::size_t c = 0; c < C; ++c) {
          for (std::size_t m = 0; m < KH; ++m) {
            for (std::size_t n = 0; n < KW; ++n) {
              const std::int64_t wv = w[((k * C + c) * KH + m) * KW + n];
              const std::int64_t xv = x[(c * IH + (i + m)) * IW + (j + n)];
              acc += wv * xv;
            }
          }
        }
        out[(k * OH + i) * OW + j] = fixed_renormalize(acc, format);
      }
    }
  }
}

void run_pool(const Pool2D& pool, const std::vector<Raw>& x, const Shape& in_shape,
              const Shape& out_shape, const FixedPointFormat& format, std::vector<Raw>& out) {
  const std::size_t C = out_shape.channels(), OH = out_shape.height(), OW = out_shape.width();
  const std::size_t IH = in_shape.height(), IW = in_shape.width();
  const std::size_t KH = pool.kernel_h(), KW = pool.kernel_w(), S = pool.step();

  out.resize(out_shape.elements());
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t i = 0; i < OH; ++i) {
      for (std::size_t j = 0; j < OW; ++j) {
        if (pool.pool_kind() == PoolKind::kMax) {
          Raw best = x[(c * IH + i * S) * IW + j * S];
          for (std::size_t m = 0; m < KH; ++m) {
            for (std::size_t n = 0; n < KW; ++n) {
              best = std::max(best, x[(c * IH + (i * S + m)) * IW + (j * S + n)]);
            }
          }
          out[(c * OH + i) * OW + j] = best;
        } else {
          std::int64_t acc = 0;
          for (std::size_t m = 0; m < KH; ++m) {
            for (std::size_t n = 0; n < KW; ++n) {
              acc += x[(c * IH + (i * S + m)) * IW + (j * S + n)];
            }
          }
          // Symmetric round-half-away integer mean; the generated fixed C++
          // emits this exact expression so both sides agree bit-for-bit.
          const std::int64_t window = static_cast<std::int64_t>(KH * KW);
          const std::int64_t mean = acc >= 0 ? (acc + window / 2) / window
                                             : -((-acc + window / 2) / window);
          out[(c * OH + i) * OW + j] = fixed_saturate(mean, format);
        }
      }
    }
  }
}

void run_linear(const Linear& linear, const std::vector<Raw>& w, const std::vector<Raw>& b,
                const std::vector<Raw>& x, const FixedPointFormat& format,
                std::vector<Raw>& out) {
  const std::size_t I = linear.in_features(), J = linear.out_features();

  out.resize(J);
  for (std::size_t j = 0; j < J; ++j) {
    std::int64_t acc = static_cast<std::int64_t>(b[j]) << format.frac_bits;
    for (std::size_t i = 0; i < I; ++i) {
      acc += static_cast<std::int64_t>(w[j * I + i]) * static_cast<std::int64_t>(x[i]);
    }
    out[j] = fixed_renormalize(acc, format);
  }
}

void run_activation(const Activation& act, const std::vector<Raw>& x,
                    const FixedPointFormat& format, std::vector<Raw>& out) {
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (act.act() == ActKind::kReLU) {
      out[i] = x[i] > 0 ? x[i] : 0;  // exact in fixed point
    } else {
      const float y = Activation::apply(act.act(), fixed_dequantize(x[i], format));
      out[i] = fixed_quantize(y, format);
    }
  }
}

/// Float-path activations feeding network layer `l`, read back out of the
/// context after a full float infer() (the pre-LogSoftMax logits for the
/// quantization-error signal). Accounts for fused steps.
const Tensor& reference_before_layer(const ExecutionContext& ctx, const Tensor& input,
                                     std::size_t l) {
  const auto& steps = ctx.steps();
  for (std::size_t s = 0; s < steps.size(); ++s) {
    if (steps[s].layer_index == l) return s == 0 ? input : ctx.arena(s - 1);
  }
  return ctx.output();
}

}  // namespace

FixedForwardResult forward_fixed(const Network& net, const Tensor& input,
                                 const FixedPointFormat& format) {
  ExecutionContext ctx(net);
  return forward_fixed(net, input, format, ctx);
}

FixedForwardResult forward_fixed(const Network& net, const Tensor& input,
                                 const FixedPointFormat& format, ExecutionContext& ctx,
                                 bool track_output_error) {
  format.validate();
  if (&ctx.network() != &net) {
    throw std::invalid_argument("forward_fixed: context was built for a different network");
  }
  if (input.shape() != net.input_shape()) {
    throw std::invalid_argument("forward_fixed: input shape mismatch");
  }

  ExecutionContext::FixedState& fs = ctx.fixed_state();
  build_fixed_cache(net, format, fs);

  std::vector<Raw>* acts = &fs.ping;
  std::vector<Raw>* next = &fs.pong;
  acts->resize(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) (*acts)[i] = fixed_quantize(input[i], format);
  Shape shape = net.input_shape();

  FixedForwardResult result;
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const Layer& layer = net.layer(l);
    const Shape& out_shape = net.shape_after(l);
    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      run_conv(*conv, fs.weights[l], fs.biases[l], *acts, shape, out_shape, format, *next);
    } else if (const auto* pool = dynamic_cast<const Pool2D*>(&layer)) {
      run_pool(*pool, *acts, shape, out_shape, format, *next);
    } else if (const auto* linear = dynamic_cast<const Linear*>(&layer)) {
      run_linear(*linear, fs.weights[l], fs.biases[l], *acts, format, *next);
    } else if (const auto* act = dynamic_cast<const Activation*>(&layer)) {
      run_activation(*act, *acts, format, *next);
    } else if (dynamic_cast<const LogSoftMax*>(&layer) != nullptr) {
      // Dequantize and evaluate the output normalizer in float, exactly as
      // the generated fixed design does.
      Tensor logits(Shape{acts->size()});
      for (std::size_t i = 0; i < acts->size(); ++i) {
        logits[i] = fixed_dequantize((*acts)[i], format);
      }
      LogSoftMax lsm;
      result.scores = Tensor(logits.shape());
      lsm.infer_into(logits, result.scores);
      result.predicted = result.scores.argmax();

      if (track_output_error) {
        // Quantization-quality signal: compare pre-softmax logits to the
        // *scalar* float reference (the HLS-exact path). The read-back needs
        // the per-step arenas, which the fused SIMD engine does not
        // materialize — and the quantization error should be measured against
        // the bit-exact oracle regardless of the caller's kernel engine.
        const auto accumulate_error = [&](const ExecutionContext& ref_ctx) {
          const Tensor& ref = reference_before_layer(ref_ctx, input, l);
          for (std::size_t i = 0; i < acts->size(); ++i) {
            result.output_error = std::max(result.output_error, std::fabs(ref[i] - logits[i]));
          }
        };
        if (ctx.kernel() == kernels::Kind::kScalar) {
          (void)net.infer(input, ctx);
          accumulate_error(ctx);
        } else {
          ExecutionContext scalar_ctx(net, kernels::Kind::kScalar, nullptr);
          (void)net.infer(input, scalar_ctx);
          accumulate_error(scalar_ctx);
        }
      }
      return result;
    }
    std::swap(acts, next);
    shape = out_shape;
  }

  // Network without a LogSoftMax tail: return dequantized raw scores.
  result.scores = Tensor(Shape{acts->size()});
  for (std::size_t i = 0; i < acts->size(); ++i) {
    result.scores[i] = fixed_dequantize((*acts)[i], format);
  }
  result.predicted = result.scores.argmax();
  return result;
}

float evaluate_error_fixed(const Network& net, const std::vector<Sample>& samples,
                           const FixedPointFormat& format) {
  if (samples.empty()) return 1.0f;
  ExecutionContext ctx(net);
  std::size_t wrong = 0;
  for (const Sample& sample : samples) {
    const FixedForwardResult out =
        forward_fixed(net, sample.image, format, ctx, /*track_output_error=*/false);
    if (out.predicted != sample.label) ++wrong;
  }
  return static_cast<float>(wrong) / static_cast<float>(samples.size());
}

}  // namespace cnn2fpga::nn
