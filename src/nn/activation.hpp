// Element-wise non-linearities (paper Sec. III-A: "this operation is performed
// by the Rectified Linear Unit (ReLU) layers and it can be implemented with
// different kinds of functions like the hyperbolic tangent or the sigmoid").
//
// The framework's GUI exposes tanh as the optional non-linearity on linear
// layers; relu and sigmoid are provided as well.
#pragma once

#include "nn/layer.hpp"

namespace cnn2fpga::nn {

enum class ActKind { kTanh, kSigmoid, kReLU };

class Activation final : public Layer {
 public:
  explicit Activation(ActKind act);

  std::string kind() const override;
  std::string describe() const override { return kind(); }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool train) override;
  void infer_into(const Tensor& input, Tensor& out) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::size_t mac_count(const Shape& input) const override { return input.elements(); }

  ActKind act() const { return act_; }

  /// Scalar application (shared with the functional model of generated code).
  static float apply(ActKind act, float x);
  /// Derivative expressed in terms of the *output* y = apply(act, x)
  /// (tanh' = 1 - y^2, sigmoid' = y(1-y)); ReLU uses the cached input sign.
  static float derivative_from_output(ActKind act, float y);

 private:
  ActKind act_;
  Tensor cached_output_;
  Tensor cached_input_;  // needed for ReLU derivative at 0 boundary
};

}  // namespace cnn2fpga::nn
