// Valid 2-D convolution layer (paper Eq. 1-3).
//
// Each of the `out_channels` kernels spans all input channels:
//   o[k,i,j] = b[k] + sum_c sum_m sum_n w[k,c,m,n] * x[c,i+m,j+n]
// and shrinks the feature map: out = in - kernel + 1 (Eq. 2/3).
//
// The accumulation order (c, then m, then n) is fixed and mirrored exactly by
// the code generator so reference and generated outputs match bit-for-bit.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace cnn2fpga::nn {

class Activation;

class Conv2D final : public Layer {
 public:
  /// Weights initialized to zero; call init_weights or load them.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
         std::size_t kernel_w);

  /// LeCun-style uniform init: U(-s, s) with s = 1/sqrt(fan_in).
  void init_weights(util::Rng& rng);

  std::string kind() const override { return "conv"; }
  std::string describe() const override;
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool train) override;
  void infer_into(const Tensor& input, Tensor& out) const override;
  /// Fast path: im2col into `col` (at least col_scratch_size(input.shape())
  /// floats) followed by a pixel-blocked GEMM, optionally applying `fused`
  /// elementwise to each finished accumulator. Each output element sees the
  /// exact accumulation sequence of forward(), so results are bit-identical.
  void infer_into(const Tensor& input, Tensor& out, float* col, const Activation* fused) const;
  /// Floats of im2col scratch needed for an input of the given shape.
  std::size_t col_scratch_size(const Shape& input) const;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::size_t mac_count(const Shape& input) const override;

  std::size_t in_channels() const { return in_channels_; }
  std::size_t out_channels() const { return out_channels_; }
  std::size_t kernel_h() const { return kernel_h_; }
  std::size_t kernel_w() const { return kernel_w_; }

  /// Weights shape: (out_channels, in_channels, kernel_h, kernel_w).
  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  /// Bias shape: (out_channels).
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  void check_input(const Shape& input) const;

  std::size_t in_channels_, out_channels_, kernel_h_, kernel_w_;
  Tensor weights_, bias_;
  Tensor weights_grad_, bias_grad_;
  Tensor cached_input_;
};

}  // namespace cnn2fpga::nn
