#include "nn/serialize.hpp"

#include <cstring>
#include <stdexcept>

#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

namespace {

constexpr char kMagic[] = "CNN2FPGAW1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    v |= bytes_[pos_];
    v |= static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8;
    v |= static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16;
    v |= static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::string string(std::size_t len) {
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  void floats(float* dst, std::size_t count) {
    need(count * 4);
    std::memcpy(dst, bytes_.data() + pos_, count * 4);
    pos_ += count * 4;
  }

  bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error(format("weight file truncated: need %zu bytes at offset %zu, "
                                      "file has %zu", n, pos_, bytes_.size()));
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_weights(Network& net) {
  std::vector<std::uint8_t> out(kMagic, kMagic + kMagicLen);
  const std::vector<Param> params = net.params();
  put_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Param& p : params) {
    put_u32(out, static_cast<std::uint32_t>(p.name.size()));
    out.insert(out.end(), p.name.begin(), p.name.end());
    const tensor::Shape& shape = p.value->shape();
    put_u32(out, static_cast<std::uint32_t>(shape.rank()));
    for (std::size_t d = 0; d < shape.rank(); ++d) {
      put_u32(out, static_cast<std::uint32_t>(shape[d]));
    }
    const std::size_t byte_count = p.value->size() * 4;
    const std::size_t offset = out.size();
    out.resize(offset + byte_count);
    std::memcpy(out.data() + offset, p.value->data(), byte_count);
  }
  return out;
}

void save_weights(Network& net, const std::string& path) {
  util::write_file_bytes(path, serialize_weights(net));
}

void deserialize_weights(Network& net, const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kMagicLen ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    throw std::runtime_error("weight file: bad magic (not a CNN2FPGAW1 file)");
  }
  std::vector<std::uint8_t> body(bytes.begin() + static_cast<long>(kMagicLen), bytes.end());
  Reader reader(body);

  const std::vector<Param> params = net.params();
  const std::uint32_t count = reader.u32();
  if (count != params.size()) {
    throw std::runtime_error(format("weight file: %u tensors, network expects %zu",
                                    count, params.size()));
  }

  for (const Param& p : params) {
    const std::uint32_t name_len = reader.u32();
    if (name_len > 4096) throw std::runtime_error("weight file: implausible tensor name length");
    const std::string name = reader.string(name_len);
    if (name != p.name) {
      throw std::runtime_error(format("weight file: tensor '%s' where network expects '%s'",
                                      name.c_str(), p.name.c_str()));
    }
    const std::uint32_t rank = reader.u32();
    if (rank > 4) throw std::runtime_error("weight file: rank > 4");
    std::vector<std::size_t> dims(rank);
    for (std::uint32_t d = 0; d < rank; ++d) dims[d] = reader.u32();
    const tensor::Shape shape{std::span<const std::size_t>(dims)};
    if (shape != p.value->shape()) {
      throw std::runtime_error(format("weight file: tensor '%s' has shape %s, network expects %s",
                                      name.c_str(), shape.to_string().c_str(),
                                      p.value->shape().to_string().c_str()));
    }
    reader.floats(p.value->data(), p.value->size());
  }
  if (!reader.done()) throw std::runtime_error("weight file: trailing bytes after last tensor");
}

void load_weights(Network& net, const std::string& path) {
  deserialize_weights(net, util::read_file_bytes(path));
}

}  // namespace cnn2fpga::nn
