// Weight-file (de)serialization.
//
// The framework's input contract (paper Sec. IV) is "the file containing the
// trained weights" exported by the training framework. This module defines
// that format:
//
//   magic   "CNN2FPGAW1\n"            (11 bytes)
//   u32     tensor count              (little-endian)
//   per tensor:
//     u32   name length, name bytes   (e.g. "layer0.weights")
//     u32   rank, u32 dims[rank]
//     f32   data[prod(dims)]          (IEEE-754 little-endian)
//
// The format is self-describing enough that loading validates tensor names
// and shapes against the target network and reports precise mismatches —
// this is what catches "weights trained for a different architecture".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace cnn2fpga::nn {

/// Serialize all learnable parameters of the network.
std::vector<std::uint8_t> serialize_weights(Network& net);
void save_weights(Network& net, const std::string& path);

/// Load parameters into an already-constructed network of the same
/// architecture. Throws std::runtime_error with a descriptive message on
/// magic/name/shape mismatch or truncation.
void deserialize_weights(Network& net, const std::vector<std::uint8_t>& bytes);
void load_weights(Network& net, const std::string& path);

}  // namespace cnn2fpga::nn
