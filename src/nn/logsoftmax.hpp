// LogSoftMax output layer (paper Sec. III-C, Eq. 7) plus the negative
// log-likelihood loss used for training.
//
// The paper's generated function appends a LogSoftMax block "by default at the
// end of the function ... to normalize the outputs" and then returns the
// argmax class index. We compute log-probabilities with the standard
// max-subtraction trick; the code generator emits the exact same sequence so
// that reference and generated designs agree bit-for-bit.
#pragma once

#include "nn/layer.hpp"

namespace cnn2fpga::nn {

class LogSoftMax final : public Layer {
 public:
  LogSoftMax() = default;

  std::string kind() const override { return "logsoftmax"; }
  std::string describe() const override { return "logsoftmax"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool train) override;
  void infer_into(const Tensor& input, Tensor& out) const override;
  Tensor backward(const Tensor& grad_output) override;
  /// exp per element plus the reduction; charged as one MAC-equivalent each
  /// (the cost models additionally weight exp by its operator latency).
  std::size_t mac_count(const Shape& input) const override { return 2 * input.elements(); }

 private:
  Tensor cached_output_;
};

/// NLL loss on log-probabilities: loss = -logp[target].
float nll_loss(const Tensor& log_probs, std::size_t target);

/// Gradient of the NLL loss w.r.t. the log-probabilities:
/// dL/dlogp[j] = softmax[j] - 1{j == target} ... expressed for the
/// LogSoftMax::backward contract as dL/dlogp (simply -1 at target), letting
/// the layer combine it with its own Jacobian.
Tensor nll_loss_grad(const Tensor& log_probs, std::size_t target);

}  // namespace cnn2fpga::nn
