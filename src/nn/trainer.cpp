#include "nn/trainer.hpp"

#include <cmath>

#include "nn/execution.hpp"
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

TrainResult SgdTrainer::train(Network& net, const std::vector<Sample>& train_set,
                              const std::vector<Sample>& test_set) const {
  if (train_set.empty()) throw std::invalid_argument("SgdTrainer: empty training set");
  if (net.layer_count() == 0 || net.layer(net.layer_count() - 1).kind() != "logsoftmax") {
    throw std::invalid_argument("SgdTrainer: network must end in a LogSoftMax layer");
  }

  // Momentum buffers, one per parameter tensor.
  std::vector<Param> params = net.params();
  std::vector<Tensor> velocity;
  velocity.reserve(params.size());
  for (const Param& p : params) velocity.emplace_back(p.value->shape());

  util::Rng shuffle_rng(config_.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  float lr = config_.learning_rate;
  // Training runs through the explicit mutable path; inference stays on the
  // const, reentrant Network::infer.
  TrainContext train_ctx(net);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[shuffle_rng.next_below(i)]);
    }

    double loss_sum = 0.0;
    for (const std::size_t idx : order) {
      const Sample& sample = train_set[idx];
      net.zero_grad();
      const Tensor log_probs = train_ctx.forward(sample.image);
      loss_sum += nll_loss(log_probs, sample.label);
      train_ctx.backward(nll_loss_grad(log_probs, sample.label));

      if (config_.clip_grad_norm > 0.0f) {
        double norm_sq = 0.0;
        for (const Param& p : params) {
          for (std::size_t i = 0; i < p.grad->size(); ++i) {
            norm_sq += static_cast<double>((*p.grad)[i]) * (*p.grad)[i];
          }
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > config_.clip_grad_norm) {
          const float scale = config_.clip_grad_norm / static_cast<float>(norm);
          for (const Param& p : params) {
            for (std::size_t i = 0; i < p.grad->size(); ++i) (*p.grad)[i] *= scale;
          }
        }
      }

      for (std::size_t p = 0; p < params.size(); ++p) {
        Tensor& v = velocity[p];
        Tensor& value = *params[p].value;
        const Tensor& grad = *params[p].grad;
        for (std::size_t i = 0; i < value.size(); ++i) {
          v[i] = config_.momentum * v[i] - lr * grad[i];
          value[i] += v[i];
        }
      }
    }

    const float mean_loss = static_cast<float>(loss_sum / static_cast<double>(train_set.size()));
    result.epoch_loss.push_back(mean_loss);
    float test_error = std::numeric_limits<float>::quiet_NaN();
    if (config_.on_epoch) {
      if (!test_set.empty()) test_error = evaluate_error(net, test_set);
      config_.on_epoch(epoch, mean_loss, test_error);
    }
    LOG_DEBUG("trainer") << format("epoch %zu: loss %.4f lr %.4f", epoch, mean_loss, lr);
    lr *= config_.lr_decay;
  }

  result.final_train_error = evaluate_error(net, train_set);
  result.final_test_error = test_set.empty() ? 1.0f : evaluate_error(net, test_set);
  return result;
}

float SgdTrainer::evaluate_error(Network& net, const std::vector<Sample>& samples) {
  if (samples.empty()) return 1.0f;
  // Scalar-pinned so reported error rates are bit-reproducible against the
  // seed forward() path independent of the host's SIMD support.
  ExecutionContext ctx(net, kernels::Kind::kScalar, nullptr);
  std::size_t wrong = 0;
  for (const Sample& sample : samples) {
    if (net.infer(sample.image, ctx).argmax() != sample.label) ++wrong;
  }
  return static_cast<float>(wrong) / static_cast<float>(samples.size());
}

}  // namespace cnn2fpga::nn
