// Sequential CNN container: the in-memory form of the network the framework's
// descriptor describes (Fig. 1 structure: conv/pool stages followed by an MLP
// and a LogSoftMax output).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/logsoftmax.hpp"
#include "nn/pool.hpp"

namespace cnn2fpga::nn {

class ExecutionContext;  // nn/execution.hpp

class Network {
 public:
  /// A network for CHW inputs of the given shape.
  explicit Network(Shape input_shape, std::string name = "cnn");

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }

  /// Builder API. Each call validates shape compatibility eagerly so a broken
  /// architecture fails at construction, not at the first forward pass.
  Conv2D& add_conv(std::size_t out_channels, std::size_t kernel_h, std::size_t kernel_w);
  Pool2D& add_max_pool(std::size_t kernel, std::size_t step);
  Pool2D& add_mean_pool(std::size_t kernel, std::size_t step);
  Linear& add_linear(std::size_t out_features);
  Activation& add_activation(ActKind act);
  LogSoftMax& add_logsoftmax();

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Shape flowing out of layer i (and into layer i+1).
  const Shape& shape_after(std::size_t i) const { return shapes_.at(i + 1); }
  /// Final output shape.
  const Shape& output_shape() const { return shapes_.back(); }

  /// Full forward pass (mutable seed path). Training must pass train=true —
  /// preferably via TrainContext (nn/execution.hpp) so the mutation is
  /// explicit; inference-only callers should migrate to infer().
  Tensor forward(const Tensor& input, bool train = false);

  /// Reentrant inference through a caller-owned ExecutionContext
  /// (nn/execution.hpp): const, no per-call heap traffic. Scalar-pinned
  /// contexts are bit-identical to forward(input, false); avx2-pinned
  /// contexts run the SIMD kernel engine (within 1e-4 relative of scalar,
  /// identical argmax — see nn/kernels/kernels.hpp). Returns the
  /// context-owned output tensor, valid until the next infer() through `ctx`.
  /// Distinct contexts may run concurrently over the same network.
  const Tensor& infer(const Tensor& input, ExecutionContext& ctx) const;

  /// Fused batch inference: avx2-pinned contexts run the whole micro-batch
  /// through ONE im2col + GEMM per conv/linear layer (weights stream from
  /// cache once per layer, not once per image), bit-identical to per-image
  /// infer() through the same context. Scalar contexts fall back to the
  /// per-image seed path. `outputs[i]` is assigned the result for
  /// `inputs[i]`; the spans must be the same length.
  void infer_batch(std::span<const Tensor* const> inputs, std::span<Tensor> outputs,
                   ExecutionContext& ctx) const;

  /// Convenience wrapper over the span overload.
  std::vector<Tensor> infer_batch(const std::vector<Tensor>& inputs,
                                  ExecutionContext& ctx) const;

  /// Inference + argmax: the class index the generated hardware returns.
  std::size_t predict(const Tensor& input) const;

  /// Backward from the output gradient; requires forward(..., true) first.
  void backward(const Tensor& grad_output);

  /// All learnable parameters across layers (named layer<i>.<param>).
  std::vector<Param> params();
  void zero_grad();

  /// Total parameter scalars (weights + biases).
  std::size_t parameter_count() const;

  /// Total multiply-accumulates for one forward pass.
  std::size_t total_macs() const;

  /// Initialize all conv/linear weights (LeCun uniform) from one RNG.
  void init_weights(util::Rng& rng);

  /// Multi-line structure trace (layer kind, config, output shape) — the
  /// textual equivalent of the paper's Fig. 1.
  std::string structure() const;

 private:
  template <typename L>
  L& add_layer(std::unique_ptr<L> layer);

  /// True when the plan contains a step the fused SIMD engine cannot run.
  static bool plan_needs_generic(const ExecutionContext& ctx);

  /// Fused-batch SIMD executor (nn/execution_batch.cpp): runs `count` images
  /// through one packed GEMM per conv/linear step and writes each image's
  /// final activations to `out_rows[i]` (output_shape().elements() floats).
  void run_fused_batch(const Tensor* const* inputs, std::size_t count,
                       ExecutionContext& ctx, float* const* out_rows) const;

  /// Quantized fused-batch executor (nn/execution_quant.cpp): runs `count`
  /// images through the plan in the context's int8/int16 fixed-point
  /// arithmetic (one quantized packed GEMM per conv/linear step on either
  /// engine) and writes each image's dequantized float scores to
  /// `out_rows[i]`.
  void run_quant_batch(const Tensor* const* inputs, std::size_t count,
                       ExecutionContext& ctx, float* const* out_rows) const;

  std::string name_;
  Shape input_shape_;
  std::vector<LayerPtr> layers_;
  std::vector<Shape> shapes_;  // shapes_[0] = input, shapes_[i+1] = after layer i
};

/// The four case-study networks of the paper's evaluation (Sec. V).
/// Weight values are *not* initialized; train or load them.
Network make_test1_network();  // USPS: conv 6x5x5 + maxpool 2x2 + linear 10 (Tests 1 & 2)
Network make_test3_network();  // USPS: + conv 16x5x5 -> 2x2 maps, linear 10
Network make_test4_network();  // CIFAR-10: conv12/pool/conv36/pool/linear36/linear10

}  // namespace cnn2fpga::nn
