// Fixed-point inference over a float-trained network.
//
// Executes the network's feed-forward pass in Q(m,n) integer arithmetic:
// weights, biases and activations are quantized, multiply-accumulates run in
// a 64-bit accumulator at 2*frac_bits scale and are renormalized with
// round-half-up + saturation after each dot product — precisely the
// arithmetic the code generator's fixed mode emits, so the two agree
// bit-for-bit (tested in test_fixed.cpp).
//
// Transcendental stages (tanh/sigmoid, the trailing LogSoftMax) dequantize,
// evaluate in float and (for mid-network activations) requantize, mirroring
// the LUT-backed float cores the generated design would instantiate.
#pragma once

#include <vector>

#include "nn/execution.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"  // Sample

namespace cnn2fpga::nn {

struct FixedForwardResult {
  Tensor scores;              ///< final (float) log-probabilities
  std::size_t predicted = 0;
  /// Largest |float - fixed| activation discrepancy observed at the network
  /// output *before* LogSoftMax (a quantization-quality signal).
  float output_error = 0.0f;
};

/// Run one image through the network in fixed-point arithmetic. Convenience
/// wrapper that builds a fresh ExecutionContext per call (re-quantizing the
/// parameters); hot paths should hold a context and use the overload below.
FixedForwardResult forward_fixed(const Network& net, const Tensor& input,
                                 const FixedPointFormat& format);

/// Reentrant fixed-point inference through a caller-owned context: quantized
/// weights/biases are cached in `ctx` (keyed by `format`) and the int32
/// activation buffers are reused, so repeated calls do no steady-state heap
/// work. Bit-identical to the wrapper above. `track_output_error` additionally
/// runs the float reference through `ctx` to fill FixedForwardResult::
/// output_error; pass false on serving hot paths. The cached parameters
/// assume frozen weights — use a fresh context after mutating them.
FixedForwardResult forward_fixed(const Network& net, const Tensor& input,
                                 const FixedPointFormat& format, ExecutionContext& ctx,
                                 bool track_output_error = true);

/// Misclassification rate of the fixed-point execution over a sample set.
float evaluate_error_fixed(const Network& net, const std::vector<Sample>& samples,
                           const FixedPointFormat& format);

}  // namespace cnn2fpga::nn
