// Fixed-point inference over a float-trained network.
//
// Executes the network's feed-forward pass in Q(m,n) integer arithmetic:
// weights, biases and activations are quantized, multiply-accumulates run in
// a 64-bit accumulator at 2*frac_bits scale and are renormalized with
// round-half-up + saturation after each dot product — precisely the
// arithmetic the code generator's fixed mode emits, so the two agree
// bit-for-bit (tested in test_fixed.cpp).
//
// Transcendental stages (tanh/sigmoid, the trailing LogSoftMax) dequantize,
// evaluate in float and (for mid-network activations) requantize, mirroring
// the LUT-backed float cores the generated design would instantiate.
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"  // Sample

namespace cnn2fpga::nn {

struct FixedForwardResult {
  Tensor scores;              ///< final (float) log-probabilities
  std::size_t predicted = 0;
  /// Largest |float - fixed| activation discrepancy observed at the network
  /// output *before* LogSoftMax (a quantization-quality signal).
  float output_error = 0.0f;
};

/// Run one image through the network in fixed-point arithmetic.
FixedForwardResult forward_fixed(const Network& net, const Tensor& input,
                                 const FixedPointFormat& format);

/// Misclassification rate of the fixed-point execution over a sample set.
float evaluate_error_fixed(const Network& net, const std::vector<Sample>& samples,
                           const FixedPointFormat& format);

}  // namespace cnn2fpga::nn
