// Layer interface of the reference CNN library.
//
// This library serves three roles in the reproduction:
//   1. the *software implementation* the paper benchmarks against (Table I),
//   2. the golden functional model the generated HLS C++ is verified against
//      (the paper's "hardware implementation is as accurate as software one"),
//   3. the trainer that produces the weight files the framework takes as input
//      (the paper trains with Torch; Sec. IV requires an offline-trained net).
//
// Feature maps are CHW float32 tensors. Every forward pass caches its input so
// backward() can be called afterwards; inference-only callers pass
// `train = false` to skip the cache.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace cnn2fpga::nn {

using tensor::Shape;
using tensor::Tensor;

/// A learnable parameter: value plus its accumulated gradient.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable kind tag, e.g. "conv", "maxpool", "linear", "tanh", "logsoftmax".
  virtual std::string kind() const = 0;

  /// Human-readable one-line description (used by Fig. 1 structure traces).
  virtual std::string describe() const = 0;

  /// Output shape for a given input shape; throws std::invalid_argument if
  /// the input is incompatible (e.g. kernel larger than the feature map).
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Forward pass. When `train` is true the layer caches whatever it needs
  /// for a subsequent backward() call.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Reentrant inference: compute the layer's output into `out`, which the
  /// caller has preallocated to output_shape(input.shape()). Must not mutate
  /// the layer — safe to call concurrently from any number of threads — and
  /// must produce bit-identical results to forward(input, false).
  virtual void infer_into(const Tensor& input, Tensor& out) const = 0;

  /// Backward pass: gradient w.r.t. the cached input; accumulates parameter
  /// gradients. Must be preceded by forward(..., true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for pooling/activations).
  virtual std::vector<Param> params() { return {}; }

  void zero_grad() {
    for (Param& p : params()) {
      if (p.grad != nullptr) p.grad->fill(0.0f);
    }
  }

  /// Number of multiply-accumulate operations per forward pass for an input
  /// of the given shape (consumed by the A9 and HLS cost models).
  virtual std::size_t mac_count(const Shape& input) const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cnn2fpga::nn
