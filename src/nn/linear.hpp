// Fully-connected (perceptron) layer (paper Sec. III-C, Eq. 6):
//   o[j] = b[j] + sum_i w[j,i] * x[i]
// The layer accepts any input shape and treats it as a flat vector, exactly
// as the generated HLS code reads the previous layer's CHW buffer linearly.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace cnn2fpga::nn {

class Activation;

class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  /// LeCun-style uniform init: U(-s, s) with s = 1/sqrt(fan_in).
  void init_weights(util::Rng& rng);

  std::string kind() const override { return "linear"; }
  std::string describe() const override;
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool train) override;
  void infer_into(const Tensor& input, Tensor& out) const override;
  /// Reentrant GEMV with `fused` (may be null) applied elementwise to each
  /// finished accumulator; bit-identical to forward() then Activation.
  void infer_into(const Tensor& input, Tensor& out, const Activation* fused) const;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::size_t mac_count(const Shape& input) const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  /// Weights shape: (out_features, in_features).
  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::size_t in_features_, out_features_;
  Tensor weights_, bias_;
  Tensor weights_grad_, bias_grad_;
  Tensor cached_input_;
};

}  // namespace cnn2fpga::nn
