#include "nn/quantize.hpp"

#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::nn {

std::string FixedPointFormat::name() const {
  return util::format("Q%d.%d", integer_bits(), frac_bits);
}

void FixedPointFormat::validate() const {
  if (total_bits < 2 || total_bits > 32) {
    throw std::invalid_argument(util::format("FixedPointFormat: total_bits %d out of [2,32]",
                                             total_bits));
  }
  if (frac_bits < 1 || frac_bits >= total_bits) {
    throw std::invalid_argument(util::format(
        "FixedPointFormat: frac_bits %d must be in [1, total_bits)", frac_bits));
  }
}

const char* serve_precision_name(ServePrecision precision) {
  switch (precision) {
    case ServePrecision::kFloat32: return "float32";
    case ServePrecision::kInt16: return "int16";
    case ServePrecision::kInt8: return "int8";
  }
  return "float32";
}

bool parse_serve_precision(std::string_view name, ServePrecision& out) {
  if (name == "float32") {
    out = ServePrecision::kFloat32;
  } else if (name == "int16") {
    out = ServePrecision::kInt16;
  } else if (name == "int8") {
    out = ServePrecision::kInt8;
  } else {
    return false;
  }
  return true;
}

FixedPointFormat serve_precision_format(ServePrecision precision) {
  switch (precision) {
    case ServePrecision::kInt16: return {16, 8};
    case ServePrecision::kInt8: return {8, 4};
    case ServePrecision::kFloat32: break;
  }
  throw std::invalid_argument("serve_precision_format: float32 has no fixed-point format");
}

std::int32_t fixed_quantize(float value, const FixedPointFormat& format) {
  // lrintf rounds to nearest (ties to even under the default FP environment);
  // the generated C++ emits the same call so both sides agree bit-for-bit.
  const float scaled = value * static_cast<float>(format.scale());
  if (!(scaled < static_cast<float>(format.max_raw()))) {
    return static_cast<std::int32_t>(format.max_raw());  // also catches NaN/inf upward
  }
  if (scaled < static_cast<float>(format.min_raw())) {
    return static_cast<std::int32_t>(format.min_raw());
  }
  return static_cast<std::int32_t>(std::lrintf(scaled));
}

float fixed_dequantize(std::int64_t raw, const FixedPointFormat& format) {
  return static_cast<float>(static_cast<double>(raw) / static_cast<double>(format.scale()));
}

std::int32_t fixed_saturate(std::int64_t raw, const FixedPointFormat& format) {
  if (raw > format.max_raw()) return static_cast<std::int32_t>(format.max_raw());
  if (raw < format.min_raw()) return static_cast<std::int32_t>(format.min_raw());
  return static_cast<std::int32_t>(raw);
}

std::int32_t fixed_renormalize(std::int64_t accumulator, const FixedPointFormat& format) {
  // Round half up: add 2^(frac-1) before the arithmetic shift. frac_bits >= 1
  // is guaranteed by validate().
  const std::int64_t half = std::int64_t{1} << (format.frac_bits - 1);
  const std::int64_t shifted = (accumulator + half) >> format.frac_bits;
  return fixed_saturate(shifted, format);
}

}  // namespace cnn2fpga::nn
