// Portable half of the quantized kernel engine: weight quantization +
// panel packing, offset-u8 / pair-interleaved B packing, the bit-identical
// scalar reference GEMMs, integer pooling, activation tables, and the shared
// QuantPackCache. The AVX2 entry points (gemm_s8_avx2 / gemm_s16_avx2) live in
// kernels_int_avx2.cpp and become throwing stubs without CNN2FPGA_HAVE_AVX2.
//
// Bit-exactness argument (tested in tests/test_kernels.cpp): every product of
// raw fixed values is exact in int32, and both engines reduce with modular
// int32 addition, which is associative and commutative — so accumulation
// order cannot change a single bit, unlike the float engine's 1e-4 contract.
// The scalar kernels therefore read the SAME packed bytes the SIMD kernels
// read and must agree exactly on every input.
#include "nn/kernels/kernels_int.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace cnn2fpga::nn::kernels {

namespace {

constexpr std::size_t kGroupS8 = 4;   ///< raw k values per packed dword, int8
constexpr std::size_t kGroupS16 = 2;  ///< raw k values per packed dword, int16

std::size_t panel_count_rows(std::size_t m) { return (m + kPanelRows - 1) / kPanelRows; }
std::size_t panel_count_cols(std::size_t n) { return (n + kPanelCols - 1) / kPanelCols; }

/// Renormalize + saturate an int32 accumulator exactly as both engines do it:
/// modular add of the rounding half, arithmetic shift, clamp. Whenever the
/// true sum fits int32 (always for these formats in practice) this equals
/// fixed_renormalize on an int64 accumulator.
template <std::int32_t Lo, std::int32_t Hi>
std::int32_t renorm_clamp(std::uint32_t acc, std::int32_t half, int frac) {
  std::int32_t v = static_cast<std::int32_t>(acc + static_cast<std::uint32_t>(half));
  v >>= frac;
  return std::clamp(v, Lo, Hi);
}

}  // namespace

void pack_weights_s8(const float* w, const float* bias, std::size_t m, std::size_t k,
                     const FixedPointFormat& format, PackedWeightsS8& out) {
  const std::size_t panels = panel_count_rows(m);
  out.rows = m;
  out.cols = k;
  out.kp = padded_k_s8(k);
  out.panels.assign(panels * out.kp * kPanelRows, 0);
  out.seed.assign(panels * kPanelRows, 0);
  out.clamped = false;
  for (std::size_t r = 0; r < m; ++r) {
    std::int8_t* panel = out.panels.data() + (r / kPanelRows) * out.kp * kPanelRows;
    const std::size_t rr = r % kPanelRows;
    std::int32_t wsum = 0;
    const float* row = w + r * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      std::int32_t q = fixed_quantize(row[kk], format);
      if (q > kInt8WeightClamp) {
        q = kInt8WeightClamp;
        out.clamped = true;
      } else if (q < -kInt8WeightClamp) {
        q = -kInt8WeightClamp;
        out.clamped = true;
      }
      panel[(kk / kGroupS8) * (kPanelRows * kGroupS8) + rr * kGroupS8 + kk % kGroupS8] =
          static_cast<std::int8_t>(q);
      wsum += q;
    }
    // maddubs sees activations offset by +128; fold the compensation
    // -128 * sum(w) into the frac-aligned bias seed.
    out.seed[r] = (fixed_quantize(bias[r], format) << format.frac_bits) - 128 * wsum;
  }
}

void pack_weights_s16(const float* w, const float* bias, std::size_t m, std::size_t k,
                      const FixedPointFormat& format, PackedWeightsS16& out) {
  const std::size_t panels = panel_count_rows(m);
  out.rows = m;
  out.cols = k;
  out.kp = padded_k_s16(k);
  out.panels.assign(panels * out.kp * kPanelRows, 0);
  out.seed.assign(panels * kPanelRows, 0);
  for (std::size_t r = 0; r < m; ++r) {
    std::int16_t* panel = out.panels.data() + (r / kPanelRows) * out.kp * kPanelRows;
    const std::size_t rr = r % kPanelRows;
    const float* row = w + r * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      panel[(kk / kGroupS16) * (kPanelRows * kGroupS16) + rr * kGroupS16 + kk % kGroupS16] =
          static_cast<std::int16_t>(fixed_quantize(row[kk], format));
    }
    out.seed[r] = fixed_quantize(bias[r], format) << format.frac_bits;
  }
}

std::size_t packed_b_size_s8(std::size_t n, std::size_t k) {
  return panel_count_cols(n) * padded_k_s8(k) * kPanelCols;
}

std::size_t packed_b_size_s16(std::size_t n, std::size_t k) {
  return panel_count_cols(n) * padded_k_s16(k) * kPanelCols;
}

void im2col_pack_s8(const std::int8_t* in, std::size_t c_stride, std::size_t channels,
                    std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                    std::size_t oh, std::size_t ow, std::uint8_t* bpack, std::size_t col0,
                    std::size_t n_total) {
  // Same depth order k = (c*kh + ky)*kw + kx as the float im2col_pack. The
  // packed layout puts a column's 4-k group in one contiguous dword
  // ((k/4)*64 + j*4 + k%4), so instead of scattering bytes at stride 4 we
  // assemble each dword and store it whole. When the group's 4 k values sit in
  // one kernel row (kx..kx+3 < kw) their sources are 4 adjacent input bytes —
  // one unaligned u32 load — and the +128 u8 offset is a single
  // xor 0x80808080 on the dword.
  (void)n_total;
  (void)ih;
  const std::size_t kk_total = channels * kh * kw;
  const std::size_t kp = padded_k_s8(kk_total);
  const std::size_t panel_stride = kp * kPanelCols;
  constexpr std::uint32_t kOffset = 0x80808080u;  // +128 per byte == flip sign bit
  for (std::size_t k0 = 0; k0 < kk_total; k0 += kGroupS8) {
    const std::size_t live = std::min(kGroupS8, kk_total - k0);
    // Per-k source row base; the column's (y, x) adds y*iw + x to each.
    const std::int8_t* src_k[kGroupS8] = {};
    for (std::size_t b = 0; b < live; ++b) {
      const std::size_t k = k0 + b;
      const std::size_t c = k / (kh * kw), rem = k % (kh * kw);
      src_k[b] = in + c * c_stride + (rem / kw) * iw + rem % kw;
    }
    // Padding lanes of a partial tail group alias lane 0: the weight panels
    // are zero there, so the byte value never reaches an accumulator, and
    // both engines read the identical buffer either way.
    const std::int8_t* s0 = src_k[0];
    const std::int8_t* s1 = live > 1 ? src_k[1] : s0;
    const std::int8_t* s2 = live > 2 ? src_k[2] : s0;
    const std::int8_t* s3 = live > 3 ? src_k[3] : s0;
    const std::size_t group_off = (k0 / kGroupS8) * (kPanelCols * kGroupS8);
    for (std::size_t y = 0; y < oh; ++y) {
      const std::size_t g = col0 + y * ow;
      std::size_t j = g % kPanelCols;
      std::uint8_t* panel = bpack + (g / kPanelCols) * panel_stride + group_off;
      const std::size_t yoff = y * iw;
      std::size_t x = 0;
      while (x < ow) {
        std::size_t chunk = std::min(ow - x, kPanelCols - j);
#if defined(__SSE2__)
        // 4x8 byte transpose: 8 bytes from each source row interleave into
        // 8 consecutive column dwords (two punpck levels), offset to u8 with
        // one xor.
        for (; chunk >= 8; chunk -= 8, x += 8, j += 8) {
          const __m128i a =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s0 + yoff + x));
          const __m128i b =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s1 + yoff + x));
          const __m128i c2 =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s2 + yoff + x));
          const __m128i d =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(s3 + yoff + x));
          const __m128i ab = _mm_unpacklo_epi8(a, b);
          const __m128i cd = _mm_unpacklo_epi8(c2, d);
          const __m128i off = _mm_set1_epi8(static_cast<char>(0x80));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + j * kGroupS8),
                           _mm_xor_si128(_mm_unpacklo_epi16(ab, cd), off));
          _mm_storeu_si128(reinterpret_cast<__m128i*>(panel + j * kGroupS8 + 16),
                           _mm_xor_si128(_mm_unpackhi_epi16(ab, cd), off));
        }
#endif
        for (; chunk > 0; --chunk, ++x, ++j) {
          std::uint32_t v =
              static_cast<std::uint32_t>(static_cast<std::uint8_t>(s0[yoff + x])) |
              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s1[yoff + x])) << 8) |
              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s2[yoff + x])) << 16) |
              (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s3[yoff + x])) << 24);
          v ^= kOffset;
          std::memcpy(panel + j * kGroupS8, &v, sizeof(v));
        }
        if (j == kPanelCols) {
          j = 0;
          panel += panel_stride;
        }
      }
    }
  }
}

void im2col_pack_s16(const std::int16_t* in, std::size_t c_stride, std::size_t channels,
                     std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                     std::size_t oh, std::size_t ow, std::int16_t* bpack, std::size_t col0,
                     std::size_t n_total) {
  // Mirror of im2col_pack_s8: a column's k-pair is one contiguous dword
  // ((k/2)*32 + j*2 + k%2), assembled with a single unaligned u32 load when
  // the pair sits in one kernel row (kx + 1 < kw).
  (void)n_total;
  (void)ih;
  const std::size_t kk_total = channels * kh * kw;
  const std::size_t kp = padded_k_s16(kk_total);
  const std::size_t panel_stride = kp * kPanelCols;
  for (std::size_t k0 = 0; k0 < kk_total; k0 += kGroupS16) {
    const std::size_t live = std::min(kGroupS16, kk_total - k0);
    const std::int16_t* src_k[kGroupS16] = {};
    for (std::size_t b = 0; b < live; ++b) {
      const std::size_t k = k0 + b;
      const std::size_t c = k / (kh * kw), rem = k % (kh * kw);
      src_k[b] = in + c * c_stride + (rem / kw) * iw + rem % kw;
    }
    const bool contiguous = live == kGroupS16 && src_k[1] == src_k[0] + 1;
    const std::size_t group_off = (k0 / kGroupS16) * (kPanelCols * kGroupS16);
    for (std::size_t y = 0; y < oh; ++y) {
      const std::size_t g = col0 + y * ow;
      std::size_t j = g % kPanelCols;
      std::int16_t* panel = bpack + (g / kPanelCols) * panel_stride + group_off;
      const std::size_t yoff = y * iw;
      if (contiguous) {
        const std::int16_t* src = src_k[0] + yoff;
        for (std::size_t x = 0; x < ow; ++x) {
          std::uint32_t v;
          std::memcpy(&v, src + x, sizeof(v));
          std::memcpy(panel + j * kGroupS16, &v, sizeof(v));
          if (++j == kPanelCols) {
            j = 0;
            panel += panel_stride;
          }
        }
      } else {
        for (std::size_t x = 0; x < ow; ++x) {
          for (std::size_t b = 0; b < live; ++b) {
            panel[j * kGroupS16 + b] = src_k[b][yoff + x];
          }
          if (++j == kPanelCols) {
            j = 0;
            panel += panel_stride;
          }
        }
      }
    }
  }
}

void pack_b_s8(const void* const* rows, std::size_t n, std::size_t k,
               std::uint8_t* bpack) {
  const std::size_t kp = padded_k_s8(k);
  for (std::size_t q = 0; q < panel_count_cols(n); ++q) {
    std::uint8_t* panel = bpack + q * kp * kPanelCols;
    const std::size_t live = std::min(kPanelCols, n - q * kPanelCols);
    for (std::size_t j = 0; j < live; ++j) {
      const auto* src = static_cast<const std::int8_t*>(rows[q * kPanelCols + j]);
      for (std::size_t kk = 0; kk < k; ++kk) {
        panel[(kk / kGroupS8) * (kPanelCols * kGroupS8) + j * kGroupS8 + kk % kGroupS8] =
            static_cast<std::uint8_t>(src[kk] + 128);
      }
    }
  }
}

void pack_b_s16(const void* const* rows, std::size_t n, std::size_t k,
                std::int16_t* bpack) {
  const std::size_t kp = padded_k_s16(k);
  for (std::size_t q = 0; q < panel_count_cols(n); ++q) {
    std::int16_t* panel = bpack + q * kp * kPanelCols;
    const std::size_t live = std::min(kPanelCols, n - q * kPanelCols);
    for (std::size_t j = 0; j < live; ++j) {
      const auto* src = static_cast<const std::int16_t*>(rows[q * kPanelCols + j]);
      for (std::size_t kk = 0; kk < k; ++kk) {
        panel[(kk / kGroupS16) * (kPanelCols * kGroupS16) + j * kGroupS16 + kk % kGroupS16] =
            src[kk];
      }
    }
  }
}

void finish_pack_s8(std::uint8_t* bpack, std::size_t n, std::size_t k) {
  const std::size_t kp = padded_k_s8(k);
  const std::size_t panels = panel_count_cols(n);
  if (panels == 0) return;
  // Dead columns of the last panel, full depth.
  const std::size_t live = n - (panels - 1) * kPanelCols;
  if (live < kPanelCols) {
    std::uint8_t* panel = bpack + (panels - 1) * kp * kPanelCols;
    for (std::size_t kk = 0; kk < kp; ++kk) {
      std::uint8_t* group = panel + (kk / kGroupS8) * (kPanelCols * kGroupS8) + kk % kGroupS8;
      for (std::size_t j = live; j < kPanelCols; ++j) group[j * kGroupS8] = 0;
    }
  }
  // k-padding rows of every panel (paired with zero weight padding, so the
  // byte value only has to be deterministic; zero keeps maddubs inert).
  for (std::size_t q = 0; q < panels; ++q) {
    std::uint8_t* panel = bpack + q * kp * kPanelCols;
    for (std::size_t kk = k; kk < kp; ++kk) {
      std::uint8_t* group = panel + (kk / kGroupS8) * (kPanelCols * kGroupS8) + kk % kGroupS8;
      for (std::size_t j = 0; j < kPanelCols; ++j) group[j * kGroupS8] = 0;
    }
  }
}

void finish_pack_s16(std::int16_t* bpack, std::size_t n, std::size_t k) {
  const std::size_t kp = padded_k_s16(k);
  const std::size_t panels = panel_count_cols(n);
  if (panels == 0) return;
  const std::size_t live = n - (panels - 1) * kPanelCols;
  if (live < kPanelCols) {
    std::int16_t* panel = bpack + (panels - 1) * kp * kPanelCols;
    for (std::size_t kk = 0; kk < kp; ++kk) {
      std::int16_t* group =
          panel + (kk / kGroupS16) * (kPanelCols * kGroupS16) + kk % kGroupS16;
      for (std::size_t j = live; j < kPanelCols; ++j) group[j * kGroupS16] = 0;
    }
  }
  for (std::size_t q = 0; q < panels; ++q) {
    std::int16_t* panel = bpack + q * kp * kPanelCols;
    for (std::size_t kk = k; kk < kp; ++kk) {
      std::int16_t* group =
          panel + (kk / kGroupS16) * (kPanelCols * kGroupS16) + kk % kGroupS16;
      for (std::size_t j = 0; j < kPanelCols; ++j) group[j * kGroupS16] = 0;
    }
  }
}

namespace detail {

void gemm_s8_ref(const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
                 const FixedPointFormat& format, int act, std::int8_t* c, std::size_t ldc) {
  const int frac = format.frac_bits;
  const std::int32_t half = std::int32_t{1} << (frac - 1);
  const bool relu = act == static_cast<int>(ActKind::kReLU);
  const std::size_t kp = a.kp;
  for (std::size_t m = 0; m < a.rows; ++m) {
    const std::int8_t* apanel = a.panels.data() + (m / kPanelRows) * kp * kPanelRows;
    const std::size_t rr = m % kPanelRows;
    for (std::size_t col = 0; col < n; ++col) {
      const std::uint8_t* bpanel = bpack + (col / kPanelCols) * kp * kPanelCols;
      const std::size_t j = col % kPanelCols;
      std::uint32_t acc = static_cast<std::uint32_t>(a.seed[m]);
      for (std::size_t kk = 0; kk < a.cols; ++kk) {
        const std::size_t group = kk / kGroupS8, lane = kk % kGroupS8;
        const std::int32_t w =
            apanel[group * (kPanelRows * kGroupS8) + rr * kGroupS8 + lane];
        const std::int32_t x =
            bpanel[group * (kPanelCols * kGroupS8) + j * kGroupS8 + lane];
        acc += static_cast<std::uint32_t>(w * x);
      }
      std::int32_t v = renorm_clamp<-128, 127>(acc, half, frac);
      if (relu && v < 0) v = 0;
      c[m * ldc + col] = static_cast<std::int8_t>(v);
    }
  }
}

void gemm_s16_ref(const PackedWeightsS16& a, const std::int16_t* bpack, std::size_t n,
                  const FixedPointFormat& format, int act, std::int16_t* c,
                  std::size_t ldc) {
  const int frac = format.frac_bits;
  const std::int32_t half = std::int32_t{1} << (frac - 1);
  const bool relu = act == static_cast<int>(ActKind::kReLU);
  const std::size_t kp = a.kp;
  for (std::size_t m = 0; m < a.rows; ++m) {
    const std::int16_t* apanel = a.panels.data() + (m / kPanelRows) * kp * kPanelRows;
    const std::size_t rr = m % kPanelRows;
    for (std::size_t col = 0; col < n; ++col) {
      const std::int16_t* bpanel = bpack + (col / kPanelCols) * kp * kPanelCols;
      const std::size_t j = col % kPanelCols;
      std::uint32_t acc = static_cast<std::uint32_t>(a.seed[m]);
      for (std::size_t kk = 0; kk < a.cols; ++kk) {
        const std::size_t group = kk / kGroupS16, lane = kk % kGroupS16;
        const std::int32_t w =
            apanel[group * (kPanelRows * kGroupS16) + rr * kGroupS16 + lane];
        const std::int32_t x =
            bpanel[group * (kPanelCols * kGroupS16) + j * kGroupS16 + lane];
        acc += static_cast<std::uint32_t>(w * x);
      }
      std::int32_t v = renorm_clamp<-32768, 32767>(acc, half, frac);
      if (relu && v < 0) v = 0;
      c[m * ldc + col] = static_cast<std::int16_t>(v);
    }
  }
}

}  // namespace detail

void gemm_s8(Kind kind, const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
             const FixedPointFormat& format, int act, std::int8_t* c, std::size_t ldc) {
  if (kind == Kind::kAvx2) {
    detail::gemm_s8_avx2(a, bpack, n, format, act, c, ldc);
  } else {
    detail::gemm_s8_ref(a, bpack, n, format, act, c, ldc);
  }
}

void gemm_s16(Kind kind, const PackedWeightsS16& a, const std::int16_t* bpack,
              std::size_t n, const FixedPointFormat& format, int act, std::int16_t* c,
              std::size_t ldc) {
  if (kind == Kind::kAvx2) {
    detail::gemm_s16_avx2(a, bpack, n, format, act, c, ldc);
  } else {
    detail::gemm_s16_ref(a, bpack, n, format, act, c, ldc);
  }
}

namespace {

/// Integer pooling shared by both engines: max is value-exact; mean uses the
/// symmetric round-half-away divide + saturate of fixed_inference's run_pool.
template <typename T>
void pool_plane_int(bool is_max, const T* in, std::size_t ih, std::size_t iw,
                    std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                    std::size_t ow, T* out, const FixedPointFormat& format) {
  (void)ih;
  for (std::size_t i = 0; i < oh; ++i) {
    for (std::size_t j = 0; j < ow; ++j) {
      if (is_max) {
        T best = in[(i * step) * iw + j * step];
        for (std::size_t m = 0; m < kh; ++m) {
          for (std::size_t n2 = 0; n2 < kw; ++n2) {
            best = std::max(best, in[(i * step + m) * iw + (j * step + n2)]);
          }
        }
        out[i * ow + j] = best;
      } else {
        std::int64_t acc = 0;
        for (std::size_t m = 0; m < kh; ++m) {
          for (std::size_t n2 = 0; n2 < kw; ++n2) {
            acc += in[(i * step + m) * iw + (j * step + n2)];
          }
        }
        const std::int64_t window = static_cast<std::int64_t>(kh * kw);
        const std::int64_t mean =
            acc >= 0 ? (acc + window / 2) / window : -((-acc + window / 2) / window);
        out[i * ow + j] = static_cast<T>(fixed_saturate(mean, format));
      }
    }
  }
}

}  // namespace

void pool_plane_s8(bool is_max, const std::int8_t* in, std::size_t ih, std::size_t iw,
                   std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                   std::size_t ow, std::int8_t* out, const FixedPointFormat& format) {
  pool_plane_int(is_max, in, ih, iw, kh, kw, step, oh, ow, out, format);
}

void pool_plane_s16(bool is_max, const std::int16_t* in, std::size_t ih, std::size_t iw,
                    std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                    std::size_t ow, std::int16_t* out, const FixedPointFormat& format) {
  pool_plane_int(is_max, in, ih, iw, kh, kw, step, oh, ow, out, format);
}

void quantize_input_s8(const float* in, std::size_t n, const FixedPointFormat& format,
                       std::int8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int8_t>(fixed_quantize(in[i], format));
  }
}

void quantize_input_s16(const float* in, std::size_t n, const FixedPointFormat& format,
                        std::int16_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int16_t>(fixed_quantize(in[i], format));
  }
}

void activation_lut_s8(ActKind act, const std::int8_t* lut, const std::int8_t* in,
                       std::int8_t* out, std::size_t n) {
  if (act == ActKind::kReLU) {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0 ? in[i] : std::int8_t{0};
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = lut[static_cast<int>(in[i]) + 128];
}

void activation_lut_s16(ActKind act, const std::int16_t* lut, const std::int16_t* in,
                        std::int16_t* out, std::size_t n) {
  if (act == ActKind::kReLU) {
    for (std::size_t i = 0; i < n; ++i) out[i] = in[i] > 0 ? in[i] : std::int16_t{0};
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lut[static_cast<std::uint16_t>(in[i])];
  }
}

QuantPackCache::QuantPackCache(std::size_t layer_count, ServePrecision precision)
    : precision_(precision), format_(serve_precision_format(precision)) {
  entries_.reserve(layer_count);
  for (std::size_t i = 0; i < layer_count; ++i) {
    entries_.push_back(std::make_unique<Entry>());
  }
}

const PackedWeightsS8& QuantPackCache::get8(std::size_t layer, const float* w,
                                            const float* bias, std::size_t m,
                                            std::size_t k) {
  if (layer >= entries_.size()) throw std::out_of_range("QuantPackCache::get8: layer index");
  Entry& e = *entries_[layer];
  std::call_once(e.once, [&] {
    pack_weights_s8(w, bias, m, k, format_, e.p8);
    e.ready = true;
  });
  return e.p8;
}

const PackedWeightsS16& QuantPackCache::get16(std::size_t layer, const float* w,
                                              const float* bias, std::size_t m,
                                              std::size_t k) {
  if (layer >= entries_.size()) throw std::out_of_range("QuantPackCache::get16: layer index");
  Entry& e = *entries_[layer];
  std::call_once(e.once, [&] {
    pack_weights_s16(w, bias, m, k, format_, e.p16);
    e.ready = true;
  });
  return e.p16;
}

const std::int8_t* QuantPackCache::lut8(ActKind act) {
  Lut& lut = luts_.at(static_cast<std::size_t>(act));
  std::call_once(lut.once, [&] {
    lut.t8.resize(256);
    for (int raw = -128; raw <= 127; ++raw) {
      const float y = Activation::apply(act, fixed_dequantize(raw, format_));
      lut.t8[raw + 128] = static_cast<std::int8_t>(fixed_quantize(y, format_));
    }
  });
  return lut.t8.data();
}

const std::int16_t* QuantPackCache::lut16(ActKind act) {
  Lut& lut = luts_.at(static_cast<std::size_t>(act));
  std::call_once(lut.once, [&] {
    lut.t16.resize(65536);
    for (int raw = -32768; raw <= 32767; ++raw) {
      const float y = Activation::apply(act, fixed_dequantize(raw, format_));
      lut.t16[static_cast<std::uint16_t>(raw)] =
          static_cast<std::int16_t>(fixed_quantize(y, format_));
    }
  });
  return lut.t16.data();
}

std::size_t QuantPackCache::built() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e->ready) ++n;
  }
  return n;
}

#ifndef CNN2FPGA_HAVE_AVX2
namespace detail {
namespace {
[[noreturn]] void no_avx2_int() {
  throw std::runtime_error("cnn2fpga: AVX2 int kernel invoked but engine not compiled in");
}
}  // namespace

void gemm_s8_avx2(const PackedWeightsS8&, const std::uint8_t*, std::size_t,
                  const FixedPointFormat&, int, std::int8_t*, std::size_t) {
  no_avx2_int();
}
void gemm_s16_avx2(const PackedWeightsS16&, const std::int16_t*, std::size_t,
                   const FixedPointFormat&, int, std::int16_t*, std::size_t) {
  no_avx2_int();
}
}  // namespace detail
#endif  // !CNN2FPGA_HAVE_AVX2

}  // namespace cnn2fpga::nn::kernels
