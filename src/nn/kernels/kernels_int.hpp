// Quantized (int8 / int16) GEMM microkernels and packing.
//
// The serving engine's quantized path computes in the exact Q(m,n) arithmetic
// of nn::FixedInference (frac-scaled two's-complement raw values, int32
// accumulation at 2*frac scale, round-half-up renormalize, saturate), but on
// packed panels the AVX2 engine can stream:
//
//   int8  (Q4.4)  — VPMADDUBSW over unsigned-offset activation panels.
//     Activations are stored as raw s8 between layers and offset by +128 into
//     u8 *at pack time* (maddubs multiplies u8 x s8); the compensation term
//     -128 * sum_k(w) plus the frac-aligned bias is folded into each row's
//     int32 accumulator seed. Weights are clamped to +/-kInt8WeightClamp so
//     one maddubs pair-sum is bounded by 2*255*31 = 15810 and TWO maddubs
//     results combine with a saturation-free adds_epi16 (<= 31620 < 32767)
//     before a single pmaddwd widens 8 k-steps to int32 — ~2.5 ALU ops per
//     32 MACs where the float kernel needs 1 FMA per 8.
//   int16 (Q8.8)  — VPMADDWD over pair-interleaved s16 panels, int32
//     accumulation. ALU-neutral vs float FMA but half the operand traffic.
//
// Every product and (modular int32) add is exact, so accumulation order
// cannot change the result: the scalar reference kernels here are
// bit-identical to the AVX2 kernels on every input, and — whenever the true
// accumulator fits int32, always in practice for these formats — identical to
// forward_fixed's int64 math. The int8 path additionally differs from
// forward_fixed only when a weight exceeds the +/-31-raw clamp (|w| > 1.9375
// at Q4.4), which deploy-time validation measures rather than assumes.
//
// Non-ReLU activations go through shared per-raw-value lookup tables built
// from the identical dequantize -> Activation::apply -> quantize sequence
// forward_fixed uses, so both engines and the fixed model agree bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/activation.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/quantize.hpp"
#include "util/aligned.hpp"

namespace cnn2fpga::nn::kernels {

/// Raw-value clamp applied to int8 weights so the maddubs/adds_epi16 pipeline
/// cannot saturate (see header comment). At Q4.4 this bounds |w| <= 1.9375.
inline constexpr std::int32_t kInt8WeightClamp = 31;

/// k-depth padding of the packed operands: the int8 microkernel consumes k in
/// groups of 8 (two 4-k dwords per adds_epi16), the int16 kernel in pairs.
inline std::size_t padded_k_s8(std::size_t k) { return (k + 7) & ~std::size_t{7}; }
inline std::size_t padded_k_s16(std::size_t k) { return (k + 1) & ~std::size_t{1}; }

/// Quantized weight matrix (M x K) in kPanelRows-row panels. Within a panel,
/// k runs in dword groups so the microkernel broadcasts one 32-bit lane per
/// row: panels[p*kp*6 + (k/4)*24 + r*4 + (k%4)] = wq[p*6+r][k] (int8, groups
/// of 4) and panels[p*kp*6 + (k/2)*12 + r*2 + (k%2)] (int16, pairs). Padding
/// rows/k are zero. `seed[m]` is the row's int32 accumulator seed.
struct PackedWeightsS8 {
  std::size_t rows = 0;  ///< M
  std::size_t cols = 0;  ///< K (logical; panels hold kp = padded_k_s8(K))
  std::size_t kp = 0;
  util::aligned_vector<std::int8_t> panels;
  util::aligned_vector<std::int32_t> seed;  ///< (bias<<frac) - 128 * sum_k(wq)
  bool clamped = false;  ///< any weight hit +/-kInt8WeightClamp
};

struct PackedWeightsS16 {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t kp = 0;
  util::aligned_vector<std::int16_t> panels;
  util::aligned_vector<std::int32_t> seed;  ///< bias<<frac
};

void pack_weights_s8(const float* w, const float* bias, std::size_t m, std::size_t k,
                     const FixedPointFormat& format, PackedWeightsS8& out);
void pack_weights_s16(const float* w, const float* bias, std::size_t m, std::size_t k,
                      const FixedPointFormat& format, PackedWeightsS16& out);

/// Elements of packed-B storage for an N-column, K-deep quantized operand:
/// ceil(N/16) panels of padded_k * 16.
std::size_t packed_b_size_s8(std::size_t n, std::size_t k);
std::size_t packed_b_size_s16(std::size_t n, std::size_t k);

/// im2col of raw s8 activations straight into offset-u8 packed-B panels
/// (each byte stores raw + 128): bpack[q*kp*16 + (k/4)*64 + j*4 + (k%4)] for
/// global column q*16+j. Mirrors kernels::im2col_pack's geometry contract.
void im2col_pack_s8(const std::int8_t* in, std::size_t c_stride, std::size_t channels,
                    std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                    std::size_t oh, std::size_t ow, std::uint8_t* bpack, std::size_t col0,
                    std::size_t n_total);
void im2col_pack_s16(const std::int16_t* in, std::size_t c_stride, std::size_t channels,
                     std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                     std::size_t oh, std::size_t ow, std::int16_t* bpack, std::size_t col0,
                     std::size_t n_total);

/// Pack row-major B rows (rows[i] -> K contiguous raw values of the matching
/// width) into panels; int8 rows are offset to u8 while packing. `rows` is
/// type-erased so one caller-side pointer array serves both widths.
void pack_b_s8(const void* const* rows, std::size_t n, std::size_t k,
               std::uint8_t* bpack);
void pack_b_s16(const void* const* rows, std::size_t n, std::size_t k,
                std::int16_t* bpack);

/// Zero the padding of a freshly packed B: the dead columns of the last panel
/// and the k-padding rows of every panel. Must run after the pack calls and
/// before gemm (the buffers are reused across layers of different sizes).
void finish_pack_s8(std::uint8_t* bpack, std::size_t n, std::size_t k);
void finish_pack_s16(std::int16_t* bpack, std::size_t n, std::size_t k);

/// Quantized GEMM with fused renormalize (+ optional ReLU) epilogue:
///   C[m][n] = sat(renorm(seed[m] + sum_k wq[m][k] * xq[n][k]))
/// with C row stride ldc; `act` < 0 applies no activation, ActKind::kReLU is
/// fused after the saturate (exact in fixed point). Other activations must be
/// applied by the caller via activation_lut_* (table built per format).
/// `kind` selects the engine: kScalar runs the bit-identical portable
/// reference, kAvx2 the SIMD microkernel (requires avx2_available()).
void gemm_s8(Kind kind, const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
             const FixedPointFormat& format, int act, std::int8_t* c, std::size_t ldc);
void gemm_s16(Kind kind, const PackedWeightsS16& a, const std::int16_t* bpack,
              std::size_t n, const FixedPointFormat& format, int act, std::int16_t* c,
              std::size_t ldc);

/// Integer pooling over one channel plane, exact forward_fixed semantics
/// (max: value-exact; mean: symmetric round-half-away integer divide, then
/// saturate). Portable scalar code shared by both engines.
void pool_plane_s8(bool is_max, const std::int8_t* in, std::size_t ih, std::size_t iw,
                   std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                   std::size_t ow, std::int8_t* out, const FixedPointFormat& format);
void pool_plane_s16(bool is_max, const std::int16_t* in, std::size_t ih, std::size_t iw,
                    std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                    std::size_t ow, std::int16_t* out, const FixedPointFormat& format);

/// Quantize a float input image into raw fixed values (fixed_quantize per
/// element — identical to forward_fixed's input quantization).
void quantize_input_s8(const float* in, std::size_t n, const FixedPointFormat& format,
                       std::int8_t* out);
void quantize_input_s16(const float* in, std::size_t n, const FixedPointFormat& format,
                        std::int16_t* out);

/// Elementwise activation on raw values. ReLU is computed directly; tanh /
/// sigmoid go through `lut` (256 entries indexed by raw+128 for s8, 65536
/// indexed by uint16(raw) for s16). in == out allowed.
void activation_lut_s8(ActKind act, const std::int8_t* lut, const std::int8_t* in,
                       std::int8_t* out, std::size_t n);
void activation_lut_s16(ActKind act, const std::int16_t* lut, const std::int16_t* in,
                        std::int16_t* out, std::size_t n);

namespace detail {
/// Engine implementations behind gemm_s8/gemm_s16. The _avx2 symbols live in
/// kernels_int_avx2.cpp (throwing stubs without CNN2FPGA_HAVE_AVX2); the _ref
/// scalar kernels read the same packed bytes and are bit-identical.
void gemm_s8_ref(const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
                 const FixedPointFormat& format, int act, std::int8_t* c, std::size_t ldc);
void gemm_s16_ref(const PackedWeightsS16& a, const std::int16_t* bpack, std::size_t n,
                  const FixedPointFormat& format, int act, std::int16_t* c, std::size_t ldc);
void gemm_s8_avx2(const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
                  const FixedPointFormat& format, int act, std::int8_t* c, std::size_t ldc);
void gemm_s16_avx2(const PackedWeightsS16& a, const std::int16_t* bpack, std::size_t n,
                   const FixedPointFormat& format, int act, std::int16_t* c,
                   std::size_t ldc);
}  // namespace detail

/// Per-network cache of quantized weight panels + activation tables for ONE
/// serving precision, shared across an ExecutionContextPool exactly like
/// PackCache: each layer quantizes/packs once per deployed design, lazily
/// under a once_flag. Assumes frozen weights.
class QuantPackCache {
 public:
  QuantPackCache(std::size_t layer_count, ServePrecision precision);

  ServePrecision precision() const { return precision_; }
  const FixedPointFormat& format() const { return format_; }

  const PackedWeightsS8& get8(std::size_t layer, const float* w, const float* bias,
                              std::size_t m, std::size_t k);
  const PackedWeightsS16& get16(std::size_t layer, const float* w, const float* bias,
                                std::size_t m, std::size_t k);

  /// Lazily built activation tables (nullptr is never returned; ReLU needs no
  /// table and must not ask for one).
  const std::int8_t* lut8(ActKind act);
  const std::int16_t* lut16(ActKind act);

  /// Number of layers with a built pack (diagnostics).
  std::size_t built() const;

 private:
  struct Entry {
    std::once_flag once;
    PackedWeightsS8 p8;
    PackedWeightsS16 p16;
    bool ready = false;
  };
  struct Lut {
    std::once_flag once;
    util::aligned_vector<std::int8_t> t8;
    util::aligned_vector<std::int16_t> t16;
  };

  ServePrecision precision_;
  FixedPointFormat format_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::array<Lut, 3> luts_;  ///< indexed by ActKind
};

}  // namespace cnn2fpga::nn::kernels
