// AVX2 transcendental helpers for the kernel engine's activation epilogues.
//
// exp256_ps is the classic Cephes-derived range-reduction + degree-5
// polynomial (as popularized by Pommier's sse_mathfun): accurate to ~1 ulp
// over the clamped domain, which keeps tanh/sigmoid within ~1e-7 relative of
// libm — far inside the engine's documented 1e-4 tolerance versus the scalar
// reference.
//
// This header must only be included from translation units compiled with
// -mavx2 -mfma (see src/nn/CMakeLists.txt).
#pragma once

#include <immintrin.h>

#include <cstddef>

namespace cnn2fpga::nn::kernels {

inline __m256 exp256_ps(__m256 x) {
  const __m256 exp_hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 exp_lo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  // ln2 split into a high part exactly representable in float and a low-order
  // correction, so n*ln2 can be subtracted without cancellation error.
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 p0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 p1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 p2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 p3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 p4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 p5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, exp_hi);
  x = _mm256_max_ps(x, exp_lo);

  // n = round(x * log2(e));  r = x - n*ln2 in two steps.
  __m256 fn = _mm256_round_ps(_mm256_mul_ps(x, log2e),
                              _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(fn, c1, x);
  r = _mm256_fnmadd_ps(fn, c2, r);

  __m256 r2 = _mm256_mul_ps(r, r);
  __m256 y = p0;
  y = _mm256_fmadd_ps(y, r, p1);
  y = _mm256_fmadd_ps(y, r, p2);
  y = _mm256_fmadd_ps(y, r, p3);
  y = _mm256_fmadd_ps(y, r, p4);
  y = _mm256_fmadd_ps(y, r, p5);
  y = _mm256_fmadd_ps(y, r2, _mm256_add_ps(r, one));

  // 2^n via exponent-field construction.
  __m256i n = _mm256_cvtps_epi32(fn);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

/// tanh(x) = sign(x) * (1 - e) / (1 + e) with e = exp(-2|x|); this form never
/// overflows and is monotone-saturating for large |x|.
inline __m256 tanh256_ps(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 one = _mm256_set1_ps(1.0f);
  __m256 sign = _mm256_and_ps(x, sign_mask);
  __m256 ax = _mm256_andnot_ps(sign_mask, x);
  __m256 e = exp256_ps(_mm256_mul_ps(ax, _mm256_set1_ps(-2.0f)));
  __m256 t = _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e));
  return _mm256_or_ps(t, sign);
}

/// sigmoid(x) = 1 / (1 + exp(-x)).
inline __m256 sigmoid256_ps(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  __m256 e = exp256_ps(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

/// AVX2 mask with the first `live` (1..8) lanes enabled for maskload/maskstore.
inline __m256i tail_mask(std::size_t live) {
  alignas(32) static const int kMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                            0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMask + 8 - live));
}

}  // namespace cnn2fpga::nn::kernels
