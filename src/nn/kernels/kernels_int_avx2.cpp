// AVX2 quantized GEMM microkernels. Compiled with -mavx2 -mfma (the FMA flag
// only keeps the TU's flags uniform with kernels_avx2.cpp; these kernels are
// pure integer SIMD).
//
// int8 (gemm_s8_avx2): 6x16 register-blocked, 12 YMM int32 accumulators
// seeded with (bias<<frac) - 128*sum(w). B panels hold offset-u8 activations
// in dword groups of 4 consecutive k; A panels hold the matching s8 weight
// dwords per row, broadcast with one vpbroadcastd each. Per 8 k-steps:
// two vpmaddubsw pair-sums (bounded by the +/-31 weight clamp, so exact),
// one saturation-free vpaddsw combine, one vpmaddwd widen, one vpaddd — 30
// vector ops per 6x16x8 = 768 MACs versus 96 FMAs on the float path.
//
// int16 (gemm_s16_avx2): same blocking over pair-interleaved s16 panels; one
// vpmaddwd + vpaddd per 2 k-steps per 8 columns. ALU-neutral with float FMA
// but half the operand bytes, which is where its speedup comes from.
//
// Epilogues renormalize in-register (modular add of the rounding half +
// arithmetic shift), then let the saturating pack instructions perform the
// fixed_saturate clamp exactly; fused ReLU applies to the packed lanes.
// Everything is modular int32 arithmetic on exact products, so these kernels
// are bit-identical to the _ref kernels in kernels_int.cpp.
#include "nn/kernels/kernels_int.hpp"

#ifdef CNN2FPGA_HAVE_AVX2

#include <immintrin.h>

#include <cstring>

namespace cnn2fpga::nn::kernels::detail {

namespace {

inline __m256i broadcast_dword(const void* p) {
  std::int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return _mm256_set1_epi32(v);
}

/// (acc + half) >> frac on 8 int32 lanes; the add wraps and the shift is
/// arithmetic, matching the scalar reference's uint32 + srai sequence.
inline __m256i renorm8(__m256i acc, __m256i half, __m128i shift) {
  return _mm256_sra_epi32(_mm256_add_epi32(acc, half), shift);
}

/// Narrow two renormalized int32 octets (columns 0-7, 8-15) to 16 saturated
/// int8 lanes in column order. packs_epi32 / packs_epi16 saturate exactly
/// like fixed_saturate's clamp to [-128, 127].
inline __m128i narrow_s8(__m256i lo, __m256i hi) {
  __m256i w = _mm256_packs_epi32(lo, hi);          // lo0-3 hi0-3 | lo4-7 hi4-7
  w = _mm256_permute4x64_epi64(w, 0xD8);           // lo0-7 | hi0-7
  return _mm_packs_epi16(_mm256_castsi256_si128(w), _mm256_extracti128_si256(w, 1));
}

/// Same narrowing to 16 saturated int16 lanes ([-32768, 32767]).
inline __m256i narrow_s16(__m256i lo, __m256i hi) {
  return _mm256_permute4x64_epi64(_mm256_packs_epi32(lo, hi), 0xD8);
}

}  // namespace

void gemm_s8_avx2(const PackedWeightsS8& a, const std::uint8_t* bpack, std::size_t n,
                  const FixedPointFormat& format, int act, std::int8_t* c,
                  std::size_t ldc) {
  const std::size_t kp = a.kp;
  const __m256i ones = _mm256_set1_epi16(1);
  const __m256i half = _mm256_set1_epi32(std::int32_t{1} << (format.frac_bits - 1));
  const __m128i shift = _mm_cvtsi32_si128(format.frac_bits);
  const bool relu = act == static_cast<int>(ActKind::kReLU);
  const __m128i zero8 = _mm_setzero_si128();

  for (std::size_t q = 0; q * kPanelCols < n; ++q) {
    const std::uint8_t* bpanel = bpack + q * kp * kPanelCols;
    const std::size_t live_cols = std::min(kPanelCols, n - q * kPanelCols);
    for (std::size_t p = 0; p * kPanelRows < a.rows; ++p) {
      const std::int8_t* apanel = a.panels.data() + p * kp * kPanelRows;
      const std::int32_t* seed = a.seed.data() + p * kPanelRows;
      const std::size_t live_rows = std::min(kPanelRows, a.rows - p * kPanelRows);

      __m256i acc_lo[kPanelRows], acc_hi[kPanelRows];
      for (std::size_t r = 0; r < kPanelRows; ++r) {
        acc_lo[r] = _mm256_set1_epi32(seed[r]);
        acc_hi[r] = acc_lo[r];
      }

      for (std::size_t g = 0; g < kp; g += 8) {
        const std::uint8_t* bk = bpanel + g * kPanelCols;
        const __m256i b0_lo = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk));
        const __m256i b0_hi = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk + 32));
        const __m256i b1_lo = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk + 64));
        const __m256i b1_hi = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk + 96));
        const std::int8_t* ak = apanel + g * kPanelRows;
        for (std::size_t r = 0; r < kPanelRows; ++r) {
          const __m256i a0 = broadcast_dword(ak + r * 4);
          const __m256i a1 = broadcast_dword(ak + kPanelRows * 4 + r * 4);
          const __m256i s_lo = _mm256_adds_epi16(_mm256_maddubs_epi16(b0_lo, a0),
                                                 _mm256_maddubs_epi16(b1_lo, a1));
          const __m256i s_hi = _mm256_adds_epi16(_mm256_maddubs_epi16(b0_hi, a0),
                                                 _mm256_maddubs_epi16(b1_hi, a1));
          acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(s_lo, ones));
          acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(s_hi, ones));
        }
      }

      for (std::size_t r = 0; r < live_rows; ++r) {
        __m128i bytes = narrow_s8(renorm8(acc_lo[r], half, shift),
                                  renorm8(acc_hi[r], half, shift));
        if (relu) bytes = _mm_max_epi8(bytes, zero8);
        std::int8_t* dst = c + (p * kPanelRows + r) * ldc + q * kPanelCols;
        if (live_cols == kPanelCols) {
          _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), bytes);
        } else {
          alignas(16) std::int8_t tmp[16];
          _mm_store_si128(reinterpret_cast<__m128i*>(tmp), bytes);
          std::memcpy(dst, tmp, live_cols);
        }
      }
    }
  }
}

void gemm_s16_avx2(const PackedWeightsS16& a, const std::int16_t* bpack, std::size_t n,
                   const FixedPointFormat& format, int act, std::int16_t* c,
                   std::size_t ldc) {
  const std::size_t kp = a.kp;
  const __m256i half = _mm256_set1_epi32(std::int32_t{1} << (format.frac_bits - 1));
  const __m128i shift = _mm_cvtsi32_si128(format.frac_bits);
  const bool relu = act == static_cast<int>(ActKind::kReLU);
  const __m256i zero16 = _mm256_setzero_si256();

  for (std::size_t q = 0; q * kPanelCols < n; ++q) {
    const std::int16_t* bpanel = bpack + q * kp * kPanelCols;
    const std::size_t live_cols = std::min(kPanelCols, n - q * kPanelCols);
    for (std::size_t p = 0; p * kPanelRows < a.rows; ++p) {
      const std::int16_t* apanel = a.panels.data() + p * kp * kPanelRows;
      const std::int32_t* seed = a.seed.data() + p * kPanelRows;
      const std::size_t live_rows = std::min(kPanelRows, a.rows - p * kPanelRows);

      __m256i acc_lo[kPanelRows], acc_hi[kPanelRows];
      for (std::size_t r = 0; r < kPanelRows; ++r) {
        acc_lo[r] = _mm256_set1_epi32(seed[r]);
        acc_hi[r] = acc_lo[r];
      }

      for (std::size_t g = 0; g < kp; g += 2) {
        const std::int16_t* bk = bpanel + g * kPanelCols;
        const __m256i b_lo = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk));
        const __m256i b_hi = _mm256_load_si256(reinterpret_cast<const __m256i*>(bk + 16));
        const std::int16_t* ak = apanel + g * kPanelRows;
        for (std::size_t r = 0; r < kPanelRows; ++r) {
          const __m256i av = broadcast_dword(ak + r * 2);
          acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(b_lo, av));
          acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(b_hi, av));
        }
      }

      for (std::size_t r = 0; r < live_rows; ++r) {
        __m256i words = narrow_s16(renorm8(acc_lo[r], half, shift),
                                   renorm8(acc_hi[r], half, shift));
        if (relu) words = _mm256_max_epi16(words, zero16);
        std::int16_t* dst = c + (p * kPanelRows + r) * ldc + q * kPanelCols;
        if (live_cols == kPanelCols) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), words);
        } else {
          alignas(32) std::int16_t tmp[16];
          _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), words);
          std::memcpy(dst, tmp, live_cols * sizeof(std::int16_t));
        }
      }
    }
  }
}

}  // namespace cnn2fpga::nn::kernels::detail

#endif  // CNN2FPGA_HAVE_AVX2
