// Portable half of the kernel engine: dispatch resolution, operand packing,
// and the shared weight-pack cache. The AVX2 compute entry points (gemm,
// pool_plane, activation_apply, logsoftmax) live in kernels_avx2.cpp, which is
// compiled with -mavx2 -mfma only when the toolchain supports it; without
// CNN2FPGA_HAVE_AVX2 those symbols become throwing stubs here and active()
// always resolves to kScalar.
#include "nn/kernels/kernels.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace cnn2fpga::nn::kernels {

namespace {

Kind resolve_default() {
  const char* env = std::getenv("CNN2FPGA_KERNEL");
  if (env != nullptr && *env != '\0') {
    const std::string want(env);
    if (want == "scalar") return Kind::kScalar;
    if (want == "avx2") {
      if (avx2_available()) return Kind::kAvx2;
      std::fprintf(stderr,
                   "cnn2fpga: CNN2FPGA_KERNEL=avx2 requested but AVX2+FMA is "
                   "unavailable on this host; falling back to scalar kernels\n");
      return Kind::kScalar;
    }
    std::fprintf(stderr, "cnn2fpga: unknown CNN2FPGA_KERNEL=%s (expected scalar|avx2); using auto detection\n",
                 env);
  }
  return avx2_available() ? Kind::kAvx2 : Kind::kScalar;
}

Kind& mutable_active() {
  static Kind kind = resolve_default();
  return kind;
}

}  // namespace

Kind active() { return mutable_active(); }

bool avx2_available() {
#ifdef CNN2FPGA_HAVE_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kScalar: return "scalar";
    case Kind::kAvx2: return "avx2";
  }
  return "?";
}

ScopedKernelOverride::ScopedKernelOverride(Kind kind) : previous_(mutable_active()) {
  if (kind == Kind::kAvx2 && !avx2_available()) {
    throw std::runtime_error("ScopedKernelOverride: AVX2 engine unavailable on this host");
  }
  mutable_active() = kind;
}

ScopedKernelOverride::~ScopedKernelOverride() { mutable_active() = previous_; }

void pack_a(const float* w, std::size_t m, std::size_t k, PackedA& out) {
  const std::size_t panels = (m + kPanelRows - 1) / kPanelRows;
  out.rows = m;
  out.cols = k;
  out.data.assign(panels * k * kPanelRows, 0.0f);
  float* dst = out.data.data();
  for (std::size_t p = 0; p < panels; ++p) {
    float* panel = dst + p * k * kPanelRows;
    const std::size_t live = std::min(kPanelRows, m - p * kPanelRows);
    for (std::size_t r = 0; r < live; ++r) {
      const float* row = w + (p * kPanelRows + r) * k;
      for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kPanelRows + r] = row[kk];
    }
  }
}

std::size_t packed_b_size(std::size_t n, std::size_t k) {
  return ((n + kPanelCols - 1) / kPanelCols) * k * kPanelCols;
}

void pack_b(const float* const* rows, std::size_t n, std::size_t k, float* bpack) {
  const std::size_t panels = (n + kPanelCols - 1) / kPanelCols;
  for (std::size_t q = 0; q < panels; ++q) {
    float* panel = bpack + q * k * kPanelCols;
    const std::size_t live = std::min(kPanelCols, n - q * kPanelCols);
    for (std::size_t j = 0; j < live; ++j) {
      const float* src = rows[q * kPanelCols + j];
      for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kPanelCols + j] = src[kk];
    }
    for (std::size_t j = live; j < kPanelCols; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kPanelCols + j] = 0.0f;
    }
  }
}

void zero_pack_tail(float* bpack, std::size_t n, std::size_t k) {
  const std::size_t panels = (n + kPanelCols - 1) / kPanelCols;
  if (panels == 0) return;
  const std::size_t live = n - (panels - 1) * kPanelCols;
  if (live == kPanelCols) return;
  float* panel = bpack + (panels - 1) * k * kPanelCols;
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t j = live; j < kPanelCols; ++j) panel[kk * kPanelCols + j] = 0.0f;
  }
}

void im2col_pack(const float* in, std::size_t c_stride, std::size_t channels,
                 std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                 std::size_t oh, std::size_t ow, float* bpack, std::size_t col0,
                 std::size_t n_total) {
  // Depth index k = (c*kh + ky)*kw + kx matches the (c, m, n) patch order of
  // Conv2D::infer_into's im2col, so a packed GEMM against pack_a(weights)
  // computes the same dot products as the seed path.
  (void)n_total;
  const std::size_t depth_stride = kPanelCols;  // one k step inside a panel
  std::size_t k = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    const float* xc = in + c * c_stride;
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx, ++k) {
        // Walk the oh*ow output pixels for this fixed depth index; source
        // elements along x are contiguous, destination advances one packed
        // lane at a time (wrapping to the next panel every 16 columns).
        for (std::size_t y = 0; y < oh; ++y) {
          const float* src = xc + (y + ky) * iw + kx;
          std::size_t g = col0 + y * ow;  // global packed column
          std::size_t q = g / kPanelCols;
          std::size_t j = g % kPanelCols;
          const std::size_t total_k = channels * kh * kw;
          float* panel = bpack + q * total_k * kPanelCols + k * depth_stride;
          for (std::size_t x = 0; x < ow; ++x) {
            panel[j] = src[x];
            if (++j == kPanelCols) {
              j = 0;
              panel += total_k * kPanelCols;
            }
          }
        }
      }
    }
  }
}

PackCache::PackCache(std::size_t layer_count) {
  entries_.reserve(layer_count);
  for (std::size_t i = 0; i < layer_count; ++i) entries_.push_back(std::make_unique<Entry>());
}

const PackedA& PackCache::get(std::size_t layer, const float* w, std::size_t m,
                              std::size_t k) {
  if (layer >= entries_.size()) throw std::out_of_range("PackCache::get: layer index");
  Entry& e = *entries_[layer];
  std::call_once(e.once, [&] {
    pack_a(w, m, k, e.pack);
    e.ready = true;
  });
  return e.pack;
}

std::size_t PackCache::built() const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e->ready) ++n;
  }
  return n;
}

#ifndef CNN2FPGA_HAVE_AVX2
namespace {
[[noreturn]] void no_avx2() {
  throw std::runtime_error("cnn2fpga: AVX2 kernel invoked but engine not compiled in");
}
}  // namespace

void gemm(const PackedA&, const float*, std::size_t, const float*, int, float*, std::size_t) {
  no_avx2();
}
void pool_plane(bool, const float*, std::size_t, std::size_t, std::size_t, std::size_t,
                std::size_t, std::size_t, std::size_t, float*, float*) {
  no_avx2();
}
void activation_apply(ActKind, const float*, float*, std::size_t) { no_avx2(); }
void logsoftmax(const float*, float*, std::size_t) { no_avx2(); }
#endif  // !CNN2FPGA_HAVE_AVX2

}  // namespace cnn2fpga::nn::kernels
