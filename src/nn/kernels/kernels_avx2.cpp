// AVX2/FMA compute engine. Compiled with -mavx2 -mfma (see
// src/nn/CMakeLists.txt); every entry point assumes avx2_available() — the
// dispatcher in execution.cpp guarantees it, and kernels.cpp provides
// throwing stubs for builds without CNN2FPGA_HAVE_AVX2.
//
// Numerical contract (see kernels.hpp): each output element is a single FMA
// accumulation chain over k seeded with the bias, independent of which SIMD
// lane or panel the element lands in. That makes the engine chunk-invariant —
// batch-fused and per-image execution produce bit-identical floats — while
// differing from the scalar reference only through FMA contraction and the
// polynomial transcendentals (~1e-7 relative in practice, 1e-4 documented).
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/simd_math.hpp"

namespace cnn2fpga::nn::kernels {

namespace {

inline __m256 apply_act(int act, __m256 x) {
  switch (act) {
    case static_cast<int>(ActKind::kTanh): return tanh256_ps(x);
    case static_cast<int>(ActKind::kSigmoid): return sigmoid256_ps(x);
    case static_cast<int>(ActKind::kReLU): return _mm256_max_ps(x, _mm256_setzero_ps());
    default: return x;
  }
}

/// Store one 16-wide accumulator pair to a C row, honoring the live column
/// count of the final panel.
inline void store_row(float* dst, __m256 lo, __m256 hi, std::size_t live_cols) {
  if (live_cols >= 16) {
    _mm256_storeu_ps(dst, lo);
    _mm256_storeu_ps(dst + 8, hi);
  } else if (live_cols >= 8) {
    _mm256_storeu_ps(dst, lo);
    if (live_cols > 8) _mm256_maskstore_ps(dst + 8, tail_mask(live_cols - 8), hi);
  } else {
    _mm256_maskstore_ps(dst, tail_mask(live_cols), lo);
  }
}

}  // namespace

void gemm(const PackedA& a, const float* bpack, std::size_t n, const float* bias,
          int act, float* c, std::size_t ldc) {
  const std::size_t m = a.rows;
  const std::size_t k = a.cols;
  const std::size_t row_panels = (m + kPanelRows - 1) / kPanelRows;
  const std::size_t col_panels = (n + kPanelCols - 1) / kPanelCols;

  for (std::size_t q = 0; q < col_panels; ++q) {
    const float* bp = bpack + q * k * kPanelCols;
    const std::size_t col0 = q * kPanelCols;
    const std::size_t live_cols = std::min(kPanelCols, n - col0);

    for (std::size_t p = 0; p < row_panels; ++p) {
      const float* ap = a.data.data() + p * k * kPanelRows;
      const std::size_t row0 = p * kPanelRows;
      const std::size_t live_rows = std::min(kPanelRows, m - row0);

      // 6x16 register block: 12 accumulators seeded with the row bias so the
      // epilogue only has to apply the activation.
      __m256 acc_lo[kPanelRows];
      __m256 acc_hi[kPanelRows];
      for (std::size_t r = 0; r < kPanelRows; ++r) {
        const __m256 seed = (bias != nullptr && r < live_rows)
                                ? _mm256_set1_ps(bias[row0 + r])
                                : _mm256_setzero_ps();
        acc_lo[r] = seed;
        acc_hi[r] = seed;
      }

      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 b_lo = _mm256_loadu_ps(bp + kk * kPanelCols);
        const __m256 b_hi = _mm256_loadu_ps(bp + kk * kPanelCols + 8);
        const float* arow = ap + kk * kPanelRows;
        for (std::size_t r = 0; r < kPanelRows; ++r) {
          const __m256 av = _mm256_set1_ps(arow[r]);
          acc_lo[r] = _mm256_fmadd_ps(av, b_lo, acc_lo[r]);
          acc_hi[r] = _mm256_fmadd_ps(av, b_hi, acc_hi[r]);
        }
      }

      for (std::size_t r = 0; r < live_rows; ++r) {
        store_row(c + (row0 + r) * ldc + col0, apply_act(act, acc_lo[r]),
                  apply_act(act, acc_hi[r]), live_cols);
      }
    }
  }
}

void pool_plane(bool is_max, const float* in, std::size_t ih, std::size_t iw,
                std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                std::size_t ow, float* out, float* row_scratch) {
  (void)ih;
  const std::size_t used_w = (ow - 1) * step + kw;  // input columns touched
  const float scale = 1.0f / static_cast<float>(kh * kw);

  for (std::size_t oy = 0; oy < oh; ++oy) {
    // Pass 1: reduce the kh window rows element-wise into row_scratch. Max is
    // order-independent; for mean, summing rows first reorders the seed's
    // window-major accumulation (documented tolerance, avx2 mode only).
    const float* r0 = in + (oy * step) * iw;
    std::size_t x = 0;
    for (; x + 8 <= used_w; x += 8) {
      __m256 v = _mm256_loadu_ps(r0 + x);
      for (std::size_t m = 1; m < kh; ++m) {
        const __m256 rm = _mm256_loadu_ps(r0 + m * iw + x);
        v = is_max ? _mm256_max_ps(v, rm) : _mm256_add_ps(v, rm);
      }
      _mm256_storeu_ps(row_scratch + x, v);
    }
    if (x < used_w) {
      const __m256i mask = tail_mask(used_w - x);
      __m256 v = _mm256_maskload_ps(r0 + x, mask);
      for (std::size_t m = 1; m < kh; ++m) {
        const __m256 rm = _mm256_maskload_ps(r0 + m * iw + x, mask);
        v = is_max ? _mm256_max_ps(v, rm) : _mm256_add_ps(v, rm);
      }
      _mm256_maskstore_ps(row_scratch + x, mask, v);
    }

    // Pass 2: reduce each kw-wide window of the collapsed row.
    float* orow = out + oy * ow;
    for (std::size_t ox = 0; ox < ow; ++ox) {
      const float* w = row_scratch + ox * step;
      float v = w[0];
      if (is_max) {
        for (std::size_t j = 1; j < kw; ++j) v = std::max(v, w[j]);
        orow[ox] = v;
      } else {
        for (std::size_t j = 1; j < kw; ++j) v += w[j];
        orow[ox] = v * scale;
      }
    }
  }
}

void activation_apply(ActKind act, const float* in, float* out, std::size_t n) {
  const int a = static_cast<int>(act);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, apply_act(a, _mm256_loadu_ps(in + i)));
  }
  if (i < n) {
    // Masked tail runs the identical lane-wise instruction sequence, so the
    // result of an element never depends on how the buffer was chunked.
    const __m256i mask = tail_mask(n - i);
    _mm256_maskstore_ps(out + i, mask, apply_act(a, _mm256_maskload_ps(in + i, mask)));
  }
}

void logsoftmax(const float* in, float* out, std::size_t n) {
  // logp[j] = (x[j] - max) - log(sum_k exp(x[k] - max)); the subtraction of
  // lane-constant values preserves the argmax ordering of the input exactly.
  __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(in + i));
  float max_val = [&] {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    float m = lanes[0];
    for (int j = 1; j < 8; ++j) m = std::max(m, lanes[j]);
    return m;
  }();
  for (; i < n; ++i) max_val = std::max(max_val, in[i]);

  const __m256 vm = _mm256_set1_ps(max_val);
  __m256 vsum = _mm256_setzero_ps();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    vsum = _mm256_add_ps(vsum, exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(in + i), vm)));
  }
  float sum = [&] {
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vsum);
    float s = 0.0f;
    for (int j = 0; j < 8; ++j) s += lanes[j];
    return s;
  }();
  for (; i < n; ++i) sum += std::exp(in[i] - max_val);

  const __m256 shift = _mm256_set1_ps(max_val + std::log(sum));
  i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(in + i), shift));
  }
  if (i < n) {
    const __m256i mask = tail_mask(n - i);
    _mm256_maskstore_ps(out + i, mask,
                        _mm256_sub_ps(_mm256_maskload_ps(in + i, mask), shift));
  }
}

}  // namespace cnn2fpga::nn::kernels
