// Runtime-dispatched CPU microkernel engine.
//
// The seed inference path (Conv2D::infer_into's im2col + pixel-tiled GEMM,
// Linear's row dot products) is strictly scalar: without -ffast-math the
// compiler may not reassociate the dot-product reductions, so every MAC sits
// on a serial FP-add dependency chain. This module adds a register-blocked
// AVX2/FMA GEMM microkernel (6 rows x 16 columns of C per inner loop, 12 YMM
// accumulators) over *packed* operand panels, plus vectorized im2col, pooling,
// tanh/sigmoid and log-softmax, behind a runtime dispatch:
//
//   - Kind::kScalar executes the seed layer code unchanged — it remains the
//     bit-exact reference oracle against Network::forward and the generated
//     HLS C++ (the hardware model and fixed-point path always pin it).
//   - Kind::kAvx2 executes the packed SIMD engine. Outputs stay within 1e-4
//     relative error of the scalar reference (FMA contraction + polynomial
//     transcendentals; see tests/test_kernels.cpp), and the engine is
//     *chunk-invariant*: every element goes through an identical per-lane
//     instruction sequence regardless of how the surrounding buffer is
//     traversed, so fused-batch execution is bit-identical to per-image
//     execution in this mode.
//
// The process-wide default is resolved once at startup: CNN2FPGA_KERNEL=
// scalar|avx2 overrides, otherwise cpuid picks AVX2 when available. Every
// ExecutionContext captures a Kind at construction, so subsystems that demand
// seed bit-exactness (axi::CnnIpCore, trainer evaluation) pin kScalar while
// serving contexts run the fast engine concurrently in the same process.
//
// Weight panels (PackedA) are packed once per layer and cached in a PackCache
// shared across an ExecutionContextPool, so pooled serving contexts never
// re-pack. Packing assumes frozen weights — mutate weights, rebuild contexts.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/activation.hpp"
#include "util/aligned.hpp"

namespace cnn2fpga::nn::kernels {

enum class Kind { kScalar, kAvx2 };

/// Process-wide default kernel, resolved once on first call: the
/// CNN2FPGA_KERNEL environment variable (scalar|avx2) wins, otherwise the
/// best engine the CPU supports. Requesting avx2 on a CPU without AVX2+FMA
/// falls back to scalar with a warning on stderr.
Kind active();

/// True when the AVX2 engine is both compiled in and supported by this CPU.
bool avx2_available();

const char* kind_name(Kind kind);

/// Test hook: replaces the process-wide default until destruction. Not
/// thread-safe against concurrent active() callers — construct contexts, not
/// overrides, inside worker threads.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(Kind kind);
  ~ScopedKernelOverride();
  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  Kind previous_;
};

/// Microkernel register-block geometry: C is produced in 6x16 tiles.
inline constexpr std::size_t kPanelRows = 6;
inline constexpr std::size_t kPanelCols = 16;

/// Weight matrix (M x K, row-major) repacked into kPanelRows-row panels,
/// k-major within a panel: data[p*(K*6) + k*6 + r] = W[p*6+r][k], rows past M
/// zero-padded. The microkernel streams one panel while broadcasting down the
/// k axis.
struct PackedA {
  std::size_t rows = 0;  ///< M
  std::size_t cols = 0;  ///< K
  util::aligned_vector<float> data;
};

void pack_a(const float* w, std::size_t m, std::size_t k, PackedA& out);

/// Floats of packed-B storage for an N-column, K-deep operand:
/// ceil(N/16) panels of K*16.
std::size_t packed_b_size(std::size_t n, std::size_t k);

/// Pack row-major B rows (each `rows[i]` pointing at K contiguous floats)
/// into kPanelCols-column panels: bpack[q*(K*16) + k*16 + j] = rows[q*16+j][k].
/// Padding lanes of the last panel are zeroed.
void pack_b(const float* const* rows, std::size_t n, std::size_t k, float* bpack);

/// im2col straight into packed-B panels: the oh*ow patch columns of one image
/// land at global columns [col0, col0 + oh*ow) of an n_total-column packed
/// matrix whose depth is K = c*kh*kw. `c_stride` is the float stride between
/// input channel planes (ih*iw for a contiguous CHW image; batch*ih*iw for a
/// channel-interleaved batch buffer).
void im2col_pack(const float* in, std::size_t c_stride, std::size_t channels,
                 std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                 std::size_t oh, std::size_t ow, float* bpack, std::size_t col0,
                 std::size_t n_total);

/// Zero the padding lanes of the last panel (columns n..ceil(n/16)*16).
void zero_pack_tail(float* bpack, std::size_t n, std::size_t k);

/// Fused GEMM + bias + activation epilogue on the AVX2 engine:
///   C[m][n] = act(bias[m] + sum_k A[m][k] * B[n][k]),  C row stride ldc.
/// `act` < 0 applies no activation; otherwise it is a nn::ActKind. Requires
/// avx2_available(); throws std::runtime_error otherwise.
void gemm(const PackedA& a, const float* bpack, std::size_t n, const float* bias,
          int act, float* c, std::size_t ldc);

/// Vectorized 2-D pooling over one channel plane (AVX2 engine). Reduces the
/// kh window rows element-wise into `row_scratch` (>= iw floats), then the kw
/// window columns per output pixel. Max pooling is value-exact with the seed
/// loop; mean pooling reorders the window sum (rows first) within float
/// tolerance. Requires avx2_available().
void pool_plane(bool is_max, const float* in, std::size_t ih, std::size_t iw,
                std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                std::size_t ow, float* out, float* row_scratch);

/// Vectorized elementwise activation (AVX2 engine): polynomial exp-based
/// tanh/sigmoid, branch-free ReLU. Chunk-invariant (identical per-lane ops on
/// masked tails), in == out allowed. Requires avx2_available().
void activation_apply(ActKind act, const float* in, float* out, std::size_t n);

/// Vectorized log-softmax over one row (AVX2 engine); in == out allowed.
/// Requires avx2_available().
void logsoftmax(const float* in, float* out, std::size_t n);

/// Per-network cache of packed weight panels, keyed by layer index. Built
/// lazily on first use and shared (via shared_ptr) across every context an
/// ExecutionContextPool hands out, so a deployed design packs each layer
/// exactly once no matter how many serving threads run it. Assumes the
/// layer's weights are frozen after the first get().
class PackCache {
 public:
  explicit PackCache(std::size_t layer_count);

  const PackedA& get(std::size_t layer, const float* w, std::size_t m, std::size_t k);

  /// Number of layers with a built pack (diagnostics).
  std::size_t built() const;

 private:
  struct Entry {
    std::once_flag once;
    PackedA pack;
    bool ready = false;
  };
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace cnn2fpga::nn::kernels
