// Quantized fused-batch executor.
//
// Mirrors execution_batch.cpp's structure — one packed GEMM per conv/linear
// step over the whole micro-batch, interleaved/image-major ping-pong domains —
// but every activation between layers is a raw fixed-point value (int8 at
// Q4.4, int16 at Q8.8; see kernels_int.hpp) and the GEMM epilogue is the
// fixed-point renormalize + saturate of nn::FixedInference. Inputs are
// quantized once up front (there is no kInputs domain: the float tensors are
// converted into an image-major raw buffer before the first step) and the
// final scores are dequantized into the caller's float rows, through the same
// LogSoftMax math forward_fixed runs, so the quantized serving path scores
// agree with the fixed-point accuracy model bit-for-bit (int8 modulo the
// documented weight clamp).
//
// Both engines (kScalar and kAvx2) run through this function; only the GEMM
// inner loop differs, and those are bit-identical by construction, so the
// quantized path needs no per-engine tolerance.
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/execution.hpp"

namespace cnn2fpga::nn {

namespace {

namespace ker = kernels;

enum class Domain { kInterleaved, kImageMajor };

/// Width-dependent pieces of the runner: Raw is the inter-layer activation
/// type, Pack the packed-B element type (u8 for int8 — maddubs wants the
/// unsigned-offset operand — raw s16 for int16).
template <typename Raw>
struct QuantTraits;

template <>
struct QuantTraits<std::int8_t> {
  using Raw = std::int8_t;
  using Pack = std::uint8_t;
  using Packed = ker::PackedWeightsS8;
  static void quantize(const float* in, std::size_t n, const FixedPointFormat& fmt,
                       Raw* out) {
    ker::quantize_input_s8(in, n, fmt, out);
  }
  static void im2col(const Raw* in, std::size_t cstride, std::size_t channels,
                     std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                     std::size_t oh, std::size_t ow, Pack* bpack, std::size_t col0,
                     std::size_t n_total) {
    ker::im2col_pack_s8(in, cstride, channels, ih, iw, kh, kw, oh, ow, bpack, col0,
                        n_total);
  }
  static void pack_b(const void* const* rows, std::size_t n, std::size_t k, Pack* bpack) {
    ker::pack_b_s8(rows, n, k, bpack);
  }
  static void finish(Pack* bpack, std::size_t n, std::size_t k) {
    ker::finish_pack_s8(bpack, n, k);
  }
  static const Packed& packed(ker::QuantPackCache& cache, std::size_t layer,
                              const float* w, const float* bias, std::size_t m,
                              std::size_t k) {
    return cache.get8(layer, w, bias, m, k);
  }
  static void gemm(ker::Kind kind, const Packed& a, const Pack* bpack, std::size_t n,
                   const FixedPointFormat& fmt, int act, Raw* c, std::size_t ldc) {
    ker::gemm_s8(kind, a, bpack, n, fmt, act, c, ldc);
  }
  static void pool(bool is_max, const Raw* in, std::size_t ih, std::size_t iw,
                   std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                   std::size_t ow, Raw* out, const FixedPointFormat& fmt) {
    ker::pool_plane_s8(is_max, in, ih, iw, kh, kw, step, oh, ow, out, fmt);
  }
  static const Raw* lut(ker::QuantPackCache& cache, ActKind act) {
    return cache.lut8(act);
  }
  static void activation(ActKind act, const Raw* lut, const Raw* in, Raw* out,
                         std::size_t n) {
    ker::activation_lut_s8(act, lut, in, out, n);
  }
};

template <>
struct QuantTraits<std::int16_t> {
  using Raw = std::int16_t;
  using Pack = std::int16_t;
  using Packed = ker::PackedWeightsS16;
  static void quantize(const float* in, std::size_t n, const FixedPointFormat& fmt,
                       Raw* out) {
    ker::quantize_input_s16(in, n, fmt, out);
  }
  static void im2col(const Raw* in, std::size_t cstride, std::size_t channels,
                     std::size_t ih, std::size_t iw, std::size_t kh, std::size_t kw,
                     std::size_t oh, std::size_t ow, Pack* bpack, std::size_t col0,
                     std::size_t n_total) {
    ker::im2col_pack_s16(in, cstride, channels, ih, iw, kh, kw, oh, ow, bpack, col0,
                         n_total);
  }
  static void pack_b(const void* const* rows, std::size_t n, std::size_t k, Pack* bpack) {
    ker::pack_b_s16(rows, n, k, bpack);
  }
  static void finish(Pack* bpack, std::size_t n, std::size_t k) {
    ker::finish_pack_s16(bpack, n, k);
  }
  static const Packed& packed(ker::QuantPackCache& cache, std::size_t layer,
                              const float* w, const float* bias, std::size_t m,
                              std::size_t k) {
    return cache.get16(layer, w, bias, m, k);
  }
  static void gemm(ker::Kind kind, const Packed& a, const Pack* bpack, std::size_t n,
                   const FixedPointFormat& fmt, int act, Raw* c, std::size_t ldc) {
    ker::gemm_s16(kind, a, bpack, n, fmt, act, c, ldc);
  }
  static void pool(bool is_max, const Raw* in, std::size_t ih, std::size_t iw,
                   std::size_t kh, std::size_t kw, std::size_t step, std::size_t oh,
                   std::size_t ow, Raw* out, const FixedPointFormat& fmt) {
    ker::pool_plane_s16(is_max, in, ih, iw, kh, kw, step, oh, ow, out, fmt);
  }
  static const Raw* lut(ker::QuantPackCache& cache, ActKind act) {
    return cache.lut16(act);
  }
  static void activation(ActKind act, const Raw* lut, const Raw* in, Raw* out,
                         std::size_t n) {
    ker::activation_lut_s16(act, lut, in, out, n);
  }
};

/// Exact replica of LogSoftMax::infer_into's arithmetic on a flat row — the
/// quantized tail must match forward_fixed (which calls infer_into on the
/// dequantized logits) bit-for-bit.
void logsoftmax_row(float* row, std::size_t n) {
  float max_val = row[0];
  for (std::size_t i = 1; i < n; ++i) max_val = std::max(max_val, row[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) sum += std::exp(row[i] - max_val);
  const float log_sum = std::log(sum);
  for (std::size_t i = 0; i < n; ++i) row[i] = (row[i] - max_val) - log_sum;
}

template <typename Raw>
void run_quant(const Network& net, const std::vector<ExecutionContext::Step>& steps,
               const Tensor* const* inputs, std::size_t count, ker::Kind kind,
               ker::QuantPackCache& packs, const FixedPointFormat& fmt,
               typename QuantTraits<Raw>::Pack* bpack, Raw* ping, Raw* pong,
               Raw* gemm_tmp, const void** row_ptrs, float* const* out_rows) {
  using QT = QuantTraits<Raw>;
  using Step = ExecutionContext::Step;

  // Quantize the batch image-major into ping (forward_fixed's input step).
  const std::size_t in_elems = net.input_shape().elements();
  for (std::size_t b = 0; b < count; ++b) {
    QT::quantize(inputs[b]->data(), in_elems, fmt, ping + b * in_elems);
  }
  Raw* cur = ping;
  Domain domain = Domain::kImageMajor;

  const auto free_buf = [&]() { return cur == ping ? pong : ping; };

  const auto image_plane = [&](const Shape& in_shape,
                               std::size_t b) -> std::pair<const Raw*, std::size_t> {
    const std::size_t pixels = in_shape.height() * in_shape.width();
    if (domain == Domain::kInterleaved) return {cur + b * pixels, count * pixels};
    return {cur + b * in_shape.elements(), pixels};
  };

  const auto to_image_major = [&](const Shape& shape) {
    if (domain == Domain::kImageMajor) return;
    const std::size_t elems = shape.elements();
    const std::size_t channels = shape.channels();
    const std::size_t pixels = shape.height() * shape.width();
    Raw* dst = free_buf();
    for (std::size_t c = 0; c < channels; ++c) {
      const Raw* src_row = cur + c * count * pixels;
      for (std::size_t b = 0; b < count; ++b) {
        std::memcpy(dst + b * elems + c * pixels, src_row + b * pixels,
                    pixels * sizeof(Raw));
      }
    }
    cur = dst;
    domain = Domain::kImageMajor;
  };

  for (std::size_t s = 0; s < steps.size(); ++s) {
    const Step& step = steps[s];
    switch (step.kind) {
      case Step::Kind::kConv: {
        const auto* conv = static_cast<const Conv2D*>(step.layer);
        const std::size_t ih = step.in_shape.height(), iw = step.in_shape.width();
        const std::size_t oh = step.out_shape.height(), ow = step.out_shape.width();
        const std::size_t pixels = oh * ow;
        const std::size_t patch =
            conv->in_channels() * conv->kernel_h() * conv->kernel_w();
        for (std::size_t b = 0; b < count; ++b) {
          const auto [base, cstride] = image_plane(step.in_shape, b);
          QT::im2col(base, cstride, conv->in_channels(), ih, iw, conv->kernel_h(),
                     conv->kernel_w(), oh, ow, bpack, b * pixels, count * pixels);
        }
        QT::finish(bpack, count * pixels, patch);
        const auto& wp = QT::packed(packs, step.layer_index, conv->weights().data(),
                                    conv->bias().data(), conv->out_channels(), patch);
        Raw* dst = free_buf();
        const int act = step.fused != nullptr ? static_cast<int>(step.fused->act()) : -1;
        const bool relu = act == static_cast<int>(ActKind::kReLU);
        QT::gemm(kind, wp, bpack, count * pixels, fmt, relu ? act : -1, dst,
                 count * pixels);
        if (act >= 0 && !relu) {
          const ActKind a = static_cast<ActKind>(act);
          QT::activation(a, QT::lut(packs, a), dst, dst,
                         conv->out_channels() * count * pixels);
        }
        cur = dst;
        domain = Domain::kInterleaved;
        break;
      }
      case Step::Kind::kPool: {
        const auto* pool = static_cast<const Pool2D*>(step.layer);
        const std::size_t ih = step.in_shape.height(), iw = step.in_shape.width();
        const std::size_t oh = step.out_shape.height(), ow = step.out_shape.width();
        const std::size_t opix = oh * ow;
        const std::size_t channels = step.in_shape.channels();
        const bool is_max = pool->pool_kind() == PoolKind::kMax;
        Raw* dst = free_buf();
        for (std::size_t b = 0; b < count; ++b) {
          const auto [base, cstride] = image_plane(step.in_shape, b);
          for (std::size_t c = 0; c < channels; ++c) {
            QT::pool(is_max, base + c * cstride, ih, iw, pool->kernel_h(),
                     pool->kernel_w(), pool->step(), oh, ow,
                     dst + c * count * opix + b * opix, fmt);
          }
        }
        cur = dst;
        domain = Domain::kInterleaved;
        break;
      }
      case Step::Kind::kLinear: {
        const auto* lin = static_cast<const Linear*>(step.layer);
        const std::size_t k = lin->in_features();
        const std::size_t m = lin->out_features();
        to_image_major(step.in_shape);
        for (std::size_t b = 0; b < count; ++b) row_ptrs[b] = cur + b * k;
        QT::pack_b(row_ptrs, count, k, bpack);
        const auto& wp = QT::packed(packs, step.layer_index, lin->weights().data(),
                                    lin->bias().data(), m, k);
        const int act = step.fused != nullptr ? static_cast<int>(step.fused->act()) : -1;
        const bool relu = act == static_cast<int>(ActKind::kReLU);
        // GEMM produces C[m][b] (ldc = count); transpose to image-major. The
        // input rows were already copied into the packed panels, so writing
        // over `cur` is safe.
        QT::gemm(kind, wp, bpack, count, fmt, relu ? act : -1, gemm_tmp, count);
        Raw* dst = cur;
        for (std::size_t b = 0; b < count; ++b) {
          Raw* row = dst + b * m;
          for (std::size_t j = 0; j < m; ++j) row[j] = gemm_tmp[j * count + b];
        }
        if (act >= 0 && !relu) {
          const ActKind a = static_cast<ActKind>(act);
          QT::activation(a, QT::lut(packs, a), dst, dst, count * m);
        }
        cur = dst;
        domain = Domain::kImageMajor;
        break;
      }
      case Step::Kind::kActivation: {
        // Elementwise on raw values: both domains store the batch's
        // activations contiguously at cur, so one pass covers everything and
        // the domain is preserved.
        const auto* activation = static_cast<const Activation*>(step.layer);
        const ActKind a = activation->act();
        const Raw* lut = a == ActKind::kReLU ? nullptr : QT::lut(packs, a);
        QT::activation(a, lut, cur, cur, count * step.in_shape.elements());
        break;
      }
      case Step::Kind::kLogSoftMax: {
        // Terminal, exactly as in forward_fixed: dequantize the logits and
        // run the float LogSoftMax on them.
        if (s + 1 != steps.size()) {
          throw std::logic_error("run_quant_batch: LogSoftMax must be the final step");
        }
        const std::size_t elems = step.in_shape.elements();
        to_image_major(step.in_shape);
        for (std::size_t b = 0; b < count; ++b) {
          const Raw* src = cur + b * elems;
          float* row = out_rows[b];
          for (std::size_t i = 0; i < elems; ++i) row[i] = fixed_dequantize(src[i], fmt);
          logsoftmax_row(row, elems);
        }
        return;
      }
      case Step::Kind::kGeneric:
        // Callers pre-check with plan_needs_generic().
        throw std::logic_error("run_quant_batch: plan contains a generic step");
    }
  }

  // No LogSoftMax tail: dequantized raw scores, matching forward_fixed.
  const std::size_t out_elems = net.output_shape().elements();
  to_image_major(net.output_shape());
  for (std::size_t b = 0; b < count; ++b) {
    const Raw* src = cur + b * out_elems;
    float* row = out_rows[b];
    for (std::size_t i = 0; i < out_elems; ++i) row[i] = fixed_dequantize(src[i], fmt);
  }
}

}  // namespace

void Network::run_quant_batch(const Tensor* const* inputs, std::size_t count,
                              ExecutionContext& ctx, float* const* out_rows) const {
  if (ctx.precision_ == ServePrecision::kFloat32 || ctx.qpacks_ == nullptr) {
    throw std::logic_error("run_quant_batch: context is not quantized");
  }
  const std::vector<ExecutionContext::Step>& steps = ctx.steps_;
  if (steps.empty()) {
    const std::size_t elems = input_shape().elements();
    for (std::size_t b = 0; b < count; ++b) {
      std::memcpy(out_rows[b], inputs[b]->data(), elems * sizeof(float));
    }
    return;
  }
  ctx.ensure_batch(count);
  if (ctx.precision_ == ServePrecision::kInt8) {
    run_quant<std::int8_t>(*this, steps, inputs, count, ctx.kernel_, *ctx.qpacks_,
                           ctx.qformat_, ctx.qbpack_.data(),
                           reinterpret_cast<std::int8_t*>(ctx.qping_.data()),
                           reinterpret_cast<std::int8_t*>(ctx.qpong_.data()),
                           reinterpret_cast<std::int8_t*>(ctx.qgemm_tmp_.data()),
                           ctx.qrow_ptrs_.data(), out_rows);
  } else {
    run_quant<std::int16_t>(*this, steps, inputs, count, ctx.kernel_, *ctx.qpacks_,
                            ctx.qformat_,
                            reinterpret_cast<std::int16_t*>(ctx.qbpack_.data()),
                            reinterpret_cast<std::int16_t*>(ctx.qping_.data()),
                            reinterpret_cast<std::int16_t*>(ctx.qpong_.data()),
                            reinterpret_cast<std::int16_t*>(ctx.qgemm_tmp_.data()),
                            ctx.qrow_ptrs_.data(), out_rows);
  }
}

}  // namespace cnn2fpga::nn
