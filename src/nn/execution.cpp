#include "nn/execution.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

ExecutionContext::ExecutionContext(const Network& net)
    : ExecutionContext(net, kernels::active(), nullptr) {}

ExecutionContext::ExecutionContext(const Network& net, kernels::Kind kind,
                                   std::shared_ptr<kernels::PackCache> packs)
    : ExecutionContext(net, kind, std::move(packs), ServePrecision::kFloat32, nullptr) {}

ExecutionContext::ExecutionContext(const Network& net, kernels::Kind kind,
                                   std::shared_ptr<kernels::PackCache> packs,
                                   ServePrecision precision,
                                   std::shared_ptr<kernels::QuantPackCache> qpacks)
    : net_(&net),
      kernel_(kind),
      packs_(std::move(packs)),
      precision_(precision),
      qpacks_(std::move(qpacks)) {
  if (kernel_ == kernels::Kind::kAvx2 && !kernels::avx2_available()) {
    throw std::runtime_error("ExecutionContext: AVX2 engine requested but unavailable");
  }
  if (precision_ != ServePrecision::kFloat32) {
    qformat_ = serve_precision_format(precision_);
    if (qpacks_ == nullptr) {
      qpacks_ = std::make_shared<kernels::QuantPackCache>(net.layer_count(), precision_);
    } else if (qpacks_->precision() != precision_) {
      throw std::invalid_argument(
          "ExecutionContext: shared QuantPackCache precision mismatch");
    }
  }
  std::size_t max_col = 0;
  std::size_t max_pool_row = 0;
  const std::size_t count = net.layer_count();
  std::size_t l = 0;
  while (l < count) {
    Step step;
    step.layer = &net.layer(l);
    step.layer_index = l;
    step.in_shape = l == 0 ? net.input_shape() : net.shape_after(l - 1);
    step.out_shape = net.shape_after(l);
    if (const auto* conv = dynamic_cast<const Conv2D*>(step.layer)) {
      step.kind = Step::Kind::kConv;
      max_col = std::max(max_col, conv->col_scratch_size(step.in_shape));
    } else if (dynamic_cast<const Linear*>(step.layer) != nullptr) {
      step.kind = Step::Kind::kLinear;
    } else if (dynamic_cast<const Pool2D*>(step.layer) != nullptr) {
      step.kind = Step::Kind::kPool;
      max_pool_row = std::max(max_pool_row, step.in_shape.width());
    } else if (dynamic_cast<const Activation*>(step.layer) != nullptr) {
      step.kind = Step::Kind::kActivation;
    } else if (dynamic_cast<const LogSoftMax*>(step.layer) != nullptr) {
      step.kind = Step::Kind::kLogSoftMax;
    }
    ++l;
    // Fuse a directly following Activation into its producer: the activation
    // is applied elementwise to each finished accumulator, so fusion skips an
    // arena round trip without touching the arithmetic.
    if ((step.kind == Step::Kind::kConv || step.kind == Step::Kind::kLinear) && l < count) {
      if (const auto* act = dynamic_cast<const Activation*>(&net.layer(l))) {
        step.fused = act;
        step.out_shape = net.shape_after(l);
        ++l;
      }
    }
    steps_.push_back(step);
  }
  if (steps_.empty()) {
    arenas_.emplace_back(net.input_shape());
  } else {
    arenas_.reserve(steps_.size());
    for (const Step& step : steps_) arenas_.emplace_back(step.out_shape);
  }
  col_.resize(max_col);

  max_image_elems_ = net.input_shape().elements();
  for (const Step& step : steps_) {
    max_image_elems_ = std::max(max_image_elems_, step.out_shape.elements());
  }
  if (kernel_ == kernels::Kind::kAvx2 && precision_ == ServePrecision::kFloat32) {
    if (packs_ == nullptr) packs_ = std::make_shared<kernels::PackCache>(count);
    pool_row_.resize(max_pool_row);
  }
}

void ExecutionContext::ensure_batch(std::size_t batch) {
  if (batch <= batch_capacity_) return;
  if (precision_ != ServePrecision::kFloat32) {
    // Quantized buffers are sized in bytes: int8 activations are 1 byte,
    // int16 are 2, and both engines (scalar reference included) consume the
    // same packed panels.
    const bool is8 = precision_ == ServePrecision::kInt8;
    const std::size_t elem = is8 ? 1 : 2;
    std::size_t need_bpack = 0;
    std::size_t need_tmp = 0;
    for (const Step& step : steps_) {
      if (step.kind == Step::Kind::kConv) {
        const auto* conv = static_cast<const Conv2D*>(step.layer);
        const std::size_t patch =
            conv->in_channels() * conv->kernel_h() * conv->kernel_w();
        const std::size_t pixels = step.out_shape.height() * step.out_shape.width();
        need_bpack = std::max(need_bpack,
                              is8 ? kernels::packed_b_size_s8(batch * pixels, patch)
                                  : kernels::packed_b_size_s16(batch * pixels, patch));
      } else if (step.kind == Step::Kind::kLinear) {
        const auto* lin = static_cast<const Linear*>(step.layer);
        need_bpack = std::max(need_bpack,
                              is8 ? kernels::packed_b_size_s8(batch, lin->in_features())
                                  : kernels::packed_b_size_s16(batch, lin->in_features()));
        need_tmp = std::max(need_tmp, lin->out_features() * batch);
      }
    }
    qbpack_.resize(need_bpack * elem);
    qgemm_tmp_.resize(need_tmp * elem);
    qping_.resize(batch * max_image_elems_ * elem);
    qpong_.resize(batch * max_image_elems_ * elem);
    qrow_ptrs_.resize(batch);
    batch_capacity_ = batch;
    return;
  }
  if (kernel_ != kernels::Kind::kAvx2) return;
  std::size_t need_bpack = 0;
  std::size_t need_tmp = 0;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kConv) {
      const auto* conv = static_cast<const Conv2D*>(step.layer);
      const std::size_t patch = conv->in_channels() * conv->kernel_h() * conv->kernel_w();
      const std::size_t pixels = step.out_shape.height() * step.out_shape.width();
      need_bpack = std::max(need_bpack, kernels::packed_b_size(batch * pixels, patch));
    } else if (step.kind == Step::Kind::kLinear) {
      const auto* lin = static_cast<const Linear*>(step.layer);
      need_bpack = std::max(need_bpack, kernels::packed_b_size(batch, lin->in_features()));
      need_tmp = std::max(need_tmp, lin->out_features() * batch);
    }
  }
  bpack_.resize(need_bpack);
  gemm_tmp_.resize(need_tmp);
  batch_ping_.resize(batch * max_image_elems_);
  batch_pong_.resize(batch * max_image_elems_);
  row_ptrs_.resize(batch);
  batch_capacity_ = batch;
}

void ExecutionContext::warm_packs() {
  if (precision_ != ServePrecision::kFloat32) {
    const bool is8 = precision_ == ServePrecision::kInt8;
    for (const Step& step : steps_) {
      const float *w = nullptr, *b = nullptr;
      std::size_t m = 0, k = 0;
      if (step.kind == Step::Kind::kConv) {
        const auto* conv = static_cast<const Conv2D*>(step.layer);
        w = conv->weights().data();
        b = conv->bias().data();
        m = conv->out_channels();
        k = conv->in_channels() * conv->kernel_h() * conv->kernel_w();
      } else if (step.kind == Step::Kind::kLinear) {
        const auto* lin = static_cast<const Linear*>(step.layer);
        w = lin->weights().data();
        b = lin->bias().data();
        m = lin->out_features();
        k = lin->in_features();
      }
      if (w != nullptr) {
        if (is8) {
          (void)qpacks_->get8(step.layer_index, w, b, m, k);
        } else {
          (void)qpacks_->get16(step.layer_index, w, b, m, k);
        }
      }
      // Non-ReLU activations (fused or standalone) need their lookup table.
      const Activation* act = step.fused;
      if (step.kind == Step::Kind::kActivation) {
        act = static_cast<const Activation*>(step.layer);
      }
      if (act != nullptr && act->act() != ActKind::kReLU) {
        if (is8) {
          (void)qpacks_->lut8(act->act());
        } else {
          (void)qpacks_->lut16(act->act());
        }
      }
    }
    return;
  }
  if (kernel_ != kernels::Kind::kAvx2 || packs_ == nullptr) return;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kConv) {
      const auto* conv = static_cast<const Conv2D*>(step.layer);
      packs_->get(step.layer_index, conv->weights().data(), conv->out_channels(),
                  conv->in_channels() * conv->kernel_h() * conv->kernel_w());
    } else if (step.kind == Step::Kind::kLinear) {
      const auto* lin = static_cast<const Linear*>(step.layer);
      packs_->get(step.layer_index, lin->weights().data(), lin->out_features(),
                  lin->in_features());
    }
  }
}

const Tensor& Network::infer(const Tensor& input, ExecutionContext& ctx) const {
  if (&ctx.network() != this) {
    throw std::invalid_argument("Network::infer: context was built for a different network");
  }
  if (input.shape() != input_shape_) {
    throw std::invalid_argument(format("Network::infer: expected input %s, got %s",
                                       input_shape_.to_string().c_str(),
                                       input.shape().to_string().c_str()));
  }
  const std::vector<ExecutionContext::Step>& steps = ctx.steps();
  if (steps.empty()) {
    ctx.arena(0) = input;
    return ctx.arena(0);
  }

  if (ctx.precision() != ServePrecision::kFloat32) {
    if (plan_needs_generic(ctx)) {
      throw std::invalid_argument(
          "Network::infer: quantized serving requires a conv/pool/linear/activation/"
          "logsoftmax plan");
    }
    const Tensor* in_ptr = &input;
    Tensor& out = ctx.arena(steps.size() - 1);
    float* out_row = out.data();
    run_quant_batch(&in_ptr, 1, ctx, &out_row);
    return out;
  }

  if (ctx.kernel() == kernels::Kind::kAvx2 && !plan_needs_generic(ctx)) {
    // Single image through the fused engine (a batch of one): identical
    // arithmetic to infer_batch by construction, so serving's batched path
    // and the latency path agree bit-for-bit.
    const Tensor* in_ptr = &input;
    Tensor& out = ctx.arena(steps.size() - 1);
    float* out_row = out.data();
    run_fused_batch(&in_ptr, 1, ctx, &out_row);
    return out;
  }

  const Tensor* current = &input;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const ExecutionContext::Step& step = steps[s];
    Tensor& out = ctx.arena(s);
    switch (step.kind) {
      case ExecutionContext::Step::Kind::kConv:
        static_cast<const Conv2D*>(step.layer)->infer_into(*current, out, ctx.col_scratch(),
                                                           step.fused);
        break;
      case ExecutionContext::Step::Kind::kLinear:
        static_cast<const Linear*>(step.layer)->infer_into(*current, out, step.fused);
        break;
      default:
        step.layer->infer_into(*current, out);
        break;
    }
    current = &out;
  }
  return *current;
}

bool Network::plan_needs_generic(const ExecutionContext& ctx) {
  for (const ExecutionContext::Step& step : ctx.steps()) {
    if (step.kind == ExecutionContext::Step::Kind::kGeneric) return true;
  }
  return false;
}

void Network::infer_batch(std::span<const Tensor* const> inputs, std::span<Tensor> outputs,
                          ExecutionContext& ctx) const {
  if (inputs.size() != outputs.size()) {
    throw std::invalid_argument("Network::infer_batch: inputs/outputs size mismatch");
  }
  if (inputs.empty()) return;
  if (&ctx.network() != this) {
    throw std::invalid_argument("Network::infer_batch: context was built for a different network");
  }
  for (const Tensor* input : inputs) {
    if (input == nullptr || input->shape() != input_shape_) {
      throw std::invalid_argument("Network::infer_batch: bad input shape");
    }
  }
  if (ctx.precision() != ServePrecision::kFloat32 && !ctx.steps().empty()) {
    if (plan_needs_generic(ctx)) {
      throw std::invalid_argument(
          "Network::infer_batch: quantized serving requires a conv/pool/linear/"
          "activation/logsoftmax plan");
    }
    const Shape& out_shape = output_shape();
    std::vector<float*> out_rows(inputs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].shape() != out_shape) outputs[i] = Tensor(out_shape);
      out_rows[i] = outputs[i].data();
    }
    run_quant_batch(inputs.data(), inputs.size(), ctx, out_rows.data());
    return;
  }
  if (ctx.kernel() == kernels::Kind::kAvx2 && !plan_needs_generic(ctx) &&
      !ctx.steps().empty()) {
    const Shape& out_shape = output_shape();
    std::vector<float*> out_rows(inputs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      if (outputs[i].shape() != out_shape) outputs[i] = Tensor(out_shape);
      out_rows[i] = outputs[i].data();
    }
    run_fused_batch(inputs.data(), inputs.size(), ctx, out_rows.data());
    return;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) outputs[i] = infer(*inputs[i], ctx);
}

std::vector<Tensor> Network::infer_batch(const std::vector<Tensor>& inputs,
                                         ExecutionContext& ctx) const {
  std::vector<Tensor> outputs(inputs.size());
  std::vector<const Tensor*> ptrs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) ptrs[i] = &inputs[i];
  infer_batch(std::span<const Tensor* const>(ptrs), std::span<Tensor>(outputs), ctx);
  return outputs;
}

std::size_t Network::predict(const Tensor& input) const {
  ExecutionContext ctx(*this);
  return infer(input, ctx).argmax();
}

}  // namespace cnn2fpga::nn
