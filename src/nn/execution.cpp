#include "nn/execution.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

ExecutionContext::ExecutionContext(const Network& net) : net_(&net) {
  std::size_t max_col = 0;
  const std::size_t count = net.layer_count();
  std::size_t l = 0;
  while (l < count) {
    Step step;
    step.layer = &net.layer(l);
    step.layer_index = l;
    step.out_shape = net.shape_after(l);
    if (const auto* conv = dynamic_cast<const Conv2D*>(step.layer)) {
      step.kind = Step::Kind::kConv;
      const Shape& in = l == 0 ? net.input_shape() : net.shape_after(l - 1);
      max_col = std::max(max_col, conv->col_scratch_size(in));
    } else if (dynamic_cast<const Linear*>(step.layer) != nullptr) {
      step.kind = Step::Kind::kLinear;
    }
    ++l;
    // Fuse a directly following Activation into its producer: the activation
    // is applied elementwise to each finished accumulator, so fusing skips an
    // arena round trip without touching the arithmetic.
    if (step.kind != Step::Kind::kGeneric && l < count) {
      if (const auto* act = dynamic_cast<const Activation*>(&net.layer(l))) {
        step.fused = act;
        step.out_shape = net.shape_after(l);
        ++l;
      }
    }
    steps_.push_back(step);
  }
  if (steps_.empty()) {
    arenas_.emplace_back(net.input_shape());
  } else {
    arenas_.reserve(steps_.size());
    for (const Step& step : steps_) arenas_.emplace_back(step.out_shape);
  }
  col_.resize(max_col);
}

const Tensor& Network::infer(const Tensor& input, ExecutionContext& ctx) const {
  if (&ctx.network() != this) {
    throw std::invalid_argument("Network::infer: context was built for a different network");
  }
  if (input.shape() != input_shape_) {
    throw std::invalid_argument(format("Network::infer: expected input %s, got %s",
                                       input_shape_.to_string().c_str(),
                                       input.shape().to_string().c_str()));
  }
  const std::vector<ExecutionContext::Step>& steps = ctx.steps();
  if (steps.empty()) {
    ctx.arena(0) = input;
    return ctx.arena(0);
  }
  const Tensor* current = &input;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const ExecutionContext::Step& step = steps[s];
    Tensor& out = ctx.arena(s);
    switch (step.kind) {
      case ExecutionContext::Step::Kind::kConv:
        static_cast<const Conv2D*>(step.layer)->infer_into(*current, out, ctx.col_scratch(),
                                                           step.fused);
        break;
      case ExecutionContext::Step::Kind::kLinear:
        static_cast<const Linear*>(step.layer)->infer_into(*current, out, step.fused);
        break;
      case ExecutionContext::Step::Kind::kGeneric:
        step.layer->infer_into(*current, out);
        break;
    }
    current = &out;
  }
  return *current;
}

std::vector<Tensor> Network::infer_batch(const std::vector<Tensor>& inputs,
                                         ExecutionContext& ctx) const {
  std::vector<Tensor> outputs;
  outputs.reserve(inputs.size());
  for (const Tensor& input : inputs) outputs.push_back(infer(input, ctx));
  return outputs;
}

std::size_t Network::predict(const Tensor& input) const {
  ExecutionContext ctx(*this);
  return infer(input, ctx).argmax();
}

}  // namespace cnn2fpga::nn
