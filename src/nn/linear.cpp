#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activation.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      weights_grad_(Shape{out_features, in_features}),
      bias_grad_(Shape{out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
}

void Linear::init_weights(util::Rng& rng) {
  const float s = 1.0f / std::sqrt(static_cast<float>(in_features_));
  weights_.fill_uniform(rng, -s, s);
  bias_.fill_uniform(rng, -s, s);
}

std::string Linear::describe() const {
  return format("linear %zu -> %zu neurons", in_features_, out_features_);
}

Shape Linear::output_shape(const Shape& input) const {
  if (input.elements() != in_features_) {
    throw std::invalid_argument(format("Linear: expected %zu inputs, got %s (%zu elements)",
                                       in_features_, input.to_string().c_str(),
                                       input.elements()));
  }
  return Shape{out_features_};
}

Tensor Linear::forward(const Tensor& input, bool train) {
  (void)output_shape(input.shape());  // validates
  Tensor out(Shape{out_features_});
  for (std::size_t j = 0; j < out_features_; ++j) {
    float acc = bias_[j];
    const float* wj = weights_.data() + j * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) acc += wj[i] * input[i];
    out[j] = acc;
  }
  if (train) cached_input_ = input;
  return out;
}

void Linear::infer_into(const Tensor& input, Tensor& out) const {
  infer_into(input, out, nullptr);
}

void Linear::infer_into(const Tensor& input, Tensor& out, const Activation* fused) const {
  (void)output_shape(input.shape());  // validates
  if (out.shape().elements() != out_features_) {
    throw std::invalid_argument("Linear::infer_into: output arena size mismatch");
  }
  for (std::size_t j = 0; j < out_features_; ++j) {
    float acc = bias_[j];
    const float* wj = weights_.data() + j * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) acc += wj[i] * input[i];
    out[j] = fused == nullptr ? acc : Activation::apply(fused->act(), acc);
  }
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Linear::backward before forward(train=true)");
  if (grad_output.shape().elements() != out_features_) {
    throw std::invalid_argument("Linear::backward: gradient size mismatch");
  }
  Tensor grad_input(cached_input_.shape());
  for (std::size_t j = 0; j < out_features_; ++j) {
    const float g = grad_output[j];
    bias_grad_[j] += g;
    float* wgj = weights_grad_.data() + j * in_features_;
    const float* wj = weights_.data() + j * in_features_;
    for (std::size_t i = 0; i < in_features_; ++i) {
      wgj[i] += g * cached_input_[i];
      grad_input[i] += g * wj[i];
    }
  }
  return grad_input;
}

std::vector<Param> Linear::params() {
  return {{&weights_, &weights_grad_, "weights"}, {&bias_, &bias_grad_, "bias"}};
}

std::size_t Linear::mac_count(const Shape& input) const {
  (void)input;
  return in_features_ * out_features_;
}

}  // namespace cnn2fpga::nn
