#include "nn/logsoftmax.hpp"

#include <cmath>
#include <stdexcept>

namespace cnn2fpga::nn {

Tensor LogSoftMax::forward(const Tensor& input, bool train) {
  if (input.empty()) throw std::invalid_argument("LogSoftMax: empty input");
  Tensor out(input.shape());

  // logp[j] = (x[j] - max) - log(sum_k exp(x[k] - max))
  float max_val = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) max_val = std::max(max_val, input[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < input.size(); ++i) sum += std::exp(input[i] - max_val);
  const float log_sum = std::log(sum);
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = (input[i] - max_val) - log_sum;

  if (train) cached_output_ = out;
  return out;
}

void LogSoftMax::infer_into(const Tensor& input, Tensor& out) const {
  if (input.empty()) throw std::invalid_argument("LogSoftMax: empty input");
  if (out.shape() != input.shape()) {
    throw std::invalid_argument("LogSoftMax::infer_into: output arena shape mismatch");
  }
  float max_val = input[0];
  for (std::size_t i = 1; i < input.size(); ++i) max_val = std::max(max_val, input[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < input.size(); ++i) sum += std::exp(input[i] - max_val);
  const float log_sum = std::log(sum);
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = (input[i] - max_val) - log_sum;
}

Tensor LogSoftMax::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("LogSoftMax::backward before forward(train=true)");
  }
  if (grad_output.shape() != cached_output_.shape()) {
    throw std::invalid_argument("LogSoftMax::backward: gradient shape mismatch");
  }
  // d logp_i / d x_j = delta_ij - softmax_j  =>
  // grad_x[j] = grad_out[j] - softmax[j] * sum_i grad_out[i]
  float grad_sum = 0.0f;
  for (std::size_t i = 0; i < grad_output.size(); ++i) grad_sum += grad_output[i];
  Tensor grad_input(cached_output_.shape());
  for (std::size_t j = 0; j < grad_input.size(); ++j) {
    const float softmax_j = std::exp(cached_output_[j]);
    grad_input[j] = grad_output[j] - softmax_j * grad_sum;
  }
  return grad_input;
}

float nll_loss(const Tensor& log_probs, std::size_t target) {
  if (target >= log_probs.size()) throw std::out_of_range("nll_loss: target out of range");
  return -log_probs[target];
}

Tensor nll_loss_grad(const Tensor& log_probs, std::size_t target) {
  if (target >= log_probs.size()) throw std::out_of_range("nll_loss_grad: target out of range");
  Tensor grad(log_probs.shape());
  grad[target] = -1.0f;
  return grad;
}

}  // namespace cnn2fpga::nn
