#include "nn/network.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

Network::Network(Shape input_shape, std::string name)
    : name_(std::move(name)), input_shape_(input_shape) {
  if (input_shape.rank() != 3) {
    throw std::invalid_argument(format("Network: input must be CHW, got %s",
                                       input_shape.to_string().c_str()));
  }
  shapes_.push_back(input_shape);
}

template <typename L>
L& Network::add_layer(std::unique_ptr<L> layer) {
  // output_shape() throws if the layer is incompatible with the current shape,
  // so an invalid architecture never becomes part of the network.
  const Shape out = layer->output_shape(shapes_.back());
  L& ref = *layer;
  layers_.push_back(std::move(layer));
  shapes_.push_back(out);
  return ref;
}

Conv2D& Network::add_conv(std::size_t out_channels, std::size_t kernel_h, std::size_t kernel_w) {
  return add_layer(std::make_unique<Conv2D>(shapes_.back().channels(), out_channels, kernel_h,
                                            kernel_w));
}

Pool2D& Network::add_max_pool(std::size_t kernel, std::size_t step) {
  return add_layer(std::make_unique<Pool2D>(PoolKind::kMax, kernel, kernel, step));
}

Pool2D& Network::add_mean_pool(std::size_t kernel, std::size_t step) {
  return add_layer(std::make_unique<Pool2D>(PoolKind::kMean, kernel, kernel, step));
}

Linear& Network::add_linear(std::size_t out_features) {
  return add_layer(std::make_unique<Linear>(shapes_.back().elements(), out_features));
}

Activation& Network::add_activation(ActKind act) {
  return add_layer(std::make_unique<Activation>(act));
}

LogSoftMax& Network::add_logsoftmax() { return add_layer(std::make_unique<LogSoftMax>()); }

Tensor Network::forward(const Tensor& input, bool train) {
  if (input.shape() != input_shape_) {
    throw std::invalid_argument(format("Network::forward: expected input %s, got %s",
                                       input_shape_.to_string().c_str(),
                                       input.shape().to_string().c_str()));
  }
  Tensor current = input;
  for (const LayerPtr& layer : layers_) current = layer->forward(current, train);
  return current;
}

void Network::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
}

std::vector<Param> Network::params() {
  std::vector<Param> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (Param p : layers_[i]->params()) {
      p.name = format("layer%zu.%s", i, p.name.c_str());
      all.push_back(p);
    }
  }
  return all;
}

void Network::zero_grad() {
  for (const LayerPtr& layer : layers_) layer->zero_grad();
}

std::size_t Network::parameter_count() const {
  std::size_t total = 0;
  for (const LayerPtr& layer : layers_) {
    for (const Param& p : const_cast<Layer&>(*layer).params()) total += p.value->size();
  }
  return total;
}

std::size_t Network::total_macs() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) total += layers_[i]->mac_count(shapes_[i]);
  return total;
}

void Network::init_weights(util::Rng& rng) {
  for (const LayerPtr& layer : layers_) {
    if (auto* conv = dynamic_cast<Conv2D*>(layer.get())) conv->init_weights(rng);
    if (auto* linear = dynamic_cast<Linear*>(layer.get())) linear->init_weights(rng);
  }
}

std::string Network::structure() const {
  std::string out = format("network '%s' input %s\n", name_.c_str(),
                           input_shape_.to_string().c_str());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    out += format("  [%zu] %-55s -> %s\n", i, layers_[i]->describe().c_str(),
                  shapes_[i + 1].to_string().c_str());
  }
  return out;
}

Network make_test1_network() {
  // Sec. V-A: 16x16 grayscale input, six 5x5 filters, 2x2 max-pool, 10 neurons.
  Network net(Shape{1, 16, 16}, "usps_test1");
  net.add_conv(6, 5, 5);        // -> (6, 12, 12)
  net.add_max_pool(2, 2);       // -> (6, 6, 6)
  net.add_linear(10);           // -> (10)
  net.add_logsoftmax();
  return net;
}

Network make_test3_network() {
  // Sec. V-C: first conv stage as Test 1, then sixteen 5x5 kernels on the six
  // 6x6 pooled maps -> sixteen 2x2 maps, then the 10-neuron linear layer.
  Network net(Shape{1, 16, 16}, "usps_test3");
  net.add_conv(6, 5, 5);        // -> (6, 12, 12)
  net.add_max_pool(2, 2);       // -> (6, 6, 6)
  net.add_conv(16, 5, 5);       // -> (16, 2, 2)
  net.add_linear(10);           // -> (10)
  net.add_logsoftmax();
  return net;
}

Network make_test4_network() {
  // Sec. V-D: 32x32 RGB input, twelve 5x5 filters + 2x2 max-pool, thirty-six
  // 5x5 kernels + 2x2 max-pool, linear 36, linear 10.
  Network net(Shape{3, 32, 32}, "cifar10_test4");
  net.add_conv(12, 5, 5);       // -> (12, 28, 28)
  net.add_max_pool(2, 2);       // -> (12, 14, 14)
  net.add_conv(36, 5, 5);       // -> (36, 10, 10)
  net.add_max_pool(2, 2);       // -> (36, 5, 5)
  net.add_linear(36);           // -> (36)
  net.add_activation(ActKind::kTanh);
  net.add_linear(10);           // -> (10)
  net.add_logsoftmax();
  return net;
}

}  // namespace cnn2fpga::nn
