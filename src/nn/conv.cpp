#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/activation.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
               std::size_t kernel_w)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_h_(kernel_h),
      kernel_w_(kernel_w),
      weights_(Shape{out_channels, in_channels, kernel_h, kernel_w}),
      bias_(Shape{out_channels}),
      weights_grad_(Shape{out_channels, in_channels, kernel_h, kernel_w}),
      bias_grad_(Shape{out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel_h == 0 || kernel_w == 0) {
    throw std::invalid_argument("Conv2D: all dimensions must be positive");
  }
}

void Conv2D::init_weights(util::Rng& rng) {
  const float fan_in = static_cast<float>(in_channels_ * kernel_h_ * kernel_w_);
  const float s = 1.0f / std::sqrt(fan_in);
  weights_.fill_uniform(rng, -s, s);
  bias_.fill_uniform(rng, -s, s);
}

std::string Conv2D::describe() const {
  return format("conv %zux%zux%zux%zu (out=%zu kernels of %zux%zu over %zu input maps)",
                out_channels_, in_channels_, kernel_h_, kernel_w_, out_channels_, kernel_h_,
                kernel_w_, in_channels_);
}

void Conv2D::check_input(const Shape& input) const {
  if (input.rank() != 3) {
    throw std::invalid_argument(
        format("Conv2D: expected CHW input, got rank-%zu %s", input.rank(),
               input.to_string().c_str()));
  }
  if (input.channels() != in_channels_) {
    throw std::invalid_argument(format("Conv2D: expected %zu input channels, got %zu",
                                       in_channels_, input.channels()));
  }
  if (input.height() < kernel_h_ || input.width() < kernel_w_) {
    throw std::invalid_argument(format("Conv2D: kernel %zux%zu larger than input %zux%zu",
                                       kernel_h_, kernel_w_, input.height(), input.width()));
  }
}

Shape Conv2D::output_shape(const Shape& input) const {
  check_input(input);
  // Eq. 2 / Eq. 3: new = old - kernel + 1.
  return Shape{out_channels_, input.height() - kernel_h_ + 1, input.width() - kernel_w_ + 1};
}

Tensor Conv2D::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const std::size_t oh = out_shape.height(), ow = out_shape.width();
  const std::size_t ih = input.shape().height(), iw = input.shape().width();

  const float* x = input.data();
  const float* w = weights_.data();
  float* o = out.data();

  for (std::size_t k = 0; k < out_channels_; ++k) {
    const float bk = bias_[k];
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        float acc = bk;
        for (std::size_t c = 0; c < in_channels_; ++c) {
          const float* xc = x + c * ih * iw;
          const float* wc = w + (k * in_channels_ + c) * kernel_h_ * kernel_w_;
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              acc += wc[m * kernel_w_ + n] * xc[(i + m) * iw + (j + n)];
            }
          }
        }
        o[(k * oh + i) * ow + j] = acc;
      }
    }
  }

  if (train) cached_input_ = input;
  return out;
}

std::size_t Conv2D::col_scratch_size(const Shape& input) const {
  const Shape out = output_shape(input);
  return out.height() * out.width() * in_channels_ * kernel_h_ * kernel_w_;
}

void Conv2D::infer_into(const Tensor& input, Tensor& out) const {
  std::vector<float> col(col_scratch_size(input.shape()));
  infer_into(input, out, col.data(), nullptr);
}

void Conv2D::infer_into(const Tensor& input, Tensor& out, float* col,
                        const Activation* fused) const {
  const Shape out_shape = output_shape(input.shape());
  if (out.shape() != out_shape) {
    throw std::invalid_argument(format("Conv2D::infer_into: output arena %s != %s",
                                       out.shape().to_string().c_str(),
                                       out_shape.to_string().c_str()));
  }
  const std::size_t oh = out_shape.height(), ow = out_shape.width();
  const std::size_t ih = input.shape().height(), iw = input.shape().width();
  const std::size_t patch = in_channels_ * kernel_h_ * kernel_w_;
  const std::size_t pixels = oh * ow;

  // im2col: one contiguous patch per output pixel, laid out in the exact
  // (c, m, n) order forward() accumulates in, so the GEMM's linear dot
  // product below replays forward()'s operation sequence verbatim.
  const float* x = input.data();
  for (std::size_t i = 0; i < oh; ++i) {
    for (std::size_t j = 0; j < ow; ++j) {
      float* patch_out = col + (i * ow + j) * patch;
      for (std::size_t c = 0; c < in_channels_; ++c) {
        const float* xc = x + c * ih * iw;
        for (std::size_t m = 0; m < kernel_h_; ++m) {
          const float* row = xc + (i + m) * iw + j;
          for (std::size_t n = 0; n < kernel_w_; ++n) *patch_out++ = row[n];
        }
      }
    }
  }

  // Blocked GEMM: weights (out_channels x patch) times col^T (patch x pixels).
  // Pixels are tiled so a col tile stays cache-resident across every kernel
  // row; blocking never splits the patch reduction — each output element keeps
  // a single accumulator seeded with the bias, which is what makes the result
  // bit-identical to the naive loop in forward().
  constexpr std::size_t kPixelTile = 64;
  const float* w = weights_.data();
  float* o = out.data();
  for (std::size_t p0 = 0; p0 < pixels; p0 += kPixelTile) {
    const std::size_t p1 = std::min(pixels, p0 + kPixelTile);
    for (std::size_t k = 0; k < out_channels_; ++k) {
      const float* wk = w + k * patch;
      const float bk = bias_[k];
      float* ok = o + k * pixels;
      if (fused == nullptr) {
        for (std::size_t p = p0; p < p1; ++p) {
          const float* cp = col + p * patch;
          float acc = bk;
          for (std::size_t q = 0; q < patch; ++q) acc += wk[q] * cp[q];
          ok[p] = acc;
        }
      } else {
        const ActKind act = fused->act();
        for (std::size_t p = p0; p < p1; ++p) {
          const float* cp = col + p * patch;
          float acc = bk;
          for (std::size_t q = 0; q < patch; ++q) acc += wk[q] * cp[q];
          ok[p] = Activation::apply(act, acc);
        }
      }
    }
  }
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Conv2D::backward before forward(train=true)");
  const Tensor& x = cached_input_;
  const Shape out_shape = output_shape(x.shape());
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument(format("Conv2D::backward: grad shape %s != output shape %s",
                                       grad_output.shape().to_string().c_str(),
                                       out_shape.to_string().c_str()));
  }

  const std::size_t oh = out_shape.height(), ow = out_shape.width();
  const std::size_t ih = x.shape().height(), iw = x.shape().width();
  Tensor grad_input(x.shape());

  for (std::size_t k = 0; k < out_channels_; ++k) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const float g = grad_output.data()[(k * oh + i) * ow + j];
        bias_grad_[k] += g;
        for (std::size_t c = 0; c < in_channels_; ++c) {
          const std::size_t wbase = (k * in_channels_ + c) * kernel_h_ * kernel_w_;
          const std::size_t xbase = c * ih * iw;
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              const std::size_t xidx = xbase + (i + m) * iw + (j + n);
              weights_grad_[wbase + m * kernel_w_ + n] += g * x[xidx];
              grad_input[xidx] += g * weights_[wbase + m * kernel_w_ + n];
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&weights_, &weights_grad_, "weights"}, {&bias_, &bias_grad_, "bias"}};
}

std::size_t Conv2D::mac_count(const Shape& input) const {
  const Shape out = output_shape(input);
  return out.elements() * in_channels_ * kernel_h_ * kernel_w_;
}

}  // namespace cnn2fpga::nn
