#include "nn/pool.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace cnn2fpga::nn {

using cnn2fpga::util::format;

Pool2D::Pool2D(PoolKind pool_kind, std::size_t kernel_h, std::size_t kernel_w, std::size_t step)
    : pool_kind_(pool_kind), kernel_h_(kernel_h), kernel_w_(kernel_w), step_(step) {
  if (kernel_h == 0 || kernel_w == 0 || step == 0) {
    throw std::invalid_argument("Pool2D: kernel and step must be positive");
  }
}

std::string Pool2D::describe() const {
  return format("%s %zux%zu stride %zu", kind().c_str(), kernel_h_, kernel_w_, step_);
}

Shape Pool2D::output_shape(const Shape& input) const {
  if (input.rank() != 3) {
    throw std::invalid_argument(format("Pool2D: expected CHW input, got %s",
                                       input.to_string().c_str()));
  }
  if (input.height() < kernel_h_ || input.width() < kernel_w_) {
    throw std::invalid_argument(format("Pool2D: window %zux%zu larger than input %zux%zu",
                                       kernel_h_, kernel_w_, input.height(), input.width()));
  }
  // Eq. 4 / Eq. 5: new = floor((old - kernel) / step) + 1.
  return Shape{input.channels(), (input.height() - kernel_h_) / step_ + 1,
               (input.width() - kernel_w_) / step_ + 1};
}

Tensor Pool2D::forward(const Tensor& input, bool train) {
  const Shape out_shape = output_shape(input.shape());
  Tensor out(out_shape);
  const std::size_t channels = input.shape().channels();
  const std::size_t ih = input.shape().height(), iw = input.shape().width();
  const std::size_t oh = out_shape.height(), ow = out_shape.width();

  if (train) {
    cached_input_shape_ = input.shape();
    argmax_.assign(out_shape.elements(), 0);
  }

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t base_i = i * step_, base_j = j * step_;
        const std::size_t out_idx = (c * oh + i) * ow + j;
        if (pool_kind_ == PoolKind::kMax) {
          std::size_t best_idx = (c * ih + base_i) * iw + base_j;
          float best = input[best_idx];
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              const std::size_t idx = (c * ih + base_i + m) * iw + (base_j + n);
              if (input[idx] > best) {
                best = input[idx];
                best_idx = idx;
              }
            }
          }
          out[out_idx] = best;
          if (train) argmax_[out_idx] = best_idx;
        } else {
          float acc = 0.0f;
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              acc += input[(c * ih + base_i + m) * iw + (base_j + n)];
            }
          }
          out[out_idx] = acc / static_cast<float>(kernel_h_ * kernel_w_);
        }
      }
    }
  }
  return out;
}

void Pool2D::infer_into(const Tensor& input, Tensor& out) const {
  const Shape out_shape = output_shape(input.shape());
  if (out.shape() != out_shape) {
    throw std::invalid_argument("Pool2D::infer_into: output arena shape mismatch");
  }
  const std::size_t channels = input.shape().channels();
  const std::size_t ih = input.shape().height(), iw = input.shape().width();
  const std::size_t oh = out_shape.height(), ow = out_shape.width();

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t base_i = i * step_, base_j = j * step_;
        const std::size_t out_idx = (c * oh + i) * ow + j;
        if (pool_kind_ == PoolKind::kMax) {
          float best = input[(c * ih + base_i) * iw + base_j];
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              const float v = input[(c * ih + base_i + m) * iw + (base_j + n)];
              if (v > best) best = v;
            }
          }
          out[out_idx] = best;
        } else {
          float acc = 0.0f;
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              acc += input[(c * ih + base_i + m) * iw + (base_j + n)];
            }
          }
          out[out_idx] = acc / static_cast<float>(kernel_h_ * kernel_w_);
        }
      }
    }
  }
}

Tensor Pool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0) {
    throw std::logic_error("Pool2D::backward before forward(train=true)");
  }
  const Shape out_shape = output_shape(cached_input_shape_);
  if (grad_output.shape() != out_shape) {
    throw std::invalid_argument("Pool2D::backward: gradient shape mismatch");
  }

  Tensor grad_input(cached_input_shape_);
  const std::size_t channels = cached_input_shape_.channels();
  const std::size_t ih = cached_input_shape_.height(), iw = cached_input_shape_.width();
  const std::size_t oh = out_shape.height(), ow = out_shape.width();

  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < oh; ++i) {
      for (std::size_t j = 0; j < ow; ++j) {
        const std::size_t out_idx = (c * oh + i) * ow + j;
        const float g = grad_output[out_idx];
        if (pool_kind_ == PoolKind::kMax) {
          grad_input[argmax_[out_idx]] += g;
        } else {
          const float share = g / static_cast<float>(kernel_h_ * kernel_w_);
          for (std::size_t m = 0; m < kernel_h_; ++m) {
            for (std::size_t n = 0; n < kernel_w_; ++n) {
              grad_input[(c * ih + i * step_ + m) * iw + (j * step_ + n)] += share;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::size_t Pool2D::mac_count(const Shape& input) const {
  // Pooling performs comparisons/adds, not MACs; the cost models charge one
  // window-element operation per output element.
  return output_shape(input).elements() * kernel_h_ * kernel_w_;
}

}  // namespace cnn2fpga::nn
