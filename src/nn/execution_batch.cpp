// Fused-batch SIMD executor.
//
// One invocation runs an entire micro-batch through the plan with a single
// im2col + packed GEMM per conv/linear step, so each layer's weight panels
// stream from cache once per *batch* instead of once per image. Intermediate
// activations live in two context-owned ping/pong buffers whose layout is
// tracked per step:
//
//   kInputs      — the caller's B separate CHW tensors (initial state)
//   kInterleaved — channel-major: channel c of image b occupies columns
//                  [b*pixels, (b+1)*pixels) of row c in a (C x B*pixels)
//                  buffer. This is exactly what a batched conv GEMM produces
//                  when image b's im2col patches sit at packed columns
//                  b*pixels..; pooling preserves it via strided plane
//                  pointers, and a following conv consumes it directly with
//                  channel stride B*pixels — no reshuffling between
//                  conv/pool/conv chains.
//   kImageMajor  — image b's flat activations at [b*elems, (b+1)*elems);
//                  what linear layers pack from and log-softmax runs over.
//
// Numerical contract: every output element is produced by the same
// lane-independent FMA chain regardless of batch size (see kernels.hpp), so
// run_fused_batch(count=N) is bit-identical to N calls through the
// single-image avx2 path — asserted in tests/test_kernels.cpp.
#include <cstring>
#include <stdexcept>
#include <utility>

#include "nn/execution.hpp"

namespace cnn2fpga::nn {

namespace {

enum class Domain { kInputs, kInterleaved, kImageMajor };

}  // namespace

void Network::run_fused_batch(const Tensor* const* inputs, std::size_t count,
                              ExecutionContext& ctx, float* const* out_rows) const {
  namespace ker = kernels;
  using Step = ExecutionContext::Step;
  const std::vector<Step>& steps = ctx.steps_;
  if (steps.empty()) {
    const std::size_t elems = input_shape().elements();
    for (std::size_t b = 0; b < count; ++b) {
      std::memcpy(out_rows[b], inputs[b]->data(), elems * sizeof(float));
    }
    return;
  }
  ctx.ensure_batch(count);
  float* ping = ctx.batch_ping_.data();
  float* pong = ctx.batch_pong_.data();
  float* cur = nullptr;
  Domain domain = Domain::kInputs;

  // The buffer the next producing step should write to.
  const auto free_buf = [&]() { return cur == ping ? pong : ping; };

  // Base pointer and channel stride of image b's activations for plane-wise
  // consumers (conv im2col, pooling), given the current domain.
  const auto image_plane = [&](const Shape& in_shape,
                               std::size_t b) -> std::pair<const float*, std::size_t> {
    const std::size_t pixels = in_shape.height() * in_shape.width();
    switch (domain) {
      case Domain::kInputs: return {inputs[b]->data(), pixels};
      case Domain::kInterleaved: return {cur + b * pixels, count * pixels};
      case Domain::kImageMajor: return {cur + b * in_shape.elements(), pixels};
    }
    return {nullptr, 0};
  };

  // Materialize the current activations as kImageMajor (no-op if they are).
  const auto to_image_major = [&](const Shape& shape) {
    if (domain == Domain::kImageMajor) return;
    const std::size_t elems = shape.elements();
    float* dst = free_buf();
    if (domain == Domain::kInputs) {
      for (std::size_t b = 0; b < count; ++b) {
        std::memcpy(dst + b * elems, inputs[b]->data(), elems * sizeof(float));
      }
    } else {
      const std::size_t channels = shape.channels();
      const std::size_t pixels = shape.height() * shape.width();
      for (std::size_t c = 0; c < channels; ++c) {
        const float* src_row = cur + c * count * pixels;
        for (std::size_t b = 0; b < count; ++b) {
          std::memcpy(dst + b * elems + c * pixels, src_row + b * pixels,
                      pixels * sizeof(float));
        }
      }
    }
    cur = dst;
    domain = Domain::kImageMajor;
  };

  for (const Step& step : steps) {
    switch (step.kind) {
      case Step::Kind::kConv: {
        const auto* conv = static_cast<const Conv2D*>(step.layer);
        const std::size_t ih = step.in_shape.height(), iw = step.in_shape.width();
        const std::size_t oh = step.out_shape.height(), ow = step.out_shape.width();
        const std::size_t pixels = oh * ow;
        const std::size_t patch =
            conv->in_channels() * conv->kernel_h() * conv->kernel_w();
        float* bp = ctx.bpack_.data();
        for (std::size_t b = 0; b < count; ++b) {
          const auto [base, cstride] = image_plane(step.in_shape, b);
          ker::im2col_pack(base, cstride, conv->in_channels(), ih, iw, conv->kernel_h(),
                           conv->kernel_w(), oh, ow, bp, b * pixels, count * pixels);
        }
        ker::zero_pack_tail(bp, count * pixels, patch);
        const ker::PackedA& wp = ctx.packs_->get(step.layer_index, conv->weights().data(),
                                                 conv->out_channels(), patch);
        float* dst = free_buf();
        const int act = step.fused != nullptr ? static_cast<int>(step.fused->act()) : -1;
        ker::gemm(wp, bp, count * pixels, conv->bias().data(), act, dst, count * pixels);
        cur = dst;
        domain = Domain::kInterleaved;
        break;
      }
      case Step::Kind::kPool: {
        const auto* pool = static_cast<const Pool2D*>(step.layer);
        const std::size_t ih = step.in_shape.height(), iw = step.in_shape.width();
        const std::size_t oh = step.out_shape.height(), ow = step.out_shape.width();
        const std::size_t opix = oh * ow;
        const std::size_t channels = step.in_shape.channels();
        const bool is_max = pool->pool_kind() == PoolKind::kMax;
        float* dst = free_buf();
        for (std::size_t b = 0; b < count; ++b) {
          const auto [base, cstride] = image_plane(step.in_shape, b);
          for (std::size_t c = 0; c < channels; ++c) {
            ker::pool_plane(is_max, base + c * cstride, ih, iw, pool->kernel_h(),
                            pool->kernel_w(), pool->step(), oh, ow,
                            dst + c * count * opix + b * opix, ctx.pool_row_.data());
          }
        }
        cur = dst;
        domain = Domain::kInterleaved;
        break;
      }
      case Step::Kind::kLinear: {
        const auto* lin = static_cast<const Linear*>(step.layer);
        const std::size_t k = lin->in_features();
        const std::size_t m = lin->out_features();
        if (domain == Domain::kInterleaved) to_image_major(step.in_shape);
        for (std::size_t b = 0; b < count; ++b) {
          ctx.row_ptrs_[b] =
              domain == Domain::kInputs ? inputs[b]->data() : cur + b * k;
        }
        ker::pack_b(ctx.row_ptrs_.data(), count, k, ctx.bpack_.data());
        const ker::PackedA& wp =
            ctx.packs_->get(step.layer_index, lin->weights().data(), m, k);
        const int act = step.fused != nullptr ? static_cast<int>(step.fused->act()) : -1;
        // GEMM produces C[m][b] (ldc = count); transpose to image-major. The
        // input rows were already copied into the packed panels, so writing
        // over `cur` is safe.
        ker::gemm(wp, ctx.bpack_.data(), count, lin->bias().data(), act,
                  ctx.gemm_tmp_.data(), count);
        float* dst = domain == Domain::kInputs ? ping : cur;
        for (std::size_t b = 0; b < count; ++b) {
          float* row = dst + b * m;
          for (std::size_t j = 0; j < m; ++j) row[j] = ctx.gemm_tmp_[j * count + b];
        }
        cur = dst;
        domain = Domain::kImageMajor;
        break;
      }
      case Step::Kind::kActivation: {
        const auto* activation = static_cast<const Activation*>(step.layer);
        if (domain == Domain::kInputs) to_image_major(step.in_shape);
        ker::activation_apply(activation->act(), cur, cur,
                              count * step.in_shape.elements());
        break;  // elementwise: domain preserved
      }
      case Step::Kind::kLogSoftMax: {
        const std::size_t elems = step.in_shape.elements();
        to_image_major(step.in_shape);
        for (std::size_t b = 0; b < count; ++b) {
          ker::logsoftmax(cur + b * elems, cur + b * elems, elems);
        }
        break;
      }
      case Step::Kind::kGeneric:
        // Callers pre-check with plan_needs_generic().
        throw std::logic_error("run_fused_batch: plan contains a generic step");
    }
  }

  const std::size_t out_elems = output_shape().elements();
  to_image_major(output_shape());
  for (std::size_t b = 0; b < count; ++b) {
    std::memcpy(out_rows[b], cur + b * out_elems, out_elems * sizeof(float));
  }
}

}  // namespace cnn2fpga::nn
