// SGD trainer.
//
// The paper trains its case-study networks offline with Torch and feeds the
// exported weights to the framework. This module is our Torch substitute: it
// trains the reference network with plain stochastic gradient descent (with
// optional momentum and learning-rate decay) on the synthetic datasets and
// reports the prediction error used in Table I.
#pragma once

#include <functional>
#include <vector>

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace cnn2fpga::nn {

/// One labelled sample.
struct Sample {
  Tensor image;
  std::size_t label = 0;
};

struct TrainConfig {
  std::size_t epochs = 10;
  float learning_rate = 0.005f;
  float momentum = 0.9f;
  float lr_decay = 1.0f;       ///< per-epoch multiplicative decay
  /// Global-norm gradient clipping threshold; <= 0 disables. Deeper networks
  /// (e.g. the paper's Test 3 architecture) diverge under plain SGD at
  /// learning rates the shallow nets tolerate; clipping stabilizes them.
  float clip_grad_norm = 5.0f;
  std::uint64_t shuffle_seed = 1;
  /// Invoked after each epoch with (epoch, mean training loss, test error);
  /// test error is NaN when no test set was supplied.
  std::function<void(std::size_t, float, float)> on_epoch;
};

struct TrainResult {
  std::vector<float> epoch_loss;   ///< mean NLL per epoch
  float final_train_error = 1.0f;  ///< misclassification rate on train set
  float final_test_error = 1.0f;   ///< misclassification rate on test set (1.0 if none)
};

class SgdTrainer {
 public:
  explicit SgdTrainer(TrainConfig config) : config_(config) {}

  /// Trains `net` in place. The network must end in a LogSoftMax layer.
  TrainResult train(Network& net, const std::vector<Sample>& train_set,
                    const std::vector<Sample>& test_set) const;

  /// Misclassification rate of the network on a sample set (paper's
  /// "predicted error" column).
  static float evaluate_error(Network& net, const std::vector<Sample>& samples);

 private:
  TrainConfig config_;
};

}  // namespace cnn2fpga::nn
