// Reentrant inference engine.
//
// The seed API (`Network::forward(input, train)`) mutates layer-cached
// activations, so two threads cannot run the same network concurrently — the
// serving runtime had to serialize every batch behind a per-design mutex.
// This module redesigns inference around an ExecutionContext: a caller-owned
// bundle of preallocated per-step activation arenas, im2col scratch and (for
// fixed-point mode) a quantized-parameter cache. `Network::infer(input, ctx)`
// is const and touches only the context, so N contexts give N concurrent
// inference streams over one immutable network with zero steady-state heap
// traffic.
//
// The context also holds the *execution plan*: layers are compiled once into
// steps, with an Activation directly following a Conv2D/Linear fused into the
// producing step (elementwise-after-accumulate, so fusion cannot change the
// arithmetic), and every layer classified so the kernel engine can dispatch
// without dynamic_cast on the hot path.
//
// Each context is pinned to one kernel engine (src/nn/kernels) at
// construction:
//   - kernels::Kind::kScalar runs the seed layer fast paths (im2col +
//     pixel-blocked GEMM, GEMV) which preserve forward()'s accumulation order
//     per output element and therefore match `forward` bit-for-bit (asserted
//     in tests/test_execution.cpp). The hardware model (axi::CnnIpCore) and
//     the trainer's evaluation loop pin this mode.
//   - kernels::Kind::kAvx2 runs packed-panel SIMD GEMM with a fused
//     bias+activation epilogue, reusing weight panels from a PackCache shared
//     across pooled contexts. Outputs are within 1e-4 relative error of
//     scalar (see kernels.hpp), and `infer` is bit-identical to `infer_batch`
//     within the mode.
//
// `Network::infer_batch` additionally *fuses* a whole micro-batch in avx2
// mode: one im2col + one GEMM per conv/linear layer for all images at once
// (weights stream from L2 once per layer instead of once per image), which is
// what makes serve-side batching amortize weight traffic rather than just
// queueing.
//
// Training keeps the mutable path: TrainContext wraps forward(train=true) +
// backward so the train/infer split is explicit at every call site.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_int.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "util/aligned.hpp"

namespace cnn2fpga::nn {

class ExecutionContext {
 public:
  /// Builds the execution plan and sizes every arena for `net`, pinned to the
  /// process-default kernel engine (kernels::active()). The network must
  /// outlive the context; its architecture must not change afterwards. Weight
  /// *values* may change in scalar mode (arenas hold activations, not
  /// parameters); avx2 contexts cache packed weight panels, so callers
  /// mutating weights must build fresh contexts (same as fixed mode).
  explicit ExecutionContext(const Network& net);

  /// Pin a specific kernel engine, optionally sharing a weight-pack cache
  /// with sibling contexts (nullptr: the context builds its own when needed).
  ExecutionContext(const Network& net, kernels::Kind kind,
                   std::shared_ptr<kernels::PackCache> packs);

  /// Quantized serving context: infer()/infer_batch() run the whole plan in
  /// `precision`'s fixed-point arithmetic (see kernels_int.hpp) on either
  /// engine, returning dequantized float scores. `qpacks` shares quantized
  /// weight panels across sibling contexts (nullptr: context-local); its
  /// precision must match. kFloat32 reduces to the float constructor.
  ExecutionContext(const Network& net, kernels::Kind kind,
                   std::shared_ptr<kernels::PackCache> packs, ServePrecision precision,
                   std::shared_ptr<kernels::QuantPackCache> qpacks);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  ExecutionContext(ExecutionContext&&) = default;
  ExecutionContext& operator=(ExecutionContext&&) = default;

  const Network& network() const { return *net_; }

  /// Kernel engine this context dispatches to (fixed at construction).
  kernels::Kind kernel() const { return kernel_; }

  /// Serving precision this context executes in (fixed at construction).
  ServePrecision precision() const { return precision_; }

  /// Fixed-point format of a quantized context (undefined for kFloat32).
  const FixedPointFormat& quant_format() const { return qformat_; }

  /// Output of the most recent infer() through this context; valid until the
  /// next infer() call.
  const Tensor& output() const { return arenas_.back(); }

  /// One compiled step of the plan: a layer, possibly with the directly
  /// following Activation fused into it.
  struct Step {
    enum class Kind { kConv, kLinear, kPool, kActivation, kLogSoftMax, kGeneric };
    Kind kind = Kind::kGeneric;
    const Layer* layer = nullptr;
    std::size_t layer_index = 0;        ///< index into the network's layers
    const Activation* fused = nullptr;  ///< activation folded into this step
    Shape in_shape;                     ///< shape flowing into the step
    Shape out_shape;                    ///< shape the step's arena holds
  };
  const std::vector<Step>& steps() const { return steps_; }
  Tensor& arena(std::size_t step) { return arenas_.at(step); }
  const Tensor& arena(std::size_t step) const { return arenas_.at(step); }
  /// im2col scratch for the scalar conv fast path, sized for the largest conv.
  float* col_scratch() { return col_.data(); }

  /// Eagerly builds the packed weight panels for every conv/linear layer
  /// (no-op in scalar mode). Deploy-time warming: pooled serving contexts
  /// then never pack on a request path.
  void warm_packs();

  /// Fixed-point execution state: quantized parameters (built lazily, keyed
  /// by format) and int32 activation ping/pong buffers, reused across calls.
  struct FixedState {
    bool valid = false;
    FixedPointFormat format{};
    std::vector<std::vector<std::int32_t>> weights;  ///< per layer; empty if none
    std::vector<std::vector<std::int32_t>> biases;
    std::vector<std::int32_t> ping, pong;  ///< activation buffers
  };
  FixedState& fixed_state() { return fixed_; }

 private:
  friend class Network;

  /// Grows the avx2 batch scratch (packed-B panels, ping/pong activation
  /// buffers, GEMM output staging) to hold `batch` fused images.
  void ensure_batch(std::size_t batch);

  const Network* net_;
  kernels::Kind kernel_;
  std::vector<Step> steps_;
  std::vector<Tensor> arenas_;  ///< one per step (one input-shaped if no layers)
  util::aligned_vector<float> col_;
  FixedState fixed_;

  // avx2 engine state (empty in scalar mode).
  std::shared_ptr<kernels::PackCache> packs_;
  util::aligned_vector<float> bpack_;       ///< packed-B panels (im2col / inputs)
  util::aligned_vector<float> batch_ping_;  ///< fused-batch activation buffers
  util::aligned_vector<float> batch_pong_;
  util::aligned_vector<float> gemm_tmp_;    ///< linear GEMM output before transpose
  util::aligned_vector<float> pool_row_;    ///< pool_plane row-collapse scratch
  std::vector<const float*> row_ptrs_;      ///< pack_b row pointers
  std::size_t batch_capacity_ = 0;
  std::size_t max_image_elems_ = 0;  ///< max elements of any per-image buffer

  // Quantized serving state (empty in float32 mode). The byte buffers hold
  // int8 or int16 raw activations depending on precision_; sizes are tracked
  // in bytes so one allocation scheme serves both widths.
  ServePrecision precision_ = ServePrecision::kFloat32;
  FixedPointFormat qformat_{};
  std::shared_ptr<kernels::QuantPackCache> qpacks_;
  util::aligned_vector<std::uint8_t> qbpack_;  ///< packed quantized B panels
  util::aligned_vector<std::uint8_t> qping_;   ///< quantized activation buffers
  util::aligned_vector<std::uint8_t> qpong_;
  util::aligned_vector<std::uint8_t> qgemm_tmp_;  ///< linear GEMM staging
  std::vector<const void*> qrow_ptrs_;            ///< quant pack_b row pointers
};

/// Thread-safe free-list of contexts for one network: concurrent inference
/// streams check a context out, run, and return it, so a design serving N
/// parallel batches materializes at most N contexts total. All contexts from
/// one pool share a kernel engine and (in avx2 mode) one weight-pack cache,
/// so the design's weights are packed exactly once.
class ExecutionContextPool {
 public:
  explicit ExecutionContextPool(const Network& net)
      : ExecutionContextPool(net, kernels::active()) {}

  ExecutionContextPool(const Network& net, kernels::Kind kind)
      : ExecutionContextPool(net, kind, ServePrecision::kFloat32) {}

  /// Quantized pool: every context runs the plan at `precision`, sharing one
  /// QuantPackCache so the design's weights quantize + pack exactly once.
  ExecutionContextPool(const Network& net, kernels::Kind kind, ServePrecision precision)
      : net_(&net),
        kind_(kind),
        precision_(precision),
        packs_(kind == kernels::Kind::kAvx2 && precision == ServePrecision::kFloat32
                   ? std::make_shared<kernels::PackCache>(net.layer_count())
                   : nullptr),
        qpacks_(precision != ServePrecision::kFloat32
                    ? std::make_shared<kernels::QuantPackCache>(net.layer_count(), precision)
                    : nullptr) {}

  class Lease {
   public:
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr && ctx_ != nullptr) pool_->release(std::move(ctx_));
    }
    ExecutionContext& operator*() const { return *ctx_; }
    ExecutionContext* operator->() const { return ctx_.get(); }

   private:
    friend class ExecutionContextPool;
    Lease(ExecutionContextPool* pool, std::unique_ptr<ExecutionContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    ExecutionContextPool* pool_;
    std::unique_ptr<ExecutionContext> ctx_;
  };

  /// Check out an idle context, materializing one on first use.
  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<ExecutionContext> ctx = std::move(idle_.back());
        idle_.pop_back();
        return {this, std::move(ctx)};
      }
      ++created_;
    }
    return {this,
            std::make_unique<ExecutionContext>(*net_, kind_, packs_, precision_, qpacks_)};
  }

  /// Kernel engine every context from this pool is pinned to.
  kernels::Kind kernel() const { return kind_; }

  /// Serving precision every context from this pool executes in.
  ServePrecision precision() const { return precision_; }

  /// Builds the shared weight-pack cache eagerly (no-op in scalar mode) so no
  /// request-path context ever packs.
  void warm() {
    Lease lease = acquire();
    lease->warm_packs();
  }

  /// Total contexts materialized over the pool's lifetime.
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

 private:
  void release(std::unique_ptr<ExecutionContext> ctx) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(ctx));
  }

  const Network* net_;
  kernels::Kind kind_;
  ServePrecision precision_ = ServePrecision::kFloat32;
  std::shared_ptr<kernels::PackCache> packs_;
  std::shared_ptr<kernels::QuantPackCache> qpacks_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ExecutionContext>> idle_;
  std::size_t created_ = 0;
};

/// Explicit training-mode execution: forward with activation caching enabled,
/// then backward. This wraps the seed mutable path unchanged — it exists so
/// the trainer's mutation of the network is visible at the call site, in
/// contrast to the const, reentrant infer() path.
class TrainContext {
 public:
  explicit TrainContext(Network& net) : net_(&net) {}
  Network& network() { return *net_; }
  /// Forward pass that caches per-layer activations for backward().
  Tensor forward(const Tensor& input) { return net_->forward(input, /*train=*/true); }
  /// Backward from the output gradient; requires forward() first.
  void backward(const Tensor& grad_output) { net_->backward(grad_output); }

 private:
  Network* net_;
};

}  // namespace cnn2fpga::nn
