// Reentrant inference engine.
//
// The seed API (`Network::forward(input, train)`) mutates layer-cached
// activations, so two threads cannot run the same network concurrently — the
// serving runtime had to serialize every batch behind a per-design mutex.
// This module redesigns inference around an ExecutionContext: a caller-owned
// bundle of preallocated per-step activation arenas, im2col scratch and (for
// fixed-point mode) a quantized-parameter cache. `Network::infer(input, ctx)`
// is const and touches only the context, so N contexts give N concurrent
// inference streams over one immutable network with zero steady-state heap
// traffic.
//
// The context also holds the *execution plan*: layers are compiled once into
// steps, with an Activation directly following a Conv2D/Linear fused into the
// producing step (elementwise-after-accumulate, so fusion cannot change the
// arithmetic). Conv2D steps run the im2col + blocked-GEMM fast path, which
// preserves the seed accumulation order per output element and therefore
// matches `forward` bit-for-bit (asserted in tests/test_execution.cpp).
//
// Training keeps the mutable path: TrainContext wraps forward(train=true) +
// backward so the train/infer split is explicit at every call site.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/network.hpp"
#include "nn/quantize.hpp"

namespace cnn2fpga::nn {

class ExecutionContext {
 public:
  /// Builds the execution plan and sizes every arena for `net`. The network
  /// must outlive the context; its architecture must not change afterwards
  /// (weight *values* may — arenas hold activations, not parameters, and the
  /// fixed-point cache is invalidated per call via the format key only, so
  /// callers mutating weights should use a fresh context for fixed mode).
  explicit ExecutionContext(const Network& net);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  ExecutionContext(ExecutionContext&&) = default;
  ExecutionContext& operator=(ExecutionContext&&) = default;

  const Network& network() const { return *net_; }

  /// Output of the most recent infer() through this context; valid until the
  /// next infer() call.
  const Tensor& output() const { return arenas_.back(); }

  /// One compiled step of the plan: a layer, possibly with the directly
  /// following Activation fused into it.
  struct Step {
    enum class Kind { kConv, kLinear, kGeneric };
    Kind kind = Kind::kGeneric;
    const Layer* layer = nullptr;
    std::size_t layer_index = 0;        ///< index into the network's layers
    const Activation* fused = nullptr;  ///< activation folded into this step
    Shape out_shape;                    ///< shape the step's arena holds
  };
  const std::vector<Step>& steps() const { return steps_; }
  Tensor& arena(std::size_t step) { return arenas_.at(step); }
  const Tensor& arena(std::size_t step) const { return arenas_.at(step); }
  /// im2col scratch, sized for the largest conv in the plan.
  float* col_scratch() { return col_.data(); }

  /// Fixed-point execution state: quantized parameters (built lazily, keyed
  /// by format) and int32 activation ping/pong buffers, reused across calls.
  struct FixedState {
    bool valid = false;
    FixedPointFormat format{};
    std::vector<std::vector<std::int32_t>> weights;  ///< per layer; empty if none
    std::vector<std::vector<std::int32_t>> biases;
    std::vector<std::int32_t> ping, pong;  ///< activation buffers
  };
  FixedState& fixed_state() { return fixed_; }

 private:
  const Network* net_;
  std::vector<Step> steps_;
  std::vector<Tensor> arenas_;  ///< one per step (one input-shaped if no layers)
  std::vector<float> col_;
  FixedState fixed_;
};

/// Thread-safe free-list of contexts for one network: concurrent inference
/// streams check a context out, run, and return it, so a design serving N
/// parallel batches materializes at most N contexts total.
class ExecutionContextPool {
 public:
  explicit ExecutionContextPool(const Network& net) : net_(&net) {}

  class Lease {
   public:
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr && ctx_ != nullptr) pool_->release(std::move(ctx_));
    }
    ExecutionContext& operator*() const { return *ctx_; }
    ExecutionContext* operator->() const { return ctx_.get(); }

   private:
    friend class ExecutionContextPool;
    Lease(ExecutionContextPool* pool, std::unique_ptr<ExecutionContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    ExecutionContextPool* pool_;
    std::unique_ptr<ExecutionContext> ctx_;
  };

  /// Check out an idle context, materializing one on first use.
  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<ExecutionContext> ctx = std::move(idle_.back());
        idle_.pop_back();
        return {this, std::move(ctx)};
      }
      ++created_;
    }
    return {this, std::make_unique<ExecutionContext>(*net_)};
  }

  /// Total contexts materialized over the pool's lifetime.
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }

 private:
  void release(std::unique_ptr<ExecutionContext> ctx) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(ctx));
  }

  const Network* net_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ExecutionContext>> idle_;
  std::size_t created_ = 0;
};

/// Explicit training-mode execution: forward with activation caching enabled,
/// then backward. This wraps the seed mutable path unchanged — it exists so
/// the trainer's mutation of the network is visible at the call site, in
/// contrast to the const, reentrant infer() path.
class TrainContext {
 public:
  explicit TrainContext(Network& net) : net_(&net) {}
  Network& network() { return *net_; }
  /// Forward pass that caches per-layer activations for backward().
  Tensor forward(const Tensor& input) { return net_->forward(input, /*train=*/true); }
  /// Backward from the output gradient; requires forward() first.
  void backward(const Tensor& grad_output) { net_->backward(grad_output); }

 private:
  Network* net_;
};

}  // namespace cnn2fpga::nn
