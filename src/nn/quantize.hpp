// Fixed-point numeric formats and quantization helpers.
//
// The paper uses 32-bit floating point throughout and notes that "from the
// FPGA prospective, this reasonably implies a higher usage of resources"
// (Sec. V). Fixed-point inference is the canonical remedy (the paper's
// Sankaradas et al. baseline [8] packs low-precision words for exactly this
// reason); this module provides the Q(m,n) arithmetic the generator's fixed
// mode emits, bit-exactly mirrored between the reference model and the
// generated C++.
//
// Representation: two's-complement integers of `total_bits` with `frac_bits`
// fractional bits (scale 2^frac_bits), saturating arithmetic, round-half-up
// on the post-multiply shift.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cnn2fpga::nn {

struct FixedPointFormat {
  int total_bits = 16;
  int frac_bits = 8;

  int integer_bits() const { return total_bits - frac_bits; }
  std::int64_t scale() const { return std::int64_t{1} << frac_bits; }
  std::int64_t max_raw() const { return (std::int64_t{1} << (total_bits - 1)) - 1; }
  std::int64_t min_raw() const { return -(std::int64_t{1} << (total_bits - 1)); }

  /// Smallest representable step.
  double resolution() const { return 1.0 / static_cast<double>(scale()); }

  /// "Q8.8"-style name.
  std::string name() const;

  /// Validates 2 <= total_bits <= 32, 1 <= frac_bits < total_bits.
  /// Throws std::invalid_argument otherwise.
  void validate() const;

  bool operator==(const FixedPointFormat&) const = default;
};

/// Float -> raw fixed value (round to nearest, saturate). The generated C++
/// uses the identical expression, so quantization is bit-exact across the
/// reference model and the emitted design.
std::int32_t fixed_quantize(float value, const FixedPointFormat& format);

/// Raw fixed value -> float.
float fixed_dequantize(std::int64_t raw, const FixedPointFormat& format);

/// Saturating right-shift with round-half-up: the post-multiply renormalizer
/// applied to a 2*frac_bits-scaled accumulator.
std::int32_t fixed_renormalize(std::int64_t accumulator, const FixedPointFormat& format);

/// Saturate an already frac_bits-scaled value into the representable range.
std::int32_t fixed_saturate(std::int64_t raw, const FixedPointFormat& format);

/// Numeric precision a design is *served* at by the CPU engine. Orthogonal to
/// NumericFormat (the HLS codegen format below): a float32-codegen design can
/// be deployed for int8 serving and vice versa. The quantized precisions map
/// onto fixed formats whose raw values fit the native integer width:
///   kInt16 -> Q8.8  (total 16, frac 8) — bit-identical to forward_fixed
///   kInt8  -> Q4.4  (total 8,  frac 4) — forward_fixed semantics with the
///             SIMD engine's +/-kInt8WeightClamp weight clamp (kernels_int.hpp)
enum class ServePrecision { kFloat32 = 0, kInt16 = 1, kInt8 = 2 };

inline constexpr std::size_t kServePrecisionCount = 3;

inline constexpr std::size_t serve_precision_index(ServePrecision p) {
  return static_cast<std::size_t>(p);
}

/// "float32" | "int16" | "int8" — the deploy API's wire names.
const char* serve_precision_name(ServePrecision precision);

/// Parse a wire name; returns false (out untouched) for unknown strings.
bool parse_serve_precision(std::string_view name, ServePrecision& out);

/// The fixed-point format a quantized serving precision computes in.
/// Throws std::invalid_argument for kFloat32 (no fixed format).
FixedPointFormat serve_precision_format(ServePrecision precision);

/// The numeric format of a generated design: either the paper's float32 or a
/// fixed-point configuration.
struct NumericFormat {
  bool is_fixed = false;
  FixedPointFormat fixed;

  static NumericFormat float32() { return {}; }
  static NumericFormat fixed_point(int total_bits, int frac_bits) {
    NumericFormat f;
    f.is_fixed = true;
    f.fixed = {total_bits, frac_bits};
    f.fixed.validate();
    return f;
  }

  std::string name() const { return is_fixed ? fixed.name() : "float32"; }
  bool operator==(const NumericFormat&) const = default;
};

}  // namespace cnn2fpga::nn
