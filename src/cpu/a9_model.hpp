// Execution-time model of the CNN software baseline on the Zynq's ARM
// Cortex-A9 (667 MHz on the Zedboard's XC7Z020-1).
//
// Calibration (DESIGN.md Sec. 5): the paper's Table I implies a scalar,
// cache-naive baseline of ~90 cycles per multiply-accumulate:
//   Test 4: 2565 s / 10^4 images / 1.82 M MACs/image = 94 cycles/MAC
//   Test 1: 3.3 s  / 10^3 images / 23.8 k MACs/image = 92 cycles/MAC
// i.e. a straightforward single-thread float implementation without NEON,
// dominated by load/store and loop overhead, as produced by Torch's default
// CPU path of the era on ARM. Transcendentals (exp/log/tanh) go through
// soft libm at a few hundred cycles each.
#pragma once

#include <cstdint>

#include "nn/network.hpp"

namespace cnn2fpga::cpu {

struct A9Model {
  double clock_mhz = 666.7;          ///< Zynq-7020 APU clock
  double cycles_per_mac = 90.0;      ///< conv/linear inner-loop cost
  double cycles_per_pool_elem = 30.0;///< compare/accumulate per window element
  double cycles_per_transcendental = 350.0;  ///< exp/log/tanh/sigmoid via libm
  double cycles_per_layer_call = 200.0;      ///< function-call + setup overhead
};

/// Cycles for one forward pass (classification of one image).
std::uint64_t forward_cycles(const nn::Network& net, const A9Model& model = {});

/// Seconds for one forward pass.
double forward_seconds(const nn::Network& net, const A9Model& model = {});

/// Seconds to classify a test set of `count` images.
double batch_seconds(const nn::Network& net, std::uint64_t count, const A9Model& model = {});

}  // namespace cnn2fpga::cpu
