#include "cpu/a9_model.hpp"

#include <cmath>

namespace cnn2fpga::cpu {

std::uint64_t forward_cycles(const nn::Network& net, const A9Model& model) {
  double cycles = 0.0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::Layer& layer = net.layer(i);
    const nn::Shape& in_shape = i == 0 ? net.input_shape() : net.shape_after(i - 1);
    const nn::Shape& out_shape = net.shape_after(i);
    const std::string kind = layer.kind();

    cycles += model.cycles_per_layer_call;
    if (kind == "conv" || kind == "linear") {
      cycles += static_cast<double>(layer.mac_count(in_shape)) * model.cycles_per_mac;
    } else if (kind == "maxpool" || kind == "meanpool") {
      cycles += static_cast<double>(layer.mac_count(in_shape)) * model.cycles_per_pool_elem;
    } else if (kind == "tanh" || kind == "sigmoid") {
      cycles += static_cast<double>(out_shape.elements()) * model.cycles_per_transcendental;
    } else if (kind == "relu") {
      cycles += static_cast<double>(out_shape.elements()) * 4.0;
    } else if (kind == "logsoftmax") {
      // exp per class, one log, plus the max/argmax scans.
      cycles += static_cast<double>(out_shape.elements()) * model.cycles_per_transcendental +
                model.cycles_per_transcendental +
                static_cast<double>(out_shape.elements()) * 8.0;
    }
  }
  return static_cast<std::uint64_t>(std::llround(cycles));
}

double forward_seconds(const nn::Network& net, const A9Model& model) {
  return static_cast<double>(forward_cycles(net, model)) / (model.clock_mhz * 1e6);
}

double batch_seconds(const nn::Network& net, std::uint64_t count, const A9Model& model) {
  return forward_seconds(net, model) * static_cast<double>(count);
}

}  // namespace cnn2fpga::cpu
