#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/fileio.hpp"
#include "util/strings.hpp"

namespace cnn2fpga::data {

using cnn2fpga::util::format;

std::pair<std::vector<Sample>, std::vector<Sample>> Dataset::split(std::size_t train_count) const {
  if (train_count > samples.size()) {
    throw std::invalid_argument(format("Dataset::split: train_count %zu > size %zu", train_count,
                                       samples.size()));
  }
  std::vector<Sample> train(samples.begin(), samples.begin() + static_cast<long>(train_count));
  std::vector<Sample> test(samples.begin() + static_cast<long>(train_count), samples.end());
  return {std::move(train), std::move(test)};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes, 0);
  for (const Sample& s : samples) {
    if (s.label < num_classes) ++hist[s.label];
  }
  return hist;
}

std::pair<float, float> Dataset::pixel_stats() const {
  double sum = 0.0, sum_sq = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples) {
    for (std::size_t i = 0; i < s.image.size(); ++i) {
      sum += s.image[i];
      sum_sq += static_cast<double>(s.image[i]) * s.image[i];
      ++count;
    }
  }
  if (count == 0) return {0.0f, 0.0f};
  const double mean = sum / static_cast<double>(count);
  const double var = std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean);
  return {static_cast<float>(mean), static_cast<float>(std::sqrt(var))};
}

namespace {
constexpr char kMagic[] = "CNN2FPGAD1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& bytes, std::size_t& pos) {
  if (pos + 4 > bytes.size()) throw std::runtime_error("dataset file truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
  pos += 4;
  return v;
}
}  // namespace

void save_dataset(const Dataset& ds, const std::string& path) {
  std::vector<std::uint8_t> out(kMagic, kMagic + kMagicLen);
  put_u32(out, static_cast<std::uint32_t>(ds.num_classes));
  put_u32(out, static_cast<std::uint32_t>(ds.image_shape.rank()));
  for (std::size_t d = 0; d < ds.image_shape.rank(); ++d) {
    put_u32(out, static_cast<std::uint32_t>(ds.image_shape[d]));
  }
  put_u32(out, static_cast<std::uint32_t>(ds.samples.size()));
  for (const Sample& s : ds.samples) {
    if (s.image.shape() != ds.image_shape) {
      throw std::runtime_error("save_dataset: sample shape differs from dataset shape");
    }
    put_u32(out, static_cast<std::uint32_t>(s.label));
    const std::size_t offset = out.size();
    out.resize(offset + s.image.size() * 4);
    std::memcpy(out.data() + offset, s.image.data(), s.image.size() * 4);
  }
  util::write_file_bytes(path, out);
}

Dataset load_dataset(const std::string& path) {
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  if (bytes.size() < kMagicLen || std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    throw std::runtime_error("dataset file: bad magic");
  }
  std::size_t pos = kMagicLen;
  Dataset ds;
  ds.name = path;
  ds.num_classes = get_u32(bytes, pos);
  const std::uint32_t rank = get_u32(bytes, pos);
  if (rank > 4) throw std::runtime_error("dataset file: rank > 4");
  std::vector<std::size_t> dims(rank);
  for (std::uint32_t d = 0; d < rank; ++d) dims[d] = get_u32(bytes, pos);
  ds.image_shape = tensor::Shape{std::span<const std::size_t>(dims)};
  const std::uint32_t count = get_u32(bytes, pos);
  ds.samples.reserve(count);
  const std::size_t pixels = ds.image_shape.elements();
  for (std::uint32_t s = 0; s < count; ++s) {
    Sample sample;
    sample.label = get_u32(bytes, pos);
    sample.image = tensor::Tensor(ds.image_shape);
    if (pos + pixels * 4 > bytes.size()) throw std::runtime_error("dataset file truncated");
    std::memcpy(sample.image.data(), bytes.data() + pos, pixels * 4);
    pos += pixels * 4;
    ds.samples.push_back(std::move(sample));
  }
  if (pos != bytes.size()) throw std::runtime_error("dataset file: trailing bytes");
  return ds;
}

std::string ascii_render(const tensor::Tensor& image) {
  static const char ramp[] = " .:-=+*#%@";
  const std::size_t channels = image.shape().channels();
  const std::size_t h = image.shape().height(), w = image.shape().width();
  std::string out;
  out.reserve((w + 1) * h);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      float v = 0.0f;
      for (std::size_t c = 0; c < channels; ++c) v += image.at(c, i, j);
      v /= static_cast<float>(channels);
      const float clamped = std::clamp(v, 0.0f, 1.0f);
      out.push_back(ramp[static_cast<std::size_t>(clamped * 9.999f)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace cnn2fpga::data
