#include "data/synth_cifar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnn2fpga::data {

namespace {
// Per-class base hue (RGB triple) — classes are visually separable in the mean.
constexpr float kClassHue[10][3] = {
    {0.8f, 0.2f, 0.2f}, {0.2f, 0.8f, 0.2f}, {0.2f, 0.2f, 0.8f}, {0.8f, 0.8f, 0.2f},
    {0.8f, 0.2f, 0.8f}, {0.2f, 0.8f, 0.8f}, {0.6f, 0.4f, 0.2f}, {0.4f, 0.6f, 0.8f},
    {0.7f, 0.7f, 0.7f}, {0.3f, 0.3f, 0.3f},
};
}  // namespace

tensor::Tensor render_cifar_image(std::size_t cls, util::Rng& rng, const CifarConfig& config) {
  if (cls > 9) throw std::invalid_argument("render_cifar_image: class must be 0..9");
  tensor::Tensor image(tensor::Shape{3, 32, 32});

  // Class-dependent gradient orientation and spatial frequency.
  const float angle = static_cast<float>(cls) * 0.62832f +
                      static_cast<float>(rng.uniform(-0.15, 0.15));
  const float freq = 0.08f + 0.015f * static_cast<float>(cls % 5);
  const float cos_a = std::cos(angle), sin_a = std::sin(angle);

  // Class-dependent blob count: 1 + cls % 3 bright blobs.
  const std::size_t blob_count = 1 + cls % 3;
  struct Blob {
    float row, col, radius;
  };
  std::vector<Blob> blobs(blob_count);
  for (Blob& b : blobs) {
    b.row = static_cast<float>(rng.uniform(6.0, 26.0));
    b.col = static_cast<float>(rng.uniform(6.0, 26.0));
    b.radius = static_cast<float>(rng.uniform(3.0, 6.0));
  }

  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      const float fi = static_cast<float>(i), fj = static_cast<float>(j);
      // Oriented sinusoidal texture.
      const float phase = freq * (cos_a * fi + sin_a * fj) * 6.28318f;
      const float texture = 0.5f + 0.25f * std::sin(phase);
      // Blob mask.
      float blob = 0.0f;
      for (const Blob& b : blobs) {
        const float d2 = (fi - b.row) * (fi - b.row) + (fj - b.col) * (fj - b.col);
        blob = std::max(blob, std::exp(-d2 / (2.0f * b.radius * b.radius)));
      }
      for (std::size_t c = 0; c < 3; ++c) {
        float v = kClassHue[cls][c] * texture + 0.35f * blob;
        v += static_cast<float>(rng.normal(0.0, config.noise_stddev));
        image.at(c, i, j) = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return image;
}

Dataset generate_cifar(const CifarConfig& config) {
  Dataset ds;
  ds.name = "synthetic-cifar10";
  ds.num_classes = 10;
  ds.image_shape = tensor::Shape{3, 32, 32};
  ds.samples.reserve(10 * config.samples_per_class);

  util::Rng rng(config.seed);
  for (std::size_t i = 0; i < config.samples_per_class; ++i) {
    for (std::size_t cls = 0; cls < 10; ++cls) {
      Sample sample;
      sample.label = cls;
      sample.image = render_cifar_image(cls, rng, config);
      ds.samples.push_back(std::move(sample));
    }
  }
  return ds;
}

}  // namespace cnn2fpga::data
