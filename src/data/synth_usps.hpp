// Synthetic USPS-like digit dataset.
//
// The real USPS corpus (handwritten digits scanned from envelopes, 16x16
// grayscale, 10 classes) is not redistributable here; this generator renders
// procedural digits with handwriting-like variability:
//   - seven-segment glyph skeletons per digit class,
//   - random sub-pixel translation and per-segment intensity,
//   - stroke thickness jitter and additive Gaussian pixel noise.
// A small CNN (the paper's Test 1 architecture) trains to a few percent test
// error on it, matching the regime of Table I (3.9% / 7.1%).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace cnn2fpga::data {

struct UspsConfig {
  std::size_t samples_per_class = 100;
  std::uint64_t seed = 42;
  float noise_stddev = 0.08f;   ///< additive Gaussian pixel noise
  int max_translation = 1;      ///< uniform +-pixels in x and y
  float min_intensity = 0.65f;  ///< stroke intensity drawn from [min, 1]
};

/// Generate `10 * samples_per_class` images, classes interleaved 0..9,0..9,...
/// so any prefix split is class-balanced. Pixels are in [0, 1], shape (1,16,16).
Dataset generate_usps(const UspsConfig& config);

/// Render a single digit (no dataset bookkeeping); exposed for tests.
tensor::Tensor render_usps_digit(std::size_t digit, util::Rng& rng, const UspsConfig& config);

}  // namespace cnn2fpga::data
