#include "data/synth_usps.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace cnn2fpga::data {

namespace {

// Seven-segment layout on a 16x16 canvas (segments A-G):
//
//    AAAA
//   F    B
//   F    B
//    GGGG
//   E    C
//   E    C
//    DDDD
//
// Each segment is an axis-aligned bar; per-digit membership follows the
// classic seven-segment encoding.
struct Segment {
  int row0, col0, row1, col1;  // inclusive pixel rectangle
};

constexpr std::array<Segment, 7> kSegments = {{
    {2, 4, 3, 11},    // A (top)
    {2, 10, 7, 11},   // B (top right)
    {8, 10, 13, 11},  // C (bottom right)
    {12, 4, 13, 11},  // D (bottom)
    {8, 4, 13, 5},    // E (bottom left)
    {2, 4, 7, 5},     // F (top left)
    {7, 4, 8, 11},    // G (middle)
}};

// Bit i set => segment i (A..G) lit, for digits 0..9.
constexpr std::array<unsigned, 10> kDigitSegments = {
    0b0111111,  // 0: ABCDEF
    0b0000110,  // 1: BC
    0b1011011,  // 2: ABDEG
    0b1001111,  // 3: ABCDG
    0b1100110,  // 4: BCFG
    0b1101101,  // 5: ACDFG
    0b1111101,  // 6: ACDEFG
    0b0000111,  // 7: ABC
    0b1111111,  // 8: all
    0b1101111,  // 9: ABCDFG
};

}  // namespace

tensor::Tensor render_usps_digit(std::size_t digit, util::Rng& rng, const UspsConfig& config) {
  if (digit > 9) throw std::invalid_argument("render_usps_digit: digit must be 0..9");

  tensor::Tensor image(tensor::Shape{1, 16, 16});
  const int dx = config.max_translation == 0
                     ? 0
                     : static_cast<int>(rng.next_below(2 * config.max_translation + 1)) -
                           config.max_translation;
  const int dy = config.max_translation == 0
                     ? 0
                     : static_cast<int>(rng.next_below(2 * config.max_translation + 1)) -
                           config.max_translation;

  const unsigned lit = kDigitSegments[digit];
  for (std::size_t s = 0; s < kSegments.size(); ++s) {
    if ((lit & (1u << s)) == 0) continue;
    const Segment& seg = kSegments[s];
    const float intensity =
        static_cast<float>(rng.uniform(config.min_intensity, 1.0));
    // Thickness jitter: occasionally widen the bar by one pixel on one side.
    const int widen = rng.next_below(4) == 0 ? 1 : 0;
    for (int r = seg.row0; r <= seg.row1 + widen; ++r) {
      for (int c = seg.col0; c <= seg.col1 + widen; ++c) {
        const int rr = r + dy, cc = c + dx;
        if (rr < 0 || rr >= 16 || cc < 0 || cc >= 16) continue;
        float& px = image.at(0, static_cast<std::size_t>(rr), static_cast<std::size_t>(cc));
        px = std::max(px, intensity);
      }
    }
  }

  if (config.noise_stddev > 0.0f) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = std::clamp(
          image[i] + static_cast<float>(rng.normal(0.0, config.noise_stddev)), 0.0f, 1.0f);
    }
  }
  return image;
}

Dataset generate_usps(const UspsConfig& config) {
  Dataset ds;
  ds.name = "synthetic-usps";
  ds.num_classes = 10;
  ds.image_shape = tensor::Shape{1, 16, 16};
  ds.samples.reserve(10 * config.samples_per_class);

  util::Rng rng(config.seed);
  for (std::size_t i = 0; i < config.samples_per_class; ++i) {
    for (std::size_t digit = 0; digit < 10; ++digit) {
      Sample sample;
      sample.label = digit;
      sample.image = render_usps_digit(digit, rng, config);
      ds.samples.push_back(std::move(sample));
    }
  }
  return ds;
}

}  // namespace cnn2fpga::data
