// Synthetic CIFAR-10-like dataset.
//
// The real CIFAR-10 (32x32 RGB natural images, 10 classes) is not shipped;
// this generator produces labelled 32x32 RGB images whose classes differ by
// procedural appearance (dominant hue, gradient orientation, blob count and
// high-frequency texture), buried in substantial noise.
//
// In the paper's Test 4 the network uses *random weights*, so the prediction
// error is ~89-90% by construction and the dataset only needs to exercise the
// full 3-channel data path with the right volume; these images do that while
// still carrying enough class signal to be learnable in principle.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace cnn2fpga::data {

struct CifarConfig {
  std::size_t samples_per_class = 100;
  std::uint64_t seed = 1234;
  float noise_stddev = 0.12f;
};

/// Generate `10 * samples_per_class` images, classes interleaved, pixels in
/// [0, 1], shape (3, 32, 32).
Dataset generate_cifar(const CifarConfig& config);

tensor::Tensor render_cifar_image(std::size_t cls, util::Rng& rng, const CifarConfig& config);

}  // namespace cnn2fpga::data
