// Dataset containers and binary persistence.
//
// The paper evaluates on USPS (16x16 grayscale digits) and CIFAR-10 (32x32
// RGB). Neither corpus ships with this repository, so `synth_usps`/`synth_cifar`
// generate statistically similar synthetic stand-ins (see DESIGN.md for why
// this preserves the relevant behaviour). This header holds the shared
// container, split helpers, per-class statistics and a binary file format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/trainer.hpp"  // for nn::Sample

namespace cnn2fpga::data {

using nn::Sample;

struct Dataset {
  std::string name;
  std::size_t num_classes = 0;
  tensor::Shape image_shape;
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }

  /// Split off the first `train_count` samples as the training set and the
  /// rest as the test set. Generators already interleave classes uniformly,
  /// so a prefix split is class-balanced.
  std::pair<std::vector<Sample>, std::vector<Sample>> split(std::size_t train_count) const;

  /// Per-class sample counts (index = label).
  std::vector<std::size_t> class_histogram() const;

  /// Global mean / stddev of pixel values (Fig. 6 statistics).
  std::pair<float, float> pixel_stats() const;
};

/// Binary persistence:
///   magic "CNN2FPGAD1\n", u32 num_classes, u32 rank, u32 dims[rank],
///   u32 sample count, then per sample: u32 label + f32 pixels.
void save_dataset(const Dataset& ds, const std::string& path);
Dataset load_dataset(const std::string& path);

/// Render one CHW image as ASCII art (one line per row, ' .:-=+*#%@' ramp);
/// multi-channel images are rendered channel-averaged. Used by the Fig. 6 bench.
std::string ascii_render(const tensor::Tensor& image);

}  // namespace cnn2fpga::data
