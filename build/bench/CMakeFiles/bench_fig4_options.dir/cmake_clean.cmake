file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_options.dir/bench_fig4_options.cpp.o"
  "CMakeFiles/bench_fig4_options.dir/bench_fig4_options.cpp.o.d"
  "bench_fig4_options"
  "bench_fig4_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
