file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_blockdesign.dir/bench_fig5_blockdesign.cpp.o"
  "CMakeFiles/bench_fig5_blockdesign.dir/bench_fig5_blockdesign.cpp.o.d"
  "bench_fig5_blockdesign"
  "bench_fig5_blockdesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_blockdesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
