file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_directives.dir/bench_ablation_directives.cpp.o"
  "CMakeFiles/bench_ablation_directives.dir/bench_ablation_directives.cpp.o.d"
  "bench_ablation_directives"
  "bench_ablation_directives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
