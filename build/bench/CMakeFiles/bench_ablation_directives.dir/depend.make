# Empty dependencies file for bench_ablation_directives.
# This may be replaced when dependencies are built.
