# Empty compiler generated dependencies file for bench_fig1_structure.
# This may be replaced when dependencies are built.
