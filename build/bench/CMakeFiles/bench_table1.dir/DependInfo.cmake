
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/cnn2fpga_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/cnn2fpga_web.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cnn2fpga_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cnn2fpga_core.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/cnn2fpga_json.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/cnn2fpga_power.dir/DependInfo.cmake"
  "/root/repo/build/src/axi/CMakeFiles/cnn2fpga_axi.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/cnn2fpga_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnn2fpga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
