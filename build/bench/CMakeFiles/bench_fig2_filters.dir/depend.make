# Empty dependencies file for bench_fig2_filters.
# This may be replaced when dependencies are built.
