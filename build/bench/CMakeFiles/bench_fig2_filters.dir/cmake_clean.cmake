file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_filters.dir/bench_fig2_filters.cpp.o"
  "CMakeFiles/bench_fig2_filters.dir/bench_fig2_filters.cpp.o.d"
  "bench_fig2_filters"
  "bench_fig2_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
