# Empty dependencies file for cnn2fpga_power.
# This may be replaced when dependencies are built.
