
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy_logger.cpp" "src/power/CMakeFiles/cnn2fpga_power.dir/energy_logger.cpp.o" "gcc" "src/power/CMakeFiles/cnn2fpga_power.dir/energy_logger.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/cnn2fpga_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/cnn2fpga_power.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/cnn2fpga_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cnn2fpga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
