file(REMOVE_RECURSE
  "libcnn2fpga_power.a"
)
