file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_power.dir/energy_logger.cpp.o"
  "CMakeFiles/cnn2fpga_power.dir/energy_logger.cpp.o.d"
  "CMakeFiles/cnn2fpga_power.dir/power_model.cpp.o"
  "CMakeFiles/cnn2fpga_power.dir/power_model.cpp.o.d"
  "libcnn2fpga_power.a"
  "libcnn2fpga_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
