file(REMOVE_RECURSE
  "libcnn2fpga_core.a"
)
