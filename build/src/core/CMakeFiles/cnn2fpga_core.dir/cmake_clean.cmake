file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_core.dir/codegen_cpp.cpp.o"
  "CMakeFiles/cnn2fpga_core.dir/codegen_cpp.cpp.o.d"
  "CMakeFiles/cnn2fpga_core.dir/codegen_tcl.cpp.o"
  "CMakeFiles/cnn2fpga_core.dir/codegen_tcl.cpp.o.d"
  "CMakeFiles/cnn2fpga_core.dir/descriptor.cpp.o"
  "CMakeFiles/cnn2fpga_core.dir/descriptor.cpp.o.d"
  "CMakeFiles/cnn2fpga_core.dir/dse.cpp.o"
  "CMakeFiles/cnn2fpga_core.dir/dse.cpp.o.d"
  "CMakeFiles/cnn2fpga_core.dir/framework.cpp.o"
  "CMakeFiles/cnn2fpga_core.dir/framework.cpp.o.d"
  "libcnn2fpga_core.a"
  "libcnn2fpga_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
