# Empty dependencies file for cnn2fpga_core.
# This may be replaced when dependencies are built.
