file(REMOVE_RECURSE
  "libcnn2fpga_cpu.a"
)
