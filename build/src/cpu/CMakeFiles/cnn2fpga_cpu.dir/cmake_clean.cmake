file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_cpu.dir/a9_model.cpp.o"
  "CMakeFiles/cnn2fpga_cpu.dir/a9_model.cpp.o.d"
  "libcnn2fpga_cpu.a"
  "libcnn2fpga_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
