
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/a9_model.cpp" "src/cpu/CMakeFiles/cnn2fpga_cpu.dir/a9_model.cpp.o" "gcc" "src/cpu/CMakeFiles/cnn2fpga_cpu.dir/a9_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cnn2fpga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
