# Empty dependencies file for cnn2fpga_cpu.
# This may be replaced when dependencies are built.
