file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_tensor.dir/tensor.cpp.o"
  "CMakeFiles/cnn2fpga_tensor.dir/tensor.cpp.o.d"
  "libcnn2fpga_tensor.a"
  "libcnn2fpga_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
