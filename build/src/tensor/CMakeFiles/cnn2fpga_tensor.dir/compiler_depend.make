# Empty compiler generated dependencies file for cnn2fpga_tensor.
# This may be replaced when dependencies are built.
