file(REMOVE_RECURSE
  "libcnn2fpga_tensor.a"
)
