# Empty compiler generated dependencies file for cnn2fpga_nn.
# This may be replaced when dependencies are built.
