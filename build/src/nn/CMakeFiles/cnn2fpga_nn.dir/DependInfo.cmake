
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/fixed_inference.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/fixed_inference.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/fixed_inference.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/logsoftmax.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/logsoftmax.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/logsoftmax.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/cnn2fpga_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/cnn2fpga_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
