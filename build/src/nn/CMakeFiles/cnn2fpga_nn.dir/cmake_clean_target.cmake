file(REMOVE_RECURSE
  "libcnn2fpga_nn.a"
)
