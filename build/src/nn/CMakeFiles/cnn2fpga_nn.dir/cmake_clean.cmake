file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_nn.dir/activation.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/activation.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/conv.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/conv.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/fixed_inference.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/fixed_inference.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/linear.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/linear.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/logsoftmax.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/logsoftmax.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/network.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/network.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/pool.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/pool.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/quantize.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/serialize.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/cnn2fpga_nn.dir/trainer.cpp.o"
  "CMakeFiles/cnn2fpga_nn.dir/trainer.cpp.o.d"
  "libcnn2fpga_nn.a"
  "libcnn2fpga_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
