# Empty dependencies file for cnn2fpga_web.
# This may be replaced when dependencies are built.
