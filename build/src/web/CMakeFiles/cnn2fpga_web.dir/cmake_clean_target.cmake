file(REMOVE_RECURSE
  "libcnn2fpga_web.a"
)
