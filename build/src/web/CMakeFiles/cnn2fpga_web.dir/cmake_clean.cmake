file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_web.dir/api.cpp.o"
  "CMakeFiles/cnn2fpga_web.dir/api.cpp.o.d"
  "CMakeFiles/cnn2fpga_web.dir/http.cpp.o"
  "CMakeFiles/cnn2fpga_web.dir/http.cpp.o.d"
  "libcnn2fpga_web.a"
  "libcnn2fpga_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
