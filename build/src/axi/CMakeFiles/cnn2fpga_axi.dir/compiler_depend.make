# Empty compiler generated dependencies file for cnn2fpga_axi.
# This may be replaced when dependencies are built.
