
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/axi/block_design.cpp" "src/axi/CMakeFiles/cnn2fpga_axi.dir/block_design.cpp.o" "gcc" "src/axi/CMakeFiles/cnn2fpga_axi.dir/block_design.cpp.o.d"
  "/root/repo/src/axi/dma.cpp" "src/axi/CMakeFiles/cnn2fpga_axi.dir/dma.cpp.o" "gcc" "src/axi/CMakeFiles/cnn2fpga_axi.dir/dma.cpp.o.d"
  "/root/repo/src/axi/interconnect.cpp" "src/axi/CMakeFiles/cnn2fpga_axi.dir/interconnect.cpp.o" "gcc" "src/axi/CMakeFiles/cnn2fpga_axi.dir/interconnect.cpp.o.d"
  "/root/repo/src/axi/ip_core.cpp" "src/axi/CMakeFiles/cnn2fpga_axi.dir/ip_core.cpp.o" "gcc" "src/axi/CMakeFiles/cnn2fpga_axi.dir/ip_core.cpp.o.d"
  "/root/repo/src/axi/stream.cpp" "src/axi/CMakeFiles/cnn2fpga_axi.dir/stream.cpp.o" "gcc" "src/axi/CMakeFiles/cnn2fpga_axi.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cnn2fpga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/cnn2fpga_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
