file(REMOVE_RECURSE
  "libcnn2fpga_axi.a"
)
