file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_axi.dir/block_design.cpp.o"
  "CMakeFiles/cnn2fpga_axi.dir/block_design.cpp.o.d"
  "CMakeFiles/cnn2fpga_axi.dir/dma.cpp.o"
  "CMakeFiles/cnn2fpga_axi.dir/dma.cpp.o.d"
  "CMakeFiles/cnn2fpga_axi.dir/interconnect.cpp.o"
  "CMakeFiles/cnn2fpga_axi.dir/interconnect.cpp.o.d"
  "CMakeFiles/cnn2fpga_axi.dir/ip_core.cpp.o"
  "CMakeFiles/cnn2fpga_axi.dir/ip_core.cpp.o.d"
  "CMakeFiles/cnn2fpga_axi.dir/stream.cpp.o"
  "CMakeFiles/cnn2fpga_axi.dir/stream.cpp.o.d"
  "libcnn2fpga_axi.a"
  "libcnn2fpga_axi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
