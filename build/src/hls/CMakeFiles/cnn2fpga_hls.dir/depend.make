# Empty dependencies file for cnn2fpga_hls.
# This may be replaced when dependencies are built.
