file(REMOVE_RECURSE
  "libcnn2fpga_hls.a"
)
