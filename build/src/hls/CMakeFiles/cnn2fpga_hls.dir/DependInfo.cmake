
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/device.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/device.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/device.cpp.o.d"
  "/root/repo/src/hls/estimator.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/estimator.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/estimator.cpp.o.d"
  "/root/repo/src/hls/ir.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/ir.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/ir.cpp.o.d"
  "/root/repo/src/hls/lowering.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/lowering.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/lowering.cpp.o.d"
  "/root/repo/src/hls/op_costs.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/op_costs.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/op_costs.cpp.o.d"
  "/root/repo/src/hls/report.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/report.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/report.cpp.o.d"
  "/root/repo/src/hls/resources.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/resources.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/resources.cpp.o.d"
  "/root/repo/src/hls/roofline.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/roofline.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/roofline.cpp.o.d"
  "/root/repo/src/hls/schedule.cpp" "src/hls/CMakeFiles/cnn2fpga_hls.dir/schedule.cpp.o" "gcc" "src/hls/CMakeFiles/cnn2fpga_hls.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cnn2fpga_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cnn2fpga_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cnn2fpga_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
