file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_hls.dir/device.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/device.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/estimator.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/estimator.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/ir.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/ir.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/lowering.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/lowering.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/op_costs.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/op_costs.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/report.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/report.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/resources.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/resources.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/roofline.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/roofline.cpp.o.d"
  "CMakeFiles/cnn2fpga_hls.dir/schedule.cpp.o"
  "CMakeFiles/cnn2fpga_hls.dir/schedule.cpp.o.d"
  "libcnn2fpga_hls.a"
  "libcnn2fpga_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
