file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_data.dir/dataset.cpp.o"
  "CMakeFiles/cnn2fpga_data.dir/dataset.cpp.o.d"
  "CMakeFiles/cnn2fpga_data.dir/synth_cifar.cpp.o"
  "CMakeFiles/cnn2fpga_data.dir/synth_cifar.cpp.o.d"
  "CMakeFiles/cnn2fpga_data.dir/synth_usps.cpp.o"
  "CMakeFiles/cnn2fpga_data.dir/synth_usps.cpp.o.d"
  "libcnn2fpga_data.a"
  "libcnn2fpga_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
