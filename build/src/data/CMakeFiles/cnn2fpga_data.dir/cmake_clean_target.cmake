file(REMOVE_RECURSE
  "libcnn2fpga_data.a"
)
