# Empty compiler generated dependencies file for cnn2fpga_data.
# This may be replaced when dependencies are built.
