file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_util.dir/base64.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/base64.cpp.o.d"
  "CMakeFiles/cnn2fpga_util.dir/cli.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/cli.cpp.o.d"
  "CMakeFiles/cnn2fpga_util.dir/fileio.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/fileio.cpp.o.d"
  "CMakeFiles/cnn2fpga_util.dir/logging.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/logging.cpp.o.d"
  "CMakeFiles/cnn2fpga_util.dir/strings.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/strings.cpp.o.d"
  "CMakeFiles/cnn2fpga_util.dir/table.cpp.o"
  "CMakeFiles/cnn2fpga_util.dir/table.cpp.o.d"
  "libcnn2fpga_util.a"
  "libcnn2fpga_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
