file(REMOVE_RECURSE
  "libcnn2fpga_util.a"
)
