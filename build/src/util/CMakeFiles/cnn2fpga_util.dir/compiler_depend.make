# Empty compiler generated dependencies file for cnn2fpga_util.
# This may be replaced when dependencies are built.
