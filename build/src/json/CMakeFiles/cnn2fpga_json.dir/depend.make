# Empty dependencies file for cnn2fpga_json.
# This may be replaced when dependencies are built.
