file(REMOVE_RECURSE
  "libcnn2fpga_json.a"
)
