file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_json.dir/json.cpp.o"
  "CMakeFiles/cnn2fpga_json.dir/json.cpp.o.d"
  "libcnn2fpga_json.a"
  "libcnn2fpga_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
