# Empty dependencies file for codegen_server.
# This may be replaced when dependencies are built.
