file(REMOVE_RECURSE
  "CMakeFiles/codegen_server.dir/codegen_server.cpp.o"
  "CMakeFiles/codegen_server.dir/codegen_server.cpp.o.d"
  "codegen_server"
  "codegen_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
