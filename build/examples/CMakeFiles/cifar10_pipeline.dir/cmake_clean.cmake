file(REMOVE_RECURSE
  "CMakeFiles/cifar10_pipeline.dir/cifar10_pipeline.cpp.o"
  "CMakeFiles/cifar10_pipeline.dir/cifar10_pipeline.cpp.o.d"
  "cifar10_pipeline"
  "cifar10_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar10_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
