# Empty compiler generated dependencies file for cifar10_pipeline.
# This may be replaced when dependencies are built.
