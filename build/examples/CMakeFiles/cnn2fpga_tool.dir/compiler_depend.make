# Empty compiler generated dependencies file for cnn2fpga_tool.
# This may be replaced when dependencies are built.
