file(REMOVE_RECURSE
  "CMakeFiles/cnn2fpga_tool.dir/cnn2fpga_tool.cpp.o"
  "CMakeFiles/cnn2fpga_tool.dir/cnn2fpga_tool.cpp.o.d"
  "cnn2fpga_tool"
  "cnn2fpga_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn2fpga_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
