file(REMOVE_RECURSE
  "CMakeFiles/usps_digits.dir/usps_digits.cpp.o"
  "CMakeFiles/usps_digits.dir/usps_digits.cpp.o.d"
  "usps_digits"
  "usps_digits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usps_digits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
