# Empty dependencies file for usps_digits.
# This may be replaced when dependencies are built.
