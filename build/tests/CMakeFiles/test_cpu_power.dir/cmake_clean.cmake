file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_power.dir/test_cpu_power.cpp.o"
  "CMakeFiles/test_cpu_power.dir/test_cpu_power.cpp.o.d"
  "test_cpu_power"
  "test_cpu_power.pdb"
  "test_cpu_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
