file(REMOVE_RECURSE
  "CMakeFiles/test_linear_activation.dir/test_linear_activation.cpp.o"
  "CMakeFiles/test_linear_activation.dir/test_linear_activation.cpp.o.d"
  "test_linear_activation"
  "test_linear_activation.pdb"
  "test_linear_activation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
