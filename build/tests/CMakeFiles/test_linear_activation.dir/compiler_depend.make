# Empty compiler generated dependencies file for test_linear_activation.
# This may be replaced when dependencies are built.
