# Empty compiler generated dependencies file for test_streamed.
# This may be replaced when dependencies are built.
