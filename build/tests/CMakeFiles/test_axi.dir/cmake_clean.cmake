file(REMOVE_RECURSE
  "CMakeFiles/test_axi.dir/test_axi.cpp.o"
  "CMakeFiles/test_axi.dir/test_axi.cpp.o.d"
  "test_axi"
  "test_axi.pdb"
  "test_axi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_axi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
