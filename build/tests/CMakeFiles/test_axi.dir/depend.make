# Empty dependencies file for test_axi.
# This may be replaced when dependencies are built.
