# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_conv[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_linear_activation[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_descriptor[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_tcl[1]_include.cmake")
include("/root/repo/build/tests/test_hls[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_power[1]_include.cmake")
include("/root/repo/build/tests/test_axi[1]_include.cmake")
include("/root/repo/build/tests/test_web[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fixed[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_streamed[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
