// Tests for the sharded serving subsystem: consistent-hash ring properties
// (uniformity, minimal remap, replica distinctness), the keep-alive
// HttpClient, and the router end to end — replication, routed predicts that
// stay bit-exact, failover on worker death, catalog-driven repair, and fleet
// metrics/readyz aggregation.
//
// Router tests use in-process workers: several (ServingRuntime, HttpServer)
// pairs in this one process, reached over real TCP. That exercises the same
// transport the production fleet uses while staying fork-free, so the whole
// file runs under ThreadSanitizer (TSan does not support fork+threads; the
// fork-based fleet is exercised by codegen_server --router and the bench
// harness instead).
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "serve/shard/process.hpp"
#include "serve/shard/ring.hpp"
#include "serve/shard/router.hpp"
#include "serve/shard/supervisor.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"
#include "web/http_client.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::serve;
namespace json = cnn2fpga::json;

namespace {

std::string deploy_body(const std::string& name, int seed = 7) {
  return util::format(
      R"({"name": "%s", "board": "zedboard", "optimize": true, "seed": %d,
          "input": {"channels": 1, "height": 8, "width": 8},
          "layers": [
            {"type": "conv", "feature_maps_out": 2, "kernel": 3,
             "pool": {"type": "max", "kernel": 2, "step": 2}},
            {"type": "linear", "neurons": 4}
          ]})",
      name.c_str(), seed);
}

std::string predict_body(const std::string& design_id, float fill = 0.25f) {
  std::string image = "[";
  for (int i = 0; i < 64; ++i) {
    image += util::format("%s%.6f", i == 0 ? "" : ",", fill + 0.001f * static_cast<float>(i));
  }
  image += "]";
  return util::format(R"({"design_id": "%s", "image": %s})", design_id.c_str(),
                      image.c_str());
}

web::HttpRequest post(const std::string& body) {
  web::HttpRequest request;
  request.method = "POST";
  request.body = body;
  return request;
}

// ---------------------------------------------------------------------------
// Hash ring properties
// ---------------------------------------------------------------------------

std::vector<std::string> synthetic_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(util::format("design-%zx", i * 2654435761u));
  return keys;
}

TEST(Ring, SpreadsKeysRoughlyUniformly) {
  shard::HashRing ring;
  for (int w = 0; w < 4; ++w) ring.add(util::format("worker-%d", w));
  const auto keys = synthetic_keys(1000);
  std::map<std::string, int> share;
  for (const auto& key : keys) share[ring.primary(key)]++;
  ASSERT_EQ(share.size(), 4u);
  for (const auto& [worker, count] : share) {
    // Perfect balance is 250; 64 vnodes keeps every share well inside 2x.
    EXPECT_GT(count, 100) << worker;
    EXPECT_LT(count, 450) << worker;
  }
}

TEST(Ring, JoinMovesOnlyKeysTheNewWorkerOwns) {
  shard::HashRing ring;
  for (int w = 0; w < 4; ++w) ring.add(util::format("worker-%d", w));
  const auto keys = synthetic_keys(1000);
  std::map<std::string, std::string> before;
  for (const auto& key : keys) before[key] = ring.primary(key);

  ring.add("worker-4");
  int moved = 0;
  for (const auto& key : keys) {
    const std::string after = ring.primary(key);
    if (after != before[key]) {
      ++moved;
      // The defining consistent-hashing property: a key only moves TO the
      // newcomer; ownership never shuffles between incumbents.
      EXPECT_EQ(after, "worker-4") << key;
    }
  }
  // Expected share is K/N = 200 of 1000; modulo hashing would move ~800.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 400);
}

TEST(Ring, LeaveMovesOnlyTheDepartedWorkersKeys) {
  shard::HashRing ring;
  for (int w = 0; w < 4; ++w) ring.add(util::format("worker-%d", w));
  const auto keys = synthetic_keys(1000);
  std::map<std::string, std::string> before;
  for (const auto& key : keys) before[key] = ring.primary(key);

  ring.remove("worker-2");
  for (const auto& key : keys) {
    if (before[key] != "worker-2") {
      EXPECT_EQ(ring.primary(key), before[key]) << key;
    } else {
      EXPECT_NE(ring.primary(key), "worker-2") << key;
    }
  }
}

TEST(Ring, ReplicasAreDistinctWorkers) {
  shard::HashRing ring;
  for (int w = 0; w < 3; ++w) ring.add(util::format("worker-%d", w));
  for (const auto& key : synthetic_keys(200)) {
    const auto two = ring.replicas(key, 2);
    ASSERT_EQ(two.size(), 2u) << key;
    EXPECT_NE(two[0], two[1]) << key;
    EXPECT_EQ(two[0], ring.primary(key)) << key;
    // Asking for more replicas than workers returns every distinct worker.
    const auto all = ring.replicas(key, 5);
    EXPECT_EQ(all.size(), 3u) << key;
    EXPECT_EQ(std::set<std::string>(all.begin(), all.end()).size(), 3u) << key;
  }
}

TEST(Ring, EmptyRingAnswersEmpty) {
  shard::HashRing ring;
  EXPECT_EQ(ring.primary("anything"), "");
  EXPECT_TRUE(ring.replicas("anything", 2).empty());
}

// ---------------------------------------------------------------------------
// Keep-alive HttpClient
// ---------------------------------------------------------------------------

TEST(HttpClient, KeepAliveReusesOneConnection) {
  web::HttpServer server;
  server.route("GET", "/ping", [](const web::HttpRequest&) {
    web::HttpResponse response;
    response.body = "{\"pong\":true}";
    return response;
  });
  const int port = server.start();

  web::ClientConfig config;
  config.keep_alive = true;
  web::HttpClient client("127.0.0.1", port, config);
  for (int i = 0; i < 5; ++i) {
    const auto response = client.request("GET", "/ping");
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ(response->status, 200) << i;
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  server.stop();
}

TEST(HttpClient, WithoutKeepAliveOpensPerRequest) {
  web::HttpServer server;
  server.route("GET", "/ping", [](const web::HttpRequest&) { return web::HttpResponse{}; });
  const int port = server.start();
  web::HttpClient client("127.0.0.1", port);  // keep_alive off by default
  ASSERT_TRUE(client.request("GET", "/ping").has_value());
  ASSERT_TRUE(client.request("GET", "/ping").has_value());
  EXPECT_EQ(client.connections_opened(), 2u);
  server.stop();
}

TEST(HttpClient, RefusedConnectionFailsPromptly) {
  const int port = shard::reserve_local_port();
  ASSERT_GT(port, 0);
  web::ClientConfig config;
  config.connect_timeout_ms = 500;
  web::HttpClient client("127.0.0.1", port, config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.request("GET", "/ping").has_value());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
}

TEST(HttpClient, StaleKeepAliveConnectionRetriesOnFreshSocket) {
  web::HttpServer server;
  server.route("GET", "/ping", [](const web::HttpRequest&) { return web::HttpResponse{}; });
  const int port = server.start();

  web::ClientConfig config;
  config.keep_alive = true;
  web::HttpClient client("127.0.0.1", port, config);
  ASSERT_TRUE(client.request("GET", "/ping").has_value());
  EXPECT_TRUE(client.connected());

  // Server restart severs the pooled connection; the next request must
  // silently reconnect instead of failing.
  server.stop();
  ASSERT_EQ(server.start(port), port);
  const auto response = client.request("GET", "/ping");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Histogram JSON: the raw buckets the fleet merge relies on
// ---------------------------------------------------------------------------

TEST(Metrics, HistogramJsonExportsSumAndRawBuckets) {
  Histogram histogram;
  histogram.record(0);
  histogram.record(3);
  histogram.record(3);
  histogram.record(1000);
  const json::Value doc = histogram.to_json();
  EXPECT_EQ(doc.get_int("count", -1), 4);
  EXPECT_EQ(doc.get_int("sum", -1), 1006);
  const json::Value* buckets = doc.find("buckets");
  ASSERT_NE(buckets, nullptr);
  std::uint64_t total = 0;
  for (const json::Value& pair : buckets->as_array()) {
    ASSERT_EQ(pair.as_array().size(), 2u);
    total += static_cast<std::uint64_t>(pair.as_array()[1].as_int());
  }
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
}

// ---------------------------------------------------------------------------
// Router integration over real TCP (in-process workers)
// ---------------------------------------------------------------------------

/// One worker of the in-process fleet: a full serving runtime behind a real
/// HTTP listener, restartable on its reserved port to model crash + rejoin.
struct InProcWorker {
  InProcWorker() { start(); }

  void start() {
    runtime = std::make_unique<ServingRuntime>(make_config());
    server = std::make_unique<web::HttpServer>();
    install_serve_api(*server, *runtime);
    port = server->start(port);  // port 0 first time, then the same port again
  }

  /// Death: close the listener and drop all state (a fresh start() models a
  /// restarted, empty worker).
  void kill() {
    server->stop();
    server.reset();
    runtime.reset();
  }

  static ServingConfig make_config() {
    ServingConfig config;
    config.worker_threads = 2;
    config.backends.accelerator = false;  // deterministic CPU-only execution
    return config;
  }

  std::unique_ptr<ServingRuntime> runtime;
  std::unique_ptr<web::HttpServer> server;
  int port = 0;
};

struct Fleet {
  explicit Fleet(std::size_t n, std::size_t replication = 2) {
    shard::RouterConfig config;
    config.replication = replication;
    config.probe_interval_ms = 0;  // probes only via probe_now(): deterministic
    config.worker.client.connect_timeout_ms = 500;
    config.worker.client.read_timeout_ms = 10000;
    config.worker.down_after_failures = 2;
    router = std::make_unique<shard::Router>(config);
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<InProcWorker>());
      router->add_worker(util::format("worker-%zu", i), "127.0.0.1", workers[i]->port);
    }
  }

  InProcWorker& by_id(const std::string& id) {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (util::format("worker-%zu", i) == id) return *workers[i];
    }
    ADD_FAILURE() << "unknown worker id " << id;
    return *workers[0];
  }

  std::unique_ptr<shard::Router> router;
  std::vector<std::unique_ptr<InProcWorker>> workers;
};

TEST(Router, DeployReplicatesToDistinctWorkersAndPredictIsBitExact) {
  Fleet fleet(2);
  const std::string body = deploy_body("shard_net");

  const auto deployed = fleet.router->handle_deploy(post(body));
  ASSERT_EQ(deployed.status, 200) << deployed.body;
  EXPECT_EQ(deployed.headers.at("X-Shard-Replication"), "2");
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();
  EXPECT_EQ(fleet.router->holders(design_id).size(), 2u);
  // Both workers' registries really hold the design (replication is deploys,
  // not bookkeeping).
  EXPECT_NE(fleet.workers[0]->runtime->registry().find(design_id), nullptr);
  EXPECT_NE(fleet.workers[1]->runtime->registry().find(design_id), nullptr);
  EXPECT_EQ(fleet.router->key_mismatches(), 0u);

  // Reference: the same deploy on a standalone runtime. The routed logits
  // must match bit for bit (%.17g round-trips doubles exactly).
  ServingRuntime reference(InProcWorker::make_config());
  const auto ref_deploy = reference.handle_deploy(post(body));
  ASSERT_EQ(ref_deploy.status, 200);
  const auto ref_predict = reference.handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(ref_predict.status, 200);
  const json::Value expected = json::parse(ref_predict.body);

  const auto routed = fleet.router->handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(routed.status, 200) << routed.body;
  EXPECT_EQ(routed.headers.at("X-Shard-Attempts"), "1");
  EXPECT_FALSE(routed.headers.at("X-Shard-Worker").empty());
  const json::Value actual = json::parse(routed.body);
  EXPECT_EQ(actual.at("predicted").as_int(), expected.at("predicted").as_int());
  const json::Array& expected_logits = expected.at("logits").as_array();
  const json::Array& actual_logits = actual.at("logits").as_array();
  ASSERT_EQ(actual_logits.size(), expected_logits.size());
  for (std::size_t i = 0; i < expected_logits.size(); ++i) {
    EXPECT_EQ(actual_logits[i].as_double(), expected_logits[i].as_double()) << i;
  }
}

TEST(Router, CacheHitOnSecondDeployThroughRouter) {
  Fleet fleet(2);
  const std::string body = deploy_body("cache_net");
  const auto first = fleet.router->handle_deploy(post(body));
  ASSERT_EQ(first.status, 200);
  EXPECT_FALSE(json::parse(first.body).at("cache_hit").as_bool());
  const auto second = fleet.router->handle_deploy(post(body));
  ASSERT_EQ(second.status, 200);
  EXPECT_TRUE(json::parse(second.body).at("cache_hit").as_bool());
}

TEST(Router, UnknownDesignPassesThroughWorker404) {
  Fleet fleet(2);
  const auto response =
      fleet.router->handle_predict(post(predict_body("0123456789abcdef")));
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(json::parse(response.body).at("error").at("code").as_string(),
            "unknown_design");
}

TEST(Router, FailoverOnWorkerDeathShedsNoRequests) {
  Fleet fleet(2);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("failover_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();

  const auto first = fleet.router->handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(first.status, 200);
  const std::string primary = first.headers.at("X-Shard-Worker");

  fleet.by_id(primary).kill();

  // Every predict after the death must still answer 200 from the replica —
  // the dead worker sheds only its in-flight work, nothing afterwards.
  int failovers_seen = 0;
  for (int i = 0; i < 8; ++i) {
    const auto response = fleet.router->handle_predict(post(predict_body(design_id)));
    ASSERT_EQ(response.status, 200) << "request " << i << ": " << response.body;
    EXPECT_NE(response.headers.at("X-Shard-Worker"), primary);
    if (response.headers.at("X-Shard-Attempts") != "1") ++failovers_seen;
  }
  EXPECT_GT(failovers_seen, 0);
  EXPECT_GT(fleet.router->failovers(), 0u);
  // The transport failures took the worker off the ring inline (no probe
  // cycle ran yet).
  EXPECT_EQ(fleet.router->ring_workers().size(), 1u);

  // Fleet readyz reports the dead worker and the shrunken ring.
  const auto readyz = fleet.router->handle_readyz({});
  EXPECT_EQ(readyz.status, 200);  // the surviving worker still serves
  const json::Value doc = json::parse(readyz.body);
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  EXPECT_EQ(doc.at("workers").at(primary).at("state").as_string(), "down");
  EXPECT_EQ(doc.at("ring").at("workers").as_array().size(), 1u);
}

TEST(Router, RecoveredWorkerRejoinsAndIsRepairedWithoutFullRebalance) {
  Fleet fleet(2);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("rejoin_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();
  const auto first = fleet.router->handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(first.status, 200);
  const std::string primary = first.headers.at("X-Shard-Worker");

  InProcWorker& victim = fleet.by_id(primary);
  victim.kill();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(fleet.router->handle_predict(post(predict_body(design_id))).status, 200);
  }
  ASSERT_EQ(fleet.router->ring_workers().size(), 1u);

  // Restart on the same port with an EMPTY registry: rejoin must re-replicate
  // from the router's catalog, not assume state survived.
  victim.start();
  ASSERT_EQ(victim.runtime->registry().find(design_id), nullptr);
  const std::uint64_t repairs_before = fleet.router->repairs();
  fleet.router->probe_now();
  EXPECT_EQ(fleet.router->ring_workers().size(), 2u);
  EXPECT_GT(fleet.router->repairs(), repairs_before);
  EXPECT_NE(victim.runtime->registry().find(design_id), nullptr);

  const auto holders = fleet.router->holders(design_id);
  EXPECT_EQ(holders.size(), 2u);
  const auto after = fleet.router->handle_predict(post(predict_body(design_id)));
  EXPECT_EQ(after.status, 200);
}

TEST(Router, LostRegistryEntryIsRedeployedFromCatalogOn404) {
  Fleet fleet(1, /*replication=*/1);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("replay_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();

  // Restart the only worker with a fresh (empty) runtime on the same port:
  // the ring still routes to it, its registry answers 404.
  fleet.workers[0]->kill();
  fleet.workers[0]->start();
  ASSERT_EQ(fleet.workers[0]->runtime->registry().find(design_id), nullptr);

  const auto response = fleet.router->handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_GT(fleet.router->repairs(), 0u);
  EXPECT_NE(fleet.workers[0]->runtime->registry().find(design_id), nullptr);
}

TEST(Router, ShardWorkerFaultSiteForcesFailover) {
  Fleet fleet(2);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("drill_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();

  // Fire exactly once: the first candidate "fails", the replica answers.
  fleet.router->faults().arm("shard.worker", {FaultKind::kError, 1.0, 1, 0});
  const auto response = fleet.router->handle_predict(post(predict_body(design_id)));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.headers.at("X-Shard-Attempts"), "2");
  EXPECT_EQ(fleet.router->injected_failures(), 1u);
  // The drill must not poison real health state: both workers stay up.
  fleet.router->probe_now();
  EXPECT_EQ(fleet.router->ring_workers().size(), 2u);
}

TEST(Router, FleetMetricsSumCountersAndMergeHistograms) {
  Fleet fleet(2);
  // Two designs so that (very likely) both workers see some traffic; with
  // replication 2 on a 2-worker ring each design lands on both anyway.
  const auto d1 = fleet.router->handle_deploy(post(deploy_body("metrics_a")));
  const auto d2 = fleet.router->handle_deploy(post(deploy_body("metrics_b", 9)));
  ASSERT_EQ(d1.status, 200);
  ASSERT_EQ(d2.status, 200);
  const std::string id1 = json::parse(d1.body).at("design_id").as_string();
  const std::string id2 = json::parse(d2.body).at("design_id").as_string();

  const int per_design = 6;
  for (int i = 0; i < per_design; ++i) {
    ASSERT_EQ(fleet.router->handle_predict(post(predict_body(id1))).status, 200);
    ASSERT_EQ(fleet.router->handle_predict(post(predict_body(id2))).status, 200);
  }

  const auto metrics = fleet.router->handle_metrics({});
  ASSERT_EQ(metrics.status, 200);
  const json::Value doc = json::parse(metrics.body);

  // The fleet block is the exact sum of the per-worker blocks.
  std::uint64_t worker_sum = 0;
  std::uint64_t worker_exec_count = 0;
  std::uint64_t worker_exec_sum = 0;
  for (const auto& [id, worker_doc] : doc.at("workers").as_object()) {
    worker_sum += static_cast<std::uint64_t>(
        worker_doc.at("predict").get_int("total", 0));
    worker_exec_count += static_cast<std::uint64_t>(
        worker_doc.at("predict").at("exec_us").get_int("count", 0));
    worker_exec_sum += static_cast<std::uint64_t>(
        worker_doc.at("predict").at("exec_us").get_int("sum", 0));
  }
  EXPECT_EQ(worker_sum, static_cast<std::uint64_t>(2 * per_design));
  const json::Value& fleet_predict = doc.at("fleet").at("predict");
  EXPECT_EQ(static_cast<std::uint64_t>(fleet_predict.get_int("total", 0)), worker_sum);

  // Histogram merge is exact in count and sum, and percentiles are
  // recomputed from the merged buckets (present and bounded by max).
  const json::Value& exec = fleet_predict.at("exec_us");
  EXPECT_EQ(static_cast<std::uint64_t>(exec.get_int("count", 0)), worker_exec_count);
  EXPECT_EQ(static_cast<std::uint64_t>(exec.get_int("sum", 0)), worker_exec_sum);
  EXPECT_LE(exec.get_int("p99", -1), exec.get_int("max", -1));
  ASSERT_NE(exec.find("buckets"), nullptr);
  std::uint64_t bucket_total = 0;
  for (const json::Value& pair : exec.at("buckets").as_array()) {
    bucket_total += static_cast<std::uint64_t>(pair.as_array()[1].as_int());
  }
  EXPECT_EQ(bucket_total, worker_exec_count);

  // Recomputed fleet ratios stay in range instead of being summed.
  const double hit_rate = doc.at("fleet").at("deploy").at("cache_hit_rate").as_double();
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("router").get_int("key_mismatches", -1)),
            0u);
}

TEST(Router, DeployWithNoWorkersAnswers503) {
  shard::RouterConfig config;
  config.probe_interval_ms = 0;
  shard::Router router(config);
  const auto response = router.handle_deploy(post(deploy_body("nobody")));
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(json::parse(response.body).at("error").at("code").as_string(), "no_workers");
}

TEST(Router, ComputeDesignKeyMatchesRegistry) {
  const std::string body = deploy_body("key_net", 13);
  web::HttpResponse error;
  const auto key = shard::compute_design_key(body, &error);
  ASSERT_TRUE(key.has_value()) << error.body;

  ServingRuntime runtime(InProcWorker::make_config());
  const auto deployed = runtime.handle_deploy(post(body));
  ASSERT_EQ(deployed.status, 200);
  EXPECT_EQ(*key, json::parse(deployed.body).at("design_id").as_string());

  // Precision is part of the key, exactly as in the registry.
  json::Value doc = json::parse(body);
  doc.as_object()["precision"] = "int8";
  const auto quant_key = shard::compute_design_key(doc.dump(), &error);
  ASSERT_TRUE(quant_key.has_value());
  EXPECT_EQ(*quant_key, *key + "-int8");

  EXPECT_FALSE(shard::compute_design_key("{not json", &error).has_value());
  EXPECT_EQ(error.status, 400);
}

// ---------------------------------------------------------------------------
// Supervisor state machine (in-process launcher: fork-free, TSan-friendly)
// ---------------------------------------------------------------------------

/// Controllable stand-in for a worker process: `up` is the liveness the
/// supervisor polls, `start_ok` decides whether a restart attempt succeeds.
struct FakeLauncher : shard::WorkerLauncher {
  bool start() override {
    ++starts;
    if (!start_ok) return false;
    up = true;
    return true;
  }
  bool alive() override { return up; }
  void stop() override {
    up = false;
    ++stops;
  }
  int port() const override { return 45678; }

  bool up = true;
  bool start_ok = true;
  int starts = 0;
  int stops = 0;
};

shard::SupervisorConfig fast_supervisor_config() {
  shard::SupervisorConfig config;
  config.backoff_initial_ms = 1;
  config.backoff_factor = 2.0;
  config.backoff_max_ms = 5000;
  config.restart_budget = 0;  // unlimited unless a test overrides it
  return config;
}

/// Drive tick() until the slot leaves kBackoff (sleeping through the tiny
/// deterministic delays) or `max_ticks` is exhausted.
void tick_until_settled(shard::Supervisor& supervisor, int max_ticks = 50) {
  for (int i = 0; i < max_ticks; ++i) {
    supervisor.tick();
    if (supervisor.status()[0].state != shard::SlotState::kBackoff) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(Supervisor, CrashEntersBackoffThenRestartFiresCallback) {
  shard::Supervisor supervisor(fast_supervisor_config());
  auto owned = std::make_unique<FakeLauncher>();
  FakeLauncher* launcher = owned.get();
  supervisor.add_slot("w0", std::move(owned));
  std::vector<std::string> restarted;
  supervisor.on_restart([&restarted](const std::string& id) { restarted.push_back(id); });

  // Healthy worker: ticks are no-ops.
  supervisor.tick();
  EXPECT_EQ(supervisor.crashes(), 0u);
  EXPECT_EQ(launcher->starts, 0);

  launcher->up = false;  // SIGKILL equivalent
  supervisor.tick();
  EXPECT_EQ(supervisor.crashes(), 1u);
  auto status = supervisor.status();
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, shard::SlotState::kBackoff);
  EXPECT_EQ(status[0].backoff_ms, 1);  // deterministic: initial × factor^0

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  supervisor.tick();  // backoff elapsed → restart succeeds
  EXPECT_EQ(supervisor.restarts(), 1u);
  EXPECT_TRUE(launcher->up);
  EXPECT_EQ(supervisor.status()[0].state, shard::SlotState::kRunning);
  ASSERT_EQ(restarted.size(), 1u);
  EXPECT_EQ(restarted[0], "w0");
}

TEST(Supervisor, FailedRestartEscalatesBackoffDeterministically) {
  shard::Supervisor supervisor(fast_supervisor_config());
  auto owned = std::make_unique<FakeLauncher>();
  FakeLauncher* launcher = owned.get();
  supervisor.add_slot("flappy", std::move(owned));

  launcher->up = false;
  launcher->start_ok = false;
  supervisor.tick();  // crash #1 → backoff 1 ms
  EXPECT_EQ(supervisor.status()[0].backoff_ms, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(4));
  supervisor.tick();  // restart fails → crash #2 → backoff 1×2^1
  EXPECT_EQ(supervisor.crashes(), 2u);
  EXPECT_EQ(supervisor.status()[0].backoff_ms, 2);
  std::this_thread::sleep_for(std::chrono::milliseconds(6));
  supervisor.tick();  // restart fails → crash #3 → backoff 1×2^2
  EXPECT_EQ(supervisor.crashes(), 3u);
  EXPECT_EQ(supervisor.status()[0].backoff_ms, 4);
  EXPECT_EQ(supervisor.restarts(), 0u);

  // The worker becomes startable again: the next due restart heals the slot.
  launcher->start_ok = true;
  tick_until_settled(supervisor);
  EXPECT_EQ(supervisor.status()[0].state, shard::SlotState::kRunning);
  EXPECT_EQ(supervisor.restarts(), 1u);
}

TEST(Supervisor, RestartBudgetMarksSlotPermanentlyDead) {
  shard::SupervisorConfig config = fast_supervisor_config();
  config.restart_budget = 2;  // third crash inside the window retires the slot
  shard::Supervisor supervisor(config);
  auto owned = std::make_unique<FakeLauncher>();
  FakeLauncher* launcher = owned.get();
  supervisor.add_slot("doomed", std::move(owned));

  launcher->up = false;
  launcher->start_ok = false;  // e.g. its model file is gone: can never come up
  tick_until_settled(supervisor);

  EXPECT_EQ(supervisor.status()[0].state, shard::SlotState::kDead);
  EXPECT_EQ(supervisor.crashes(), 3u);  // budget 2 + the crash that broke it
  EXPECT_EQ(supervisor.permanently_down(), 1u);

  // A dead slot is never restarted again, even after its worker "recovers".
  launcher->start_ok = true;
  const int starts_before = launcher->starts;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  supervisor.tick();
  EXPECT_EQ(launcher->starts, starts_before);
  EXPECT_EQ(supervisor.status()[0].state, shard::SlotState::kDead);

  const json::Value doc = supervisor.to_json();
  EXPECT_EQ(doc.get_int("permanently_down", -1), 1);
  const json::Value& slot = doc.at("slots").as_array()[0];
  EXPECT_EQ(slot.at("state").as_string(), "dead");
  EXPECT_EQ(slot.at("id").as_string(), "doomed");

  supervisor.stop_all();  // must tolerate dead slots at teardown
}

TEST(Router, ReadyzReportsSupervisorAndDegradesOnDeadSlot) {
  Fleet fleet(1);
  ASSERT_EQ(fleet.router->handle_deploy(post(deploy_body("supervised_net"))).status, 200);

  shard::SupervisorConfig config = fast_supervisor_config();
  config.restart_budget = 1;
  shard::Supervisor supervisor(config);
  auto owned = std::make_unique<FakeLauncher>();
  FakeLauncher* launcher = owned.get();
  supervisor.add_slot("worker-9", std::move(owned));
  fleet.router->attach_supervisor(&supervisor);

  // Healthy supervisor: readyz carries the block, fleet stays ready.
  const auto healthy = fleet.router->handle_readyz({});
  EXPECT_EQ(healthy.status, 200);
  {
    const json::Value doc = json::parse(healthy.body);
    EXPECT_EQ(doc.at("status").as_string(), "ready");
    EXPECT_EQ(doc.at("supervisor").get_int("permanently_down", -1), 0);
  }

  // Burn the budget: the slot goes permanently down and readyz degrades even
  // though the (in-process) serving worker itself still answers.
  launcher->up = false;
  launcher->start_ok = false;
  tick_until_settled(supervisor);
  ASSERT_EQ(supervisor.permanently_down(), 1u);

  const auto degraded = fleet.router->handle_readyz({});
  EXPECT_EQ(degraded.status, 200);
  const json::Value doc = json::parse(degraded.body);
  EXPECT_EQ(doc.at("status").as_string(), "degraded");
  EXPECT_EQ(doc.at("supervisor").get_int("permanently_down", -1), 1);
  EXPECT_EQ(doc.at("supervisor").at("slots").as_array()[0].at("state").as_string(),
            "dead");
}

// ---------------------------------------------------------------------------
// Durable deploy journal wired into the router
// ---------------------------------------------------------------------------

TEST(Router, JournalRecoveryRestoresCatalogAfterRouterCrash) {
  const std::string dir = util::make_temp_dir("cnn2fpga_shard_journal");
  const std::string path = dir + "/deploys.journal";

  std::vector<std::unique_ptr<InProcWorker>> workers;
  for (int i = 0; i < 2; ++i) workers.push_back(std::make_unique<InProcWorker>());
  const auto make_router = [&]() {
    shard::RouterConfig config;
    config.replication = 2;
    config.probe_interval_ms = 0;
    config.worker.client.connect_timeout_ms = 500;
    config.worker.client.read_timeout_ms = 10000;
    config.worker.down_after_failures = 2;
    config.journal_path = path;
    auto router = std::make_unique<shard::Router>(config);
    for (std::size_t i = 0; i < workers.size(); ++i) {
      router->add_worker(util::format("worker-%zu", i), "127.0.0.1", workers[i]->port);
    }
    return router;
  };

  auto router = make_router();
  std::vector<std::string> ids;
  for (int d = 0; d < 3; ++d) {
    const auto deployed = router->handle_deploy(
        post(deploy_body(util::format("journal_net_%d", d), 7 + d)));
    ASSERT_EQ(deployed.status, 200) << deployed.body;
    ids.push_back(json::parse(deployed.body).at("design_id").as_string());
  }
  ASSERT_NE(router->journal(), nullptr);
  EXPECT_EQ(router->journal()->records(), 3u);

  // An identical redeploy is known history: acked (cache hit) but NOT
  // journaled again, so a hot design cannot grow the log unboundedly.
  const auto again = router->handle_deploy(post(deploy_body("journal_net_0", 7)));
  ASSERT_EQ(again.status, 200);
  EXPECT_TRUE(json::parse(again.body).at("cache_hit").as_bool());
  EXPECT_EQ(router->journal()->records(), 3u);

  const auto before = router->handle_predict(post(predict_body(ids[0])));
  ASSERT_EQ(before.status, 200);
  const json::Value expected = json::parse(before.body);

  // Total fleet loss: the router dies (releasing the journal) and every
  // worker restarts empty. The journal is the only surviving state.
  router.reset();
  for (auto& worker : workers) {
    worker->kill();
    worker->start();
  }

  router = make_router();
  EXPECT_EQ(router->recover(), 3u);
  EXPECT_EQ(router->journal()->truncated_records(), 0u);

  // Every pre-crash design answers again (recover seeds the catalog; the
  // predict path's redeploy-on-404 repair refills the empty workers).
  for (const std::string& id : ids) {
    const auto response = router->handle_predict(post(predict_body(id)));
    EXPECT_EQ(response.status, 200) << id << ": " << response.body;
  }

  // Bit-exact across the crash: same design, same image, same logits.
  const auto after = router->handle_predict(post(predict_body(ids[0])));
  ASSERT_EQ(after.status, 200);
  const json::Value actual = json::parse(after.body);
  const json::Array& expected_logits = expected.at("logits").as_array();
  const json::Array& actual_logits = actual.at("logits").as_array();
  ASSERT_EQ(actual_logits.size(), expected_logits.size());
  for (std::size_t i = 0; i < expected_logits.size(); ++i) {
    EXPECT_EQ(actual_logits[i].as_double(), expected_logits[i].as_double()) << i;
  }

  // The journal is observable in /api/v1/metrics, including the flat
  // truncation gate the chaos drill reads.
  const auto metrics = router->handle_metrics({});
  ASSERT_EQ(metrics.status, 200);
  const json::Value doc = json::parse(metrics.body);
  EXPECT_EQ(doc.at("router").at("journal").get_int("records", -1), 3);
  EXPECT_EQ(doc.at("router").get_int("journal_truncated_records", -1), 0);
  EXPECT_EQ(doc.at("router").get_int("journal_recovered", -1), 3);
}

// ---------------------------------------------------------------------------
// Transport-level chaos: client.connect / client.send / client.recv
// ---------------------------------------------------------------------------

TEST(HttpClient, TransportFaultSitesTearConnectSendAndRecv) {
  web::HttpServer server;
  server.route("GET", "/ping", [](const web::HttpRequest&) {
    web::HttpResponse response;
    response.body = "{\"pong\":true}";
    return response;
  });
  const int port = server.start();

  FaultInjector faults;
  web::ClientConfig config;
  config.keep_alive = true;
  config.connect_timeout_ms = 500;
  config.faults = &faults;
  web::HttpClient client("127.0.0.1", port, config);

  // Refused connect: fails before a socket exists, and there is no pooled
  // connection to fall back to.
  faults.arm("client.connect", {FaultKind::kError, 1.0, 1, 0, 0});
  EXPECT_FALSE(client.request("GET", "/ping").has_value());
  EXPECT_EQ(faults.fired("client.connect"), 1u);
  ASSERT_TRUE(client.request("GET", "/ping").has_value());  // budget spent

  // Connect stall: sleeps the armed delay, then fails (a SYN black hole).
  client.close();
  faults.arm("client.connect", {FaultKind::kLatency, 1.0, 1, 20000, 0});
  const auto stall_start = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.request("GET", "/ping").has_value());
  const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - stall_start);
  EXPECT_GE(stalled.count(), 20);
  ASSERT_TRUE(client.request("GET", "/ping").has_value());

  // Torn write: budget 2 so BOTH the pooled attempt and the silent fresh-
  // socket retry tear after 5 bytes — the request must fail outright.
  faults.arm("client.send", {FaultKind::kError, 1.0, 2, 0, 5});
  EXPECT_FALSE(client.request("GET", "/ping").has_value());
  EXPECT_EQ(faults.fired("client.send"), 2u);
  ASSERT_TRUE(client.request("GET", "/ping").has_value());

  // Mid-response reset with budget 1: the pooled attempt dies after the
  // request went out whole, the keep-alive retry answers. One fire, 200.
  faults.arm("client.recv", {FaultKind::kError, 1.0, 1, 0, 0});
  const auto retried = client.request("GET", "/ping");
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(retried->status, 200);
  EXPECT_EQ(faults.fired("client.recv"), 1u);
  server.stop();
}

TEST(Router, TransportFaultsDemoteWorkersAndHealAfterClear) {
  Fleet fleet(2);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("chaos_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();
  ASSERT_EQ(fleet.router->handle_predict(post(predict_body(design_id))).status, 200);

  // Unlimited recv resets: every transport attempt (including keep-alive
  // retries) dies, so each predict marks one failure per worker. With
  // down_after_failures=2, two predicts empty the ring.
  fleet.router->faults().arm("client.recv", {FaultKind::kError, 1.0, 0, 0, 0});
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(fleet.router->handle_predict(post(predict_body(design_id))).status, 500) << i;
  }
  EXPECT_TRUE(fleet.router->ring_workers().empty());
  EXPECT_GT(fleet.router->faults().fired("client.recv"), 0u);

  // Clearing the chaos and probing restores the fleet: the workers were
  // healthy all along, only the transport was poisoned.
  fleet.router->faults().clear();
  fleet.router->probe_now();
  EXPECT_EQ(fleet.router->ring_workers().size(), 2u);
  EXPECT_EQ(fleet.router->handle_predict(post(predict_body(design_id))).status, 200);
}

TEST(FaultInjector, ConfigureParsesBytesAndToJsonExportsTheSpec) {
  FaultInjector faults;
  std::string error;
  ASSERT_TRUE(faults.configure("client.send=error:1.0:2:5,client.recv=latency:750:1",
                               &error))
      << error;

  const json::Value doc = faults.to_json();
  const json::Value& send = doc.at("client.send").as_array()[0];
  EXPECT_EQ(send.at("kind").as_string(), "error");
  EXPECT_EQ(send.get_int("count", -1), 2);
  EXPECT_EQ(send.get_int("bytes", -1), 5);
  EXPECT_EQ(send.get_int("hits", -1), 0);
  EXPECT_EQ(send.get_int("fires", -1), 0);
  const json::Value& recv = doc.at("client.recv").as_array()[0];
  EXPECT_EQ(recv.at("kind").as_string(), "latency");
  EXPECT_EQ(recv.get_int("latency_us", -1), 750);
  EXPECT_EQ(recv.get_int("count", -1), 1);

  // `bytes` only belongs to error faults, and nothing may follow it.
  EXPECT_FALSE(faults.configure("client.send=error:1.0:2:5:9", &error));
  EXPECT_FALSE(faults.configure("client.recv=latency:750:1:5", &error));
}

// ---------------------------------------------------------------------------
// Deadline-aware failover
// ---------------------------------------------------------------------------

TEST(Router, DeadlineExhaustedMidFailoverAnswers504Locally) {
  Fleet fleet(2);
  const auto deployed = fleet.router->handle_deploy(post(deploy_body("deadline_net")));
  ASSERT_EQ(deployed.status, 200);
  const std::string design_id = json::parse(deployed.body).at("design_id").as_string();

  // A generous budget passes straight through.
  web::HttpRequest relaxed = post(predict_body(design_id));
  relaxed.headers["x-deadline-ms"] = "10000";
  EXPECT_EQ(fleet.router->handle_predict(relaxed).status, 200);
  EXPECT_EQ(fleet.router->deadline_rejects(), 0u);

  // Burn the whole budget inside attempt #1: both transport tries against the
  // first candidate stall 30 ms each against a 10 ms deadline. The router
  // must reject the second candidate LOCALLY — 504, no wasted attempt.
  fleet.router->faults().arm("client.recv", {FaultKind::kLatency, 1.0, 2, 30000, 0});
  web::HttpRequest rushed = post(predict_body(design_id));
  rushed.headers["x-deadline-ms"] = "10";
  const auto response = fleet.router->handle_predict(rushed);
  EXPECT_EQ(response.status, 504) << response.body;
  EXPECT_EQ(json::parse(response.body).at("error").at("code").as_string(),
            "deadline_exceeded");
  EXPECT_EQ(response.headers.at("X-Shard-Attempts"), "1");
  EXPECT_EQ(fleet.router->deadline_rejects(), 1u);

  // Chaos off: the same rushed request is fast enough again.
  fleet.router->faults().clear();
  fleet.router->probe_now();
  EXPECT_EQ(fleet.router->handle_predict(rushed).status, 200);
}

// ---------------------------------------------------------------------------
// Port reservation across restarts
// ---------------------------------------------------------------------------

TEST(ReservedPort, HoldsThePortAcrossServerRestarts) {
  auto reserved = shard::ReservedPort::reserve();
  ASSERT_TRUE(reserved.valid());
  ASSERT_GT(reserved.port(), 0);

  // A reuse_port listener binds the reserved port while the reservation is
  // still held — this is exactly how a supervised worker starts.
  web::ServerConfig config;
  config.reuse_port = true;
  web::HttpServer server(config);
  ASSERT_EQ(server.start(reserved.port()), reserved.port());
  server.stop();

  // The crash/restart window: the listener is gone but the reservation keeps
  // the port, so the restarted worker binds the SAME port again.
  web::HttpServer second(config);
  ASSERT_EQ(second.start(reserved.port()), reserved.port());
  second.stop();
}

}  // namespace
