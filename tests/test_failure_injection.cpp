// Failure-injection tests: corrupted transport, degenerate designs and
// resource exhaustion must produce diagnostics and leave the system usable —
// never crashes or silent wrong answers.
#include <gtest/gtest.h>

#include <cmath>

#include "axi/block_design.hpp"
#include "core/dse.hpp"
#include "core/framework.hpp"
#include "data/synth_usps.hpp"
#include "hls/schedule.hpp"
#include "nn/trainer.hpp"

using namespace cnn2fpga;
using nn::Shape;
using nn::Tensor;

namespace {
nn::Network tiny_net() {
  nn::Network net(Shape{1, 6, 6}, "fi");
  net.add_conv(2, 3, 3);
  net.add_linear(3);
  net.add_logsoftmax();
  util::Rng rng(1);
  net.init_weights(rng);
  return net;
}
}  // namespace

// ---------------------------------------------------------------- fabric

TEST(FailureInjection, CorruptedPacketThenRecovery) {
  nn::Network net = tiny_net();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());

  Tensor image(Shape{1, 6, 6});
  util::Rng rng(2);
  image.fill_uniform(rng, 0.0f, 1.0f);

  // A good classification first.
  ASSERT_TRUE(bd.classify(image).ok);

  // Inject a short image: wrong-rank tensor has fewer elements than the IP
  // expects, so the stream underflows and the run fails cleanly.
  Tensor short_image(Shape{1, 2, 2});
  const axi::ClassifyResult bad = bd.classify(short_image);
  EXPECT_FALSE(bad.ok);

  // Reset (the Processor System Reset of Fig. 5) and recover.
  bd.reset();
  const axi::ClassifyResult good = bd.classify(image);
  ASSERT_TRUE(good.ok);
  EXPECT_EQ(good.predicted, net.predict(image));
}

TEST(FailureInjection, BatchCountsFailuresWithoutAborting) {
  nn::Network net = tiny_net();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());
  util::Rng rng(3);

  std::vector<Tensor> images;
  for (int i = 0; i < 3; ++i) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    images.push_back(image);
  }
  images.insert(images.begin() + 1, Tensor(Shape{1, 2, 2}));  // poison pill

  // The bad image leaves a stalled partial packet in the stream; each
  // classify() call in the batch resets nothing itself, so the design's
  // behaviour must still be: one failure counted, and after reset the
  // remaining traffic is clean.
  const axi::BatchResult result = bd.classify_batch(images);
  EXPECT_EQ(result.images, 4u);
  EXPECT_GE(result.failures, 1u);
  EXPECT_EQ(result.predictions.size() + result.failures, 4u);
}

TEST(FailureInjection, StreamedDesignDoubleUploadIsSafe) {
  core::NetworkDescriptor d;
  d.name = "fi_streamed";
  d.input_channels = 1;
  d.input_height = 6;
  d.input_width = 6;
  d.streamed_weights = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 3;
  d.layers = {conv, lin};

  nn::Network net = d.build_network();
  util::Rng rng(4);
  net.init_weights(rng);
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard(),
                      nn::NumericFormat::float32(), true);
  EXPECT_TRUE(bd.upload_weights());
  EXPECT_TRUE(bd.upload_weights());  // idempotent
  Tensor image(Shape{1, 6, 6});
  image.fill_uniform(rng, 0.0f, 1.0f);
  EXPECT_TRUE(bd.classify(image).ok);
}

// ---------------------------------------------------------------- HLS edge

TEST(FailureInjection, DegenerateBlocksScheduleSanely) {
  hls::TaskBlock empty;
  empty.name = "empty";
  // No loops at all: only the region overhead remains.
  EXPECT_EQ(hls::block_latency(empty), hls::schedule_constants().region_overhead);

  hls::TaskBlock zero_trip;
  zero_trip.name = "zero";
  zero_trip.loops.trips = {0, 5};
  zero_trip.body = {{hls::OpKind::kFAdd, 1}};
  EXPECT_EQ(hls::block_latency(zero_trip), hls::schedule_constants().region_overhead);

  hls::HlsDesign design;
  EXPECT_EQ(hls::design_latency(design), 0u);
  EXPECT_EQ(hls::batch_latency(design, 100), 0u);
}

TEST(FailureInjection, MassivelyOversizedDesignReportsDontLie) {
  // A network far beyond any catalog device: generation must succeed, fits()
  // must be false on every board, and the DSE must find nothing.
  core::NetworkDescriptor d;
  d.name = "monster";
  d.input_channels = 3;
  d.input_height = 32;
  d.input_width = 32;
  d.optimize = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 8;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 160;  // 8*14*14 -> 160: ~251k weights, > Zybo's BRAM
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  d.layers = {conv, lin, lin2};

  // Zybo and Zedboard must both refuse; even a Virtex-7 may, but if it fits
  // there the DSE recommendation must be the Virtex-7.
  d.board = "zybo";
  const core::GeneratedDesign on_zybo = core::Framework::generate_with_random_weights(d, 1);
  EXPECT_FALSE(on_zybo.hls_report.fits());
  EXPECT_FALSE(on_zybo.warnings.empty());

  core::DseOptions options;
  options.boards = {"zybo", "zedboard"};
  const core::DseResult result = core::explore_design_space(d, options);
  for (const core::DsePoint& p : result.points) {
    if (!p.precision.is_fixed) {
      EXPECT_FALSE(p.fits) << p.label();
    }
  }
}

TEST(FailureInjection, UtilizationNeverSilentlyWraps) {
  // Astronomic resource counts stay finite and compare correctly.
  hls::ResourceUsage usage;
  usage.dsp = 1'000'000;
  usage.bram18 = 1'000'000;
  const hls::Utilization u = hls::utilization(usage, hls::zedboard());
  EXPECT_GT(u.dsp, 1000.0);
  EXPECT_FALSE(u.fits());
  EXPECT_EQ(u.worst(), std::max(u.dsp, u.bram));
}

// ---------------------------------------------------------------- trainer

TEST(FailureInjection, GradientClippingContainsExplosiveRates) {
  // At a learning rate that diverges without clipping (see the Test-3
  // calibration in DESIGN.md), clipping keeps the loss finite.
  nn::Network net = nn::make_test3_network();
  util::Rng rng(5);
  net.init_weights(rng);

  data::UspsConfig config;
  config.samples_per_class = 6;
  const auto train_set = cnn2fpga::data::generate_usps(config).samples;

  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.learning_rate = 0.01f;  // diverges unclipped
  tc.clip_grad_norm = 1.0f;
  const nn::TrainResult result = nn::SgdTrainer(tc).train(net, train_set, {});
  for (float loss : result.epoch_loss) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_LT(loss, 100.0f);
  }
}
