// Failure-injection tests: corrupted transport, degenerate designs and
// resource exhaustion must produce diagnostics and leave the system usable —
// never crashes or silent wrong answers. The serve-layer section drives the
// overload machinery (breaker, shedding, deadlines) through FaultInjector,
// so recovery is proven against actually injected faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "axi/block_design.hpp"
#include "core/dse.hpp"
#include "core/framework.hpp"
#include "data/synth_usps.hpp"
#include "hls/schedule.hpp"
#include "nn/trainer.hpp"
#include "serve/server.hpp"

using namespace cnn2fpga;
using nn::Shape;
using nn::Tensor;

namespace {
nn::Network tiny_net() {
  nn::Network net(Shape{1, 6, 6}, "fi");
  net.add_conv(2, 3, 3);
  net.add_linear(3);
  net.add_logsoftmax();
  util::Rng rng(1);
  net.init_weights(rng);
  return net;
}

core::NetworkDescriptor serve_descriptor(const std::string& name) {
  core::NetworkDescriptor d;
  d.name = name;
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 6;
  d.input_width = 6;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 3;
  d.layers = {conv, lin};
  return d;
}

Tensor serve_image(std::uint64_t seed, const Shape& shape) {
  Tensor image{shape};
  util::Rng rng(seed);
  image.fill_uniform(rng, -1.0f, 1.0f);
  return image;
}
}  // namespace

// ---------------------------------------------------------------- fabric

TEST(FailureInjection, CorruptedPacketThenRecovery) {
  nn::Network net = tiny_net();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());

  Tensor image(Shape{1, 6, 6});
  util::Rng rng(2);
  image.fill_uniform(rng, 0.0f, 1.0f);

  // A good classification first.
  ASSERT_TRUE(bd.classify(image).ok);

  // Inject a short image: wrong-rank tensor has fewer elements than the IP
  // expects, so the stream underflows and the run fails cleanly.
  Tensor short_image(Shape{1, 2, 2});
  const axi::ClassifyResult bad = bd.classify(short_image);
  EXPECT_FALSE(bad.ok);

  // Reset (the Processor System Reset of Fig. 5) and recover.
  bd.reset();
  const axi::ClassifyResult good = bd.classify(image);
  ASSERT_TRUE(good.ok);
  EXPECT_EQ(good.predicted, net.predict(image));
}

TEST(FailureInjection, BatchCountsFailuresWithoutAborting) {
  nn::Network net = tiny_net();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard());
  util::Rng rng(3);

  std::vector<Tensor> images;
  for (int i = 0; i < 3; ++i) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    images.push_back(image);
  }
  images.insert(images.begin() + 1, Tensor(Shape{1, 2, 2}));  // poison pill

  // The bad image leaves a stalled partial packet in the stream; each
  // classify() call in the batch resets nothing itself, so the design's
  // behaviour must still be: one failure counted, and after reset the
  // remaining traffic is clean.
  const axi::BatchResult result = bd.classify_batch(images);
  EXPECT_EQ(result.images, 4u);
  EXPECT_GE(result.failures, 1u);
  EXPECT_EQ(result.predictions.size() + result.failures, 4u);
}

TEST(FailureInjection, StreamedDesignDoubleUploadIsSafe) {
  core::NetworkDescriptor d;
  d.name = "fi_streamed";
  d.input_channels = 1;
  d.input_height = 6;
  d.input_width = 6;
  d.streamed_weights = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 3;
  d.layers = {conv, lin};

  nn::Network net = d.build_network();
  util::Rng rng(4);
  net.init_weights(rng);
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard(),
                      nn::NumericFormat::float32(), true);
  EXPECT_TRUE(bd.upload_weights());
  EXPECT_TRUE(bd.upload_weights());  // idempotent
  Tensor image(Shape{1, 6, 6});
  image.fill_uniform(rng, 0.0f, 1.0f);
  EXPECT_TRUE(bd.classify(image).ok);
}

// ---------------------------------------------------------------- HLS edge

TEST(FailureInjection, DegenerateBlocksScheduleSanely) {
  hls::TaskBlock empty;
  empty.name = "empty";
  // No loops at all: only the region overhead remains.
  EXPECT_EQ(hls::block_latency(empty), hls::schedule_constants().region_overhead);

  hls::TaskBlock zero_trip;
  zero_trip.name = "zero";
  zero_trip.loops.trips = {0, 5};
  zero_trip.body = {{hls::OpKind::kFAdd, 1}};
  EXPECT_EQ(hls::block_latency(zero_trip), hls::schedule_constants().region_overhead);

  hls::HlsDesign design;
  EXPECT_EQ(hls::design_latency(design), 0u);
  EXPECT_EQ(hls::batch_latency(design, 100), 0u);
}

TEST(FailureInjection, MassivelyOversizedDesignReportsDontLie) {
  // A network far beyond any catalog device: generation must succeed, fits()
  // must be false on every board, and the DSE must find nothing.
  core::NetworkDescriptor d;
  d.name = "monster";
  d.input_channels = 3;
  d.input_height = 32;
  d.input_width = 32;
  d.optimize = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 8;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 160;  // 8*14*14 -> 160: ~251k weights, > Zybo's BRAM
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  d.layers = {conv, lin, lin2};

  // Zybo and Zedboard must both refuse; even a Virtex-7 may, but if it fits
  // there the DSE recommendation must be the Virtex-7.
  d.board = "zybo";
  const core::GeneratedDesign on_zybo = core::Framework::generate_with_random_weights(d, 1);
  EXPECT_FALSE(on_zybo.hls_report.fits());
  EXPECT_FALSE(on_zybo.warnings.empty());

  core::DseOptions options;
  options.boards = {"zybo", "zedboard"};
  const core::DseResult result = core::explore_design_space(d, options);
  for (const core::DsePoint& p : result.points) {
    if (!p.precision.is_fixed) {
      EXPECT_FALSE(p.fits) << p.label();
    }
  }
}

TEST(FailureInjection, UtilizationNeverSilentlyWraps) {
  // Astronomic resource counts stay finite and compare correctly.
  hls::ResourceUsage usage;
  usage.dsp = 1'000'000;
  usage.bram18 = 1'000'000;
  const hls::Utilization u = hls::utilization(usage, hls::zedboard());
  EXPECT_GT(u.dsp, 1000.0);
  EXPECT_FALSE(u.fits());
  EXPECT_EQ(u.worst(), std::max(u.dsp, u.bram));
}

// ---------------------------------------------------------------- trainer

TEST(FailureInjection, GradientClippingContainsExplosiveRates) {
  // At a learning rate that diverges without clipping (see the Test-3
  // calibration in DESIGN.md), clipping keeps the loss finite.
  nn::Network net = nn::make_test3_network();
  util::Rng rng(5);
  net.init_weights(rng);

  data::UspsConfig config;
  config.samples_per_class = 6;
  const auto train_set = cnn2fpga::data::generate_usps(config).samples;

  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.learning_rate = 0.01f;  // diverges unclipped
  tc.clip_grad_norm = 1.0f;
  const nn::TrainResult result = nn::SgdTrainer(tc).train(net, train_set, {});
  for (float loss : result.epoch_loss) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_LT(loss, 100.0f);
  }
}

// ------------------------------------------------------------ serve layer

TEST(FailureInjection, FaultInjectorIsDeterministicAndParsesSpecs) {
  // Same seed, same site, same hit sequence => identical firing decisions.
  const auto draw_sequence = [](std::uint64_t seed) {
    serve::FaultInjector injector;
    injector.seed(seed);
    injector.arm("site.x", {serve::FaultKind::kError, /*rate=*/0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(injector.should_fail("site.x"));
    return fired;
  };
  EXPECT_EQ(draw_sequence(7), draw_sequence(7));
  EXPECT_NE(draw_sequence(7), draw_sequence(8));

  serve::FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.should_fail("anything"));  // disarmed: pure no-op

  std::string error;
  EXPECT_TRUE(injector.configure(
      "executor.batch=error:1.0:3, batcher.enqueue=latency:500", &error))
      << error;
  EXPECT_TRUE(injector.enabled());
  // Budgeted fault: fires exactly 3 times, then heals.
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += injector.should_fail("executor.batch") ? 1 : 0;
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(injector.fired("executor.batch"), 3u);

  // Malformed specs are rejected atomically: nothing half-arms.
  serve::FaultInjector strict;
  EXPECT_FALSE(strict.configure("a=error:1.0,b=latency", &error));
  EXPECT_FALSE(strict.enabled());
  EXPECT_FALSE(strict.configure("noequals", &error));
  EXPECT_FALSE(strict.configure("a=error:2.0", &error));  // rate > 1
  EXPECT_FALSE(strict.configure("a=explode", &error));
}

TEST(FailureInjection, BreakerTripsQuarantinesAndRecoversViaProbe) {
  serve::ServingConfig config;
  config.worker_threads = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_ms = 100;
  // Single engine: with the accelerator enabled the failing batches would
  // fail over to the other backend's breaker instead of quarantining the
  // design outright (covered by BackendDispatchFaultTripsBackendScopedBreaker).
  config.backends.accelerator = false;
  serve::ServingRuntime runtime(config);

  const auto victim =
      runtime.registry().deploy_random(serve_descriptor("fi_victim"), 1).design;
  const auto healthy =
      runtime.registry().deploy_random(serve_descriptor("fi_healthy"), 2).design;
  const Shape shape = victim->net.input_shape();

  // Fail the next 3 batches, then heal — one arm() call.
  runtime.faults().arm("executor.batch",
                       {serve::FaultKind::kError, /*rate=*/1.0, /*count=*/3});
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(runtime.batcher().predict(victim, serve_image(i, shape)).get(),
                 serve::InjectedFault);
  }
  EXPECT_EQ(victim->breaker.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(runtime.metrics().breaker_opens.value(), 1u);

  // Quarantined: rejected without touching the executor.
  EXPECT_THROW(runtime.batcher().predict(victim, serve_image(9, shape)).get(),
               serve::DesignUnavailableError);
  EXPECT_GE(runtime.metrics().breaker_rejects.value(), 1u);
  // The healthy design keeps serving while the victim is open.
  EXPECT_NO_THROW(runtime.batcher().predict(healthy, serve_image(3, shape)).get());
  EXPECT_EQ(healthy->breaker.state(), serve::BreakerState::kClosed);

  // After the cooldown the next request is the half-open probe; the fault
  // budget is spent, so the probe succeeds and the breaker closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_NO_THROW(runtime.batcher().predict(victim, serve_image(4, shape)).get());
  EXPECT_EQ(victim->breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(victim->breaker.opens(), 1u);
  EXPECT_NO_THROW(runtime.batcher().predict(victim, serve_image(5, shape)).get());
  runtime.shutdown();
}

TEST(FailureInjection, ShedsUnderInjectedLatencyThenRecovers) {
  serve::ServingConfig config;
  config.worker_threads = 1;
  config.batcher.max_batch = 64;
  config.batcher.max_wait_us = 60'000'000;
  config.batcher.max_inflight_per_design = 1;
  config.batcher.max_queue_depth = 2;
  // Single engine: the scenario needs the queue to build behind one busy
  // slot; with the accelerator enabled the placer would drain it by spilling.
  config.backends.accelerator = false;
  serve::ServingRuntime runtime(config);
  const auto design =
      runtime.registry().deploy_random(serve_descriptor("fi_slow"), 1).design;
  const Shape shape = design->net.input_shape();

  // One slow batch: the worker stalls 100 ms in the injected delay while
  // later requests pile into the lane behind the occupied inflight slot.
  runtime.faults().arm("executor.batch",
                       {serve::FaultKind::kLatency, /*rate=*/1.0, /*count=*/1,
                        /*latency_us=*/100'000});
  auto slow = runtime.batcher().predict(design, serve_image(0, shape));
  // Wait until the slow batch is actually executing (it left the waiting set).
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (runtime.batcher().waiting() != 0 && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(runtime.batcher().waiting(), 0u);

  auto queued_a = runtime.batcher().predict(design, serve_image(1, shape));
  auto queued_b = runtime.batcher().predict(design, serve_image(2, shape));
  EXPECT_THROW(runtime.batcher().predict(design, serve_image(3, shape)),
               serve::OverloadedError);
  EXPECT_EQ(runtime.metrics().shed.value(), 1u);
  EXPECT_LE(runtime.metrics().queue_depth.peak(), 2u);

  EXPECT_NO_THROW(slow.get());
  EXPECT_NO_THROW(queued_a.get());
  EXPECT_NO_THROW(queued_b.get());
  // Recovered: admission is open again and the queue is drained.
  EXPECT_NO_THROW(runtime.batcher().predict(design, serve_image(4, shape)).get());
  EXPECT_EQ(runtime.batcher().waiting(), 0u);
  runtime.shutdown();
}

TEST(FailureInjection, BackendDispatchFaultTripsBackendScopedBreaker) {
  serve::ServingConfig config;
  config.worker_threads = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 500;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_ms = 100;
  // Pin placement to the fabric so every dispatch fault lands on — and every
  // recovery probe exercises — the accelerator's failure domain.
  config.backends.placer = serve::PlacerPolicy::kAcceleratorOnly;
  config.backends.accel_sleep_for_model = false;
  serve::ServingRuntime runtime(config);
  const auto design =
      runtime.registry().deploy_random(serve_descriptor("fi_backend"), 1).design;
  const Shape shape = design->net.input_shape();

  // Fail the next 3 hand-offs to the accelerator's driver thread.
  runtime.faults().arm("backend.dispatch",
                       {serve::FaultKind::kError, /*rate=*/1.0, /*count=*/3});
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(runtime.batcher().predict(design, serve_image(i, shape)).get(),
                 serve::InjectedFault);
  }
  // The failure domain is (design, backend): only the accelerator's breaker
  // opened. The CPU engine's breaker — which is what the design's legacy
  // `breaker` alias reads — never saw a failure.
  EXPECT_EQ(design->backend_state(serve::BackendId::kAccelerator).breaker.state(),
            serve::BreakerState::kOpen);
  EXPECT_EQ(design->breaker.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(runtime.metrics()
                .backend[serve::backend_index(serve::BackendId::kAccelerator)]
                .errors.value(),
            3u);

  // Accelerator-only placement with the accelerator quarantined: unavailable.
  EXPECT_THROW(runtime.batcher().predict(design, serve_image(9, shape)).get(),
               serve::DesignUnavailableError);

  // After the cooldown the half-open probe dispatches (the fault budget is
  // spent), succeeds, and closes the accelerator breaker again.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_NO_THROW(runtime.batcher().predict(design, serve_image(4, shape)).get());
  EXPECT_EQ(design->backend_state(serve::BackendId::kAccelerator).breaker.state(),
            serve::BreakerState::kClosed);
  runtime.shutdown();
}

TEST(FailureInjection, InjectedLatencyExpiresDeadlinedRequest) {
  serve::ServingConfig config;
  config.worker_threads = 2;
  serve::ServingRuntime runtime(config);
  const auto design =
      runtime.registry().deploy_random(serve_descriptor("fi_exp"), 1).design;
  const Shape shape = design->net.input_shape();

  runtime.faults().arm("executor.batch",
                       {serve::FaultKind::kLatency, /*rate=*/1.0, /*count=*/1,
                        /*latency_us=*/50'000});
  auto doomed = runtime.batcher().predict(
      design, serve_image(0, shape),
      serve::Batcher::Clock::now() + std::chrono::milliseconds(10));
  EXPECT_THROW(doomed.get(), serve::DeadlineExceededError);
  EXPECT_EQ(runtime.metrics().expired.value(), 1u);
  EXPECT_EQ(design->served.load(), 0u);
  // The drop is not an execution failure: the breaker records no verdict.
  EXPECT_EQ(design->breaker.state(), serve::BreakerState::kClosed);
  EXPECT_NO_THROW(runtime.batcher().predict(design, serve_image(1, shape)).get());
  runtime.shutdown();
}

TEST(FailureInjection, AllocFaultsSurfaceCleanlyAndHeal) {
  serve::ServingRuntime runtime;
  runtime.faults().arm("registry.deploy",
                       {serve::FaultKind::kAlloc, /*rate=*/1.0, /*count=*/1});
  const core::NetworkDescriptor descriptor = serve_descriptor("fi_alloc");
  EXPECT_THROW(runtime.registry().deploy_random(descriptor, 1), std::bad_alloc);
  EXPECT_EQ(runtime.registry().size(), 0u);  // no half-built state
  // Budget spent: the same deploy now succeeds.
  const auto design = runtime.registry().deploy_random(descriptor, 1).design;
  ASSERT_NE(design, nullptr);
  EXPECT_EQ(runtime.registry().size(), 1u);

  runtime.faults().arm("batcher.enqueue",
                       {serve::FaultKind::kAlloc, /*rate=*/1.0, /*count=*/1});
  const Shape shape = design->net.input_shape();
  EXPECT_THROW(runtime.batcher().predict(design, serve_image(0, shape)),
               std::bad_alloc);
  EXPECT_NO_THROW(runtime.batcher().predict(design, serve_image(1, shape)).get());
  runtime.shutdown();
}

TEST(FailureInjection, OverloadHammerKeepsQueueBoundedAndDeadlockFree) {
  // 8 threads flood a capped queue far faster than 2 workers drain it. Every
  // request must resolve to exactly one of {served, shed, expired}, the
  // admission gauge must never exceed the cap, and the runtime must come out
  // the other side serving normally.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 40;
  constexpr std::size_t kCap = 16;

  serve::ServingConfig config;
  config.worker_threads = 2;
  config.batcher.max_batch = 8;
  config.batcher.max_wait_us = 200;
  config.batcher.max_queue_depth = kCap;
  serve::ServingRuntime runtime(config);
  const auto design =
      runtime.registry().deploy_random(serve_descriptor("fi_hammer"), 1).design;
  const Shape shape = design->net.input_shape();

  std::atomic<std::size_t> ok{0}, shed{0}, expired{0}, unexpected{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        try {
          runtime.batcher()
              .predict(design, serve_image(t * kPerThread + i, shape),
                       serve::Batcher::Clock::now() + std::chrono::seconds(5))
              .get();
          ok.fetch_add(1);
        } catch (const serve::OverloadedError&) {
          shed.fetch_add(1);
        } catch (const serve::DeadlineExceededError&) {
          expired.fetch_add(1);
        } catch (...) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(ok.load() + shed.load() + expired.load(), kThreads * kPerThread);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_LE(runtime.metrics().queue_depth.peak(), kCap);
  EXPECT_EQ(runtime.metrics().shed.value(), shed.load());

  // Post-overload: the queue drained and a fresh request serves normally.
  EXPECT_NO_THROW(runtime.batcher().predict(design, serve_image(0, shape)).get());
  EXPECT_EQ(runtime.batcher().waiting(), 0u);
  EXPECT_EQ(design->breaker.state(), serve::BreakerState::kClosed);
  runtime.shutdown();
}
