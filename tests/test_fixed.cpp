// Tests for the fixed-point extension: quantization helpers, the quantized
// reference model, descriptor plumbing, HLS resource effects, and the
// compile-and-run bit-exactness of the generator's fixed mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "axi/block_design.hpp"
#include "core/framework.hpp"
#include "data/synth_usps.hpp"
#include "nn/fixed_inference.hpp"
#include "nn/trainer.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga;
using nn::FixedPointFormat;
using nn::NumericFormat;
using nn::Shape;
using nn::Tensor;

// ---------------------------------------------------------------- formats

TEST(FixedFormat, BasicProperties) {
  const FixedPointFormat q88{16, 8};
  EXPECT_EQ(q88.name(), "Q8.8");
  EXPECT_EQ(q88.scale(), 256);
  EXPECT_EQ(q88.max_raw(), 32767);
  EXPECT_EQ(q88.min_raw(), -32768);
  EXPECT_DOUBLE_EQ(q88.resolution(), 1.0 / 256.0);
  EXPECT_NO_THROW(q88.validate());
}

TEST(FixedFormat, ValidationRejectsBadConfigs) {
  EXPECT_THROW((FixedPointFormat{1, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((FixedPointFormat{16, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((FixedPointFormat{16, 16}).validate(), std::invalid_argument);
  EXPECT_THROW((FixedPointFormat{40, 8}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((FixedPointFormat{8, 4}).validate());
  EXPECT_NO_THROW((FixedPointFormat{32, 16}).validate());
}

TEST(FixedQuantize, RoundTripWithinResolution) {
  const FixedPointFormat fmt{16, 8};
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float back = nn::fixed_dequantize(nn::fixed_quantize(v, fmt), fmt);
    EXPECT_NEAR(back, v, fmt.resolution() / 2.0 + 1e-6);
  }
}

TEST(FixedQuantize, Saturates) {
  const FixedPointFormat fmt{8, 4};  // range [-8, 7.9375]
  EXPECT_EQ(nn::fixed_quantize(100.0f, fmt), fmt.max_raw());
  EXPECT_EQ(nn::fixed_quantize(-100.0f, fmt), fmt.min_raw());
  EXPECT_EQ(nn::fixed_quantize(std::nanf(""), fmt), fmt.max_raw());  // defined behaviour
}

TEST(FixedQuantize, RenormalizeRoundsHalfUpAndSaturates) {
  const FixedPointFormat fmt{16, 8};
  // 2*frac-scaled accumulator of value 1.5 * 256 * 256.
  EXPECT_EQ(nn::fixed_renormalize(static_cast<std::int64_t>(1.5 * 256 * 256), fmt), 384);
  // Exactly +0.5 ULP rounds up.
  EXPECT_EQ(nn::fixed_renormalize(128, fmt), 1);
  EXPECT_EQ(nn::fixed_renormalize(127, fmt), 0);
  // Overflow saturates.
  EXPECT_EQ(nn::fixed_renormalize(std::int64_t{1} << 40, fmt), fmt.max_raw());
  EXPECT_EQ(nn::fixed_renormalize(-(std::int64_t{1} << 40), fmt), fmt.min_raw());
}

// --------------------------------------------------------------- inference

namespace {
nn::Network trained_tiny_net() {
  nn::Network net(Shape{1, 8, 8}, "fixed_test");
  net.add_conv(3, 3, 3);
  net.add_max_pool(2, 2);
  net.add_linear(4);
  net.add_logsoftmax();
  util::Rng rng(7);
  net.init_weights(rng);
  return net;
}
}  // namespace

TEST(FixedInference, HighPrecisionMatchesFloatClosely) {
  nn::Network net = trained_tiny_net();
  const FixedPointFormat fmt{32, 16};  // Q16.16: resolution 1.5e-5
  util::Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor image(Shape{1, 8, 8});
    image.fill_uniform(rng, 0.0f, 1.0f);
    const Tensor ref = net.forward(image);
    const nn::FixedForwardResult fixed = nn::forward_fixed(net, image, fmt);
    EXPECT_EQ(fixed.predicted, ref.argmax());
    EXPECT_LT(fixed.output_error, 0.01f);
  }
}

TEST(FixedInference, CoarseFormatsDegradeGracefully) {
  nn::Network net = trained_tiny_net();
  util::Rng rng(3);
  Tensor image(Shape{1, 8, 8});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const float err16 = nn::forward_fixed(net, image, {16, 8}).output_error;
  const float err32 = nn::forward_fixed(net, image, {32, 16}).output_error;
  EXPECT_LT(err32, err16);   // finer format, smaller error
  EXPECT_LT(err16, 0.5f);    // Q8.8 still usable
}

TEST(FixedInference, PredictionParityOnTrainedDigits) {
  // A trained Test-1 network quantized to Q8.8 keeps (nearly) its accuracy —
  // the fixed-point extension's whole point.
  data::UspsConfig config;
  config.samples_per_class = 10;
  const auto train_set = data::generate_usps(config).samples;
  config.seed = 99;
  const auto test_set = data::generate_usps(config).samples;

  nn::Network net = nn::make_test1_network();
  util::Rng rng(8);
  net.init_weights(rng);
  nn::TrainConfig tc;
  tc.epochs = 5;
  nn::SgdTrainer(tc).train(net, train_set, {});

  const float float_error = nn::SgdTrainer::evaluate_error(net, test_set);
  const float fixed_error = nn::evaluate_error_fixed(net, test_set, {16, 8});
  EXPECT_LT(fixed_error, float_error + 0.05f);
}

TEST(FixedInference, ReluAndMeanPoolAreExactInFixed) {
  nn::Network net(Shape{1, 6, 6}, "relu_mean");
  net.add_conv(2, 3, 3);
  net.add_activation(nn::ActKind::kReLU);
  net.add_mean_pool(2, 2);
  net.add_linear(3);
  net.add_logsoftmax();
  util::Rng rng(9);
  net.init_weights(rng);

  Tensor image(Shape{1, 6, 6});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const nn::FixedForwardResult r = nn::forward_fixed(net, image, {32, 16});
  EXPECT_EQ(r.predicted, net.predict(image));
}

TEST(FixedInference, ValidatesInput) {
  nn::Network net = trained_tiny_net();
  EXPECT_THROW(nn::forward_fixed(net, Tensor(Shape{1, 4, 4}), {16, 8}), std::invalid_argument);
  EXPECT_THROW(nn::forward_fixed(net, Tensor(Shape{1, 8, 8}), {16, 0}), std::invalid_argument);
}

// --------------------------------------------------------------- descriptor

TEST(FixedDescriptor, ParsesPrecisionForms) {
  const auto floating = core::NetworkDescriptor::from_json_text(R"({
    "precision": "float32",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})");
  EXPECT_FALSE(floating.precision.is_fixed);

  const auto fixed = core::NetworkDescriptor::from_json_text(R"({
    "precision": {"type": "fixed", "total_bits": 16, "frac_bits": 8},
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})");
  EXPECT_TRUE(fixed.precision.is_fixed);
  EXPECT_EQ(fixed.precision.fixed.total_bits, 16);
  EXPECT_EQ(fixed.precision.name(), "Q8.8");

  // Round-trips through to_json.
  const auto reparsed = core::NetworkDescriptor::from_json(fixed.to_json());
  EXPECT_EQ(reparsed.precision, fixed.precision);
}

TEST(FixedDescriptor, RejectsBadPrecision) {
  EXPECT_THROW(core::NetworkDescriptor::from_json_text(R"({
    "precision": "float64",
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               core::DescriptorError);
  EXPECT_THROW(core::NetworkDescriptor::from_json_text(R"({
    "precision": {"type": "fixed", "total_bits": 4, "frac_bits": 9},
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               core::DescriptorError);
  EXPECT_THROW(core::NetworkDescriptor::from_json_text(R"({
    "precision": 16,
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               core::DescriptorError);
}

// --------------------------------------------------------------- HLS effects

TEST(FixedHls, QuantizationCutsDspAndBram) {
  const nn::Network net = nn::make_test4_network();
  const hls::HlsReport float_report =
      hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
  const hls::HlsReport fixed_report = hls::estimate(
      net, hls::DirectiveSet::optimized(), hls::zedboard(), NumericFormat::fixed_point(16, 8));
  EXPECT_LT(fixed_report.usage.dsp, float_report.usage.dsp);
  EXPECT_LT(fixed_report.usage.bram18, float_report.usage.bram18);
  EXPECT_LE(fixed_report.latency_cycles, float_report.latency_cycles);
}

TEST(FixedHls, NarrowerFormatsNeedLessBram) {
  const nn::Network net = nn::make_test4_network();
  const auto bram_for = [&](int bits) {
    return hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard(),
                         NumericFormat::fixed_point(bits, bits / 2))
        .usage.bram18;
  };
  EXPECT_LE(bram_for(8), bram_for(16));
  EXPECT_LE(bram_for(16), bram_for(32));
}

TEST(FixedHls, IpCoreRunsFixedModel) {
  nn::Network net = trained_tiny_net();
  axi::BlockDesign bd(net, hls::DirectiveSet::optimized(), hls::zedboard(),
                      NumericFormat::fixed_point(16, 8));
  util::Rng rng(10);
  Tensor image(Shape{1, 8, 8});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const axi::ClassifyResult hw = bd.classify(image);
  ASSERT_TRUE(hw.ok);
  const nn::FixedForwardResult expected = nn::forward_fixed(net, image, {16, 8});
  EXPECT_EQ(hw.predicted, expected.predicted);
  for (std::size_t k = 0; k < hw.scores.size(); ++k) {
    EXPECT_EQ(hw.scores[k], expected.scores[k]);
  }
}

// --------------------------------------------- generated fixed C++ bit-exact

namespace {
core::NetworkDescriptor fixed_descriptor() {
  core::NetworkDescriptor d;
  d.name = "fixed_codegen";
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  d.optimize = true;
  d.precision = NumericFormat::fixed_point(16, 8);
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 3;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 4;
  d.layers = {conv, lin};
  return d;
}
}  // namespace

TEST(FixedCodegen, EmitsFixedPlumbing) {
  const core::NetworkDescriptor d = fixed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(11);
  net.init_weights(rng);
  const std::string src = core::generate_cpp(d, net);
  EXPECT_NE(src.find("typedef int fixed_t"), std::string::npos);
  EXPECT_NE(src.find("#define FRAC_BITS 8"), std::string::npos);
  EXPECT_NE(src.find("static const fixed_t w_conv0["), std::string::npos);
  EXPECT_NE(src.find("renorm(acc)"), std::string::npos);
  EXPECT_NE(src.find("precision: Q8.8"), std::string::npos);
  EXPECT_EQ(src.find("static const float w_conv0"), std::string::npos);
}

TEST(FixedCodegen, GeneratedCodeMatchesFixedReferenceBitForBit) {
  const core::NetworkDescriptor d = fixed_descriptor();
  nn::Network net = d.build_network();
  util::Rng rng(12);
  net.init_weights(rng);

  const std::string dir = util::make_temp_dir("cnn2fpga-fixed");
  const std::string src_path = dir + "/gen.cpp";
  const std::string bin_path = dir + "/gen_tb";
  util::write_file(src_path, core::generate_cpp(d, net));
  const char* cxx = std::getenv("CXX");
  const std::string compiler = cxx != nullptr && *cxx != '\0' ? cxx : "c++";
  ASSERT_EQ(std::system(util::format(
                            "%s -O1 -std=c++17 -DCNN2FPGA_TESTBENCH -Wno-unknown-pragmas "
                            "-o %s %s 2> %s/cc.log",
                            compiler.c_str(), bin_path.c_str(), src_path.c_str(), dir.c_str())
                            .c_str()),
            0)
      << util::read_file(dir + "/cc.log");

  for (int trial = 0; trial < 5; ++trial) {
    Tensor image(Shape{1, 8, 8});
    image.fill_uniform(rng, -1.0f, 1.0f);
    std::string input;
    for (std::size_t i = 0; i < image.size(); ++i) {
      input += util::format("%a\n", static_cast<double>(image[i]));
    }
    util::write_file(dir + "/in.txt", input);
    ASSERT_EQ(std::system(util::format("%s < %s/in.txt > %s/out.txt", bin_path.c_str(),
                                       dir.c_str(), dir.c_str())
                              .c_str()),
              0);
    const auto lines = util::split(util::read_file(dir + "/out.txt"), '\n');
    const nn::FixedForwardResult expected = nn::forward_fixed(net, image, d.precision.fixed);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(std::strtof(lines.at(k).c_str(), nullptr), expected.scores[k])
          << "trial " << trial << " score " << k;
    }
    EXPECT_EQ(static_cast<std::size_t>(std::strtol(lines.at(4).c_str(), nullptr, 10)),
              expected.predicted);
  }
  std::filesystem::remove_all(dir);
}

TEST(FixedCodegen, FrameworkEndToEnd) {
  const core::GeneratedDesign design =
      core::Framework::generate_with_random_weights(fixed_descriptor(), 13);
  EXPECT_TRUE(design.hls_report.fits());
  EXPECT_NE(design.cpp_source.find("fixed_t"), std::string::npos);
}
