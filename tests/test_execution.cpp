// Bit-exactness and reentrancy tests for the ExecutionContext inference path.
//
// The redesign's contract is strict: `Network::infer(input, ctx)` through a
// *scalar-pinned* context must equal the seed
// `Network::forward(input, /*train=*/false)` bit-for-bit — the conv fast path
// (im2col + pixel-tiled GEMM + fused bias/activation) replays the identical
// IEEE operation sequence per output element, it only reorders independent
// elements. These tests assert exact equality (EXPECT_EQ on floats, no
// tolerance) across every layer kind, in float and fixed-point, single and
// batched, and from many threads hammering one const network. Contexts that
// must be exact are pinned to kernels::Kind::kScalar so the assertions hold
// regardless of the host's SIMD dispatch; the AVX2 engine's tolerance and
// batch-fusion contracts are covered by tests/test_kernels.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "nn/execution.hpp"
#include "nn/fixed_inference.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::nn;

namespace {

/// Architectures covering every layer kind and fusion shape: conv with and
/// without a directly following activation, both pool kinds, linear with and
/// without activation, with and without the trailing LogSoftMax.
Network make_network(int arch, std::uint64_t seed) {
  Network net(arch < 2 ? Shape{1, 16, 16} : (arch == 4 ? Shape{1, 2, 2} : Shape{2, 10, 10}),
              "exec_test");
  switch (arch) {
    case 0:  // the paper's CNN shape: conv+tanh+pool twice, then linear head
      net.add_conv(2, 3, 3);
      net.add_activation(ActKind::kTanh);
      net.add_max_pool(2, 2);
      net.add_conv(3, 3, 3);
      net.add_activation(ActKind::kReLU);
      net.add_mean_pool(2, 2);
      net.add_linear(10);
      net.add_activation(ActKind::kSigmoid);
      net.add_linear(6);
      net.add_logsoftmax();
      break;
    case 1:  // conv with no fusable activation (pool directly after)
      net.add_conv(3, 5, 5);
      net.add_max_pool(3, 2);
      net.add_linear(5);
      net.add_logsoftmax();
      break;
    case 2:  // multi-channel input, rectangular kernel, no LogSoftMax
      net.add_conv(4, 3, 2);
      net.add_activation(ActKind::kTanh);
      net.add_linear(8);
      break;
    case 3:  // back-to-back convs (fused + unfused), activation-only tail
      net.add_conv(3, 3, 3);
      net.add_conv(2, 3, 3);
      net.add_activation(ActKind::kReLU);
      net.add_linear(4);
      net.add_activation(ActKind::kTanh);
      break;
    default:  // pure MLP: no conv at all
      net.add_linear(9);
      net.add_activation(ActKind::kTanh);
      net.add_linear(3);
      net.add_logsoftmax();
      break;
  }
  util::Rng rng(seed);
  net.init_weights(rng);
  return net;
}

constexpr int kArchCount = 5;

/// Context pinned to the scalar engine: the bit-exact reference mode.
ExecutionContext scalar_ctx(const Network& net) {
  return ExecutionContext(net, kernels::Kind::kScalar, nullptr);
}

tensor::Tensor random_input(const Shape& shape, std::uint64_t seed) {
  tensor::Tensor input{shape};
  util::Rng rng(seed);
  input.fill_uniform(rng, -1.0f, 1.0f);
  return input;
}

void expect_bit_identical(const tensor::Tensor& expected, const tensor::Tensor& actual,
                          const std::string& context) {
  ASSERT_EQ(expected.shape(), actual.shape()) << context;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Exact float equality on purpose: the contract is bit-for-bit.
    ASSERT_EQ(expected[i], actual[i]) << context << " element " << i;
  }
}

}  // namespace

TEST(ExecutionContext, InferMatchesForwardBitExactAcrossArchitectures) {
  for (int arch = 0; arch < kArchCount; ++arch) {
    Network net = make_network(arch, 11u + static_cast<std::uint64_t>(arch));
    ExecutionContext ctx = scalar_ctx(net);
    for (std::uint64_t i = 0; i < 8; ++i) {
      const tensor::Tensor input = random_input(net.input_shape(), 100 * i + 7);
      const tensor::Tensor expected = net.forward(input, /*train=*/false);
      const tensor::Tensor& actual = net.infer(input, ctx);  // reused context
      expect_bit_identical(expected, actual,
                           "arch " + std::to_string(arch) + " input " + std::to_string(i));
    }
  }
}

TEST(ExecutionContext, PlanFusesActivationsAndCoversAllLayers) {
  const Network net = make_network(0, 3);
  const ExecutionContext ctx(net);
  // conv+tanh, pool, conv+relu, pool, linear+sigmoid, linear, logsoftmax:
  // 10 layers compile into 7 steps, 3 of them with a fused activation.
  ASSERT_EQ(ctx.steps().size(), 7u);
  std::size_t fused = 0;
  for (const auto& step : ctx.steps()) fused += step.fused != nullptr ? 1 : 0;
  EXPECT_EQ(fused, 3u);
  EXPECT_EQ(ctx.steps().front().kind, ExecutionContext::Step::Kind::kConv);
  EXPECT_EQ(ctx.steps().back().kind, ExecutionContext::Step::Kind::kLogSoftMax);
  // Every step carries its layer classification: nothing in the paper's
  // network vocabulary should fall back to the generic (unfusable) kind.
  for (const auto& step : ctx.steps()) {
    EXPECT_NE(step.kind, ExecutionContext::Step::Kind::kGeneric);
  }
}

TEST(ExecutionContext, InferBatchMatchesPerImageForward) {
  Network net = make_network(0, 21);
  ExecutionContext ctx = scalar_ctx(net);
  std::vector<tensor::Tensor> images;
  for (std::uint64_t i = 0; i < 6; ++i) {
    images.push_back(random_input(net.input_shape(), 500 + i));
  }
  const std::vector<tensor::Tensor> batched = net.infer_batch(images, ctx);
  ASSERT_EQ(batched.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_bit_identical(net.forward(images[i], /*train=*/false), batched[i],
                         "batch element " + std::to_string(i));
  }
}

TEST(ExecutionContext, RejectsContextBuiltForAnotherNetwork) {
  Network a = make_network(0, 1);
  Network b = make_network(0, 2);
  ExecutionContext ctx_b(b);
  EXPECT_THROW((void)a.infer(random_input(a.input_shape(), 3), ctx_b), std::invalid_argument);
  ExecutionContext ctx_a(a);
  EXPECT_THROW((void)a.infer(random_input(Shape{1, 4, 4}, 3), ctx_a), std::invalid_argument);
}

TEST(ExecutionContext, ConstPredictMatchesForwardArgmax) {
  const Network net = make_network(0, 31);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const tensor::Tensor input = random_input(net.input_shape(), 900 + i);
    // predict() is const: it must work on a network the caller cannot mutate.
    EXPECT_EQ(net.predict(input),
              const_cast<Network&>(net).forward(input, /*train=*/false).argmax());
  }
}

TEST(ExecutionContext, EmptyNetworkInferCopiesInput) {
  Network net(Shape{1, 1, 3}, "identity");
  ExecutionContext ctx(net);
  const tensor::Tensor input = random_input(net.input_shape(), 5);
  expect_bit_identical(input, net.infer(input, ctx), "empty network");
}

// ----------------------------------------------------------- fixed-point path

TEST(ExecutionContext, FixedInferenceMatchesFreshContextWrapper) {
  for (int arch = 0; arch < kArchCount; ++arch) {
    const Network net = make_network(arch, 41u + static_cast<std::uint64_t>(arch));
    const FixedPointFormat format{16, 8};
    ExecutionContext ctx(net);
    for (std::uint64_t i = 0; i < 4; ++i) {
      const tensor::Tensor input = random_input(net.input_shape(), 700 + i);
      const FixedForwardResult fresh = forward_fixed(net, input, format);
      // Reused context: quantized parameters cached after the first call.
      const FixedForwardResult reused = forward_fixed(net, input, format, ctx);
      EXPECT_EQ(fresh.predicted, reused.predicted);
      expect_bit_identical(fresh.scores, reused.scores,
                           "arch " + std::to_string(arch) + " fixed input " +
                               std::to_string(i));
      EXPECT_EQ(fresh.output_error, reused.output_error);
    }
  }
}

TEST(ExecutionContext, FixedCacheRebuildsWhenFormatChanges) {
  const Network net = make_network(0, 51);
  ExecutionContext ctx(net);
  const tensor::Tensor input = random_input(net.input_shape(), 1);
  const FixedForwardResult q88 = forward_fixed(net, input, FixedPointFormat{16, 8}, ctx);
  const FixedForwardResult q412 = forward_fixed(net, input, FixedPointFormat{16, 12}, ctx);
  const FixedForwardResult q88_again = forward_fixed(net, input, FixedPointFormat{16, 8}, ctx);
  expect_bit_identical(q88.scores, q88_again.scores, "format switch round trip");
  // Differently-scaled arithmetic virtually never lands on identical scores;
  // equality here would mean the cache failed to re-key on the format.
  bool any_difference = false;
  for (std::size_t i = 0; i < q88.scores.size(); ++i) {
    any_difference = any_difference || q88.scores[i] != q412.scores[i];
  }
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------------------------- context pool

TEST(ExecutionContextPool, ReusesReleasedContexts) {
  const Network net = make_network(4, 61);
  ExecutionContextPool pool(net);
  for (int i = 0; i < 5; ++i) {
    auto lease = pool.acquire();
    (void)net.infer(random_input(net.input_shape(), static_cast<std::uint64_t>(i)), *lease);
  }
  EXPECT_EQ(pool.created(), 1u);  // sequential use never needs a second context
  {
    auto a = pool.acquire();
    auto b = pool.acquire();  // held concurrently: must materialize a second
    (void)a;
    (void)b;
  }
  EXPECT_EQ(pool.created(), 2u);
  auto again = pool.acquire();
  EXPECT_EQ(pool.created(), 2u);  // both returned to the free list
}

// ------------------------------------------------------- many-thread hammer

TEST(ExecutionContext, ConcurrentInferenceIsBitExact) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kImages = 16;
  constexpr std::size_t kRounds = 6;

  const Network net = make_network(0, 71);
  std::vector<tensor::Tensor> images;
  std::vector<tensor::Tensor> expected;
  {
    // Reference outputs via the seed mutable path, before any concurrency.
    Network& mutable_net = const_cast<Network&>(net);
    for (std::uint64_t i = 0; i < kImages; ++i) {
      images.push_back(random_input(net.input_shape(), 4000 + i));
      expected.push_back(mutable_net.forward(images.back(), /*train=*/false));
    }
  }

  ExecutionContextPool pool(net, kernels::Kind::kScalar);
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        const std::size_t index = (t * kRounds + round) % kImages;
        auto lease = pool.acquire();
        const tensor::Tensor& scores = net.infer(images[index], *lease);
        const tensor::Tensor& want = expected[index];
        if (scores.shape() != want.shape()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t k = 0; k < want.size(); ++k) {
          const float got = scores[k];
          const float ref = want[k];
          if (std::memcmp(&got, &ref, sizeof(float)) != 0) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(pool.created(), kThreads);
}

TEST(ExecutionContext, ConcurrentFixedInferenceIsDeterministic) {
  constexpr std::size_t kThreads = 6;
  const Network net = make_network(1, 81);
  const FixedPointFormat format{16, 8};
  const tensor::Tensor input = random_input(net.input_shape(), 9);
  const FixedForwardResult reference = forward_fixed(net, input, format);

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ExecutionContext ctx(net);
      for (int round = 0; round < 4; ++round) {
        const FixedForwardResult result =
            forward_fixed(net, input, format, ctx, /*track_output_error=*/false);
        if (result.predicted != reference.predicted) mismatches.fetch_add(1);
        for (std::size_t k = 0; k < reference.scores.size(); ++k) {
          if (result.scores[k] != reference.scores[k]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---------------------------------------------------------------- training

TEST(TrainContext, ForwardBackwardDelegatesToTheMutablePath) {
  Network net = make_network(4, 91);
  TrainContext train(net);
  const tensor::Tensor input = random_input(net.input_shape(), 2);
  const tensor::Tensor out = train.forward(input);
  EXPECT_EQ(out.size(), 3u);
  tensor::Tensor grad{out.shape()};
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] = 0.1f;
  train.backward(grad);  // must not throw: forward(train=true) cached state

  // After training-path use, const inference still matches the seed forward.
  ExecutionContext ctx = scalar_ctx(net);
  expect_bit_identical(net.forward(input, /*train=*/false), net.infer(input, ctx),
                       "post-backward inference");
}
