// Tests for the synthetic dataset substrates (USPS / CIFAR-10 stand-ins).
#include <gtest/gtest.h>

#include <filesystem>

#include "data/synth_cifar.hpp"
#include "data/synth_usps.hpp"
#include "util/fileio.hpp"

using namespace cnn2fpga::data;
using cnn2fpga::tensor::Shape;
using cnn2fpga::tensor::Tensor;

TEST(Usps, ShapesAndRanges) {
  UspsConfig config;
  config.samples_per_class = 5;
  const Dataset ds = generate_usps(config);
  EXPECT_EQ(ds.num_classes, 10u);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.image_shape, (Shape{1, 16, 16}));
  for (const Sample& s : ds.samples) {
    EXPECT_LT(s.label, 10u);
    EXPECT_GE(s.image.min(), 0.0f);
    EXPECT_LE(s.image.max(), 1.0f);
    EXPECT_GT(s.image.sum(), 0.0f);  // something was drawn
  }
}

TEST(Usps, ClassesInterleavedSoPrefixSplitIsBalanced) {
  UspsConfig config;
  config.samples_per_class = 3;
  const Dataset ds = generate_usps(config);
  for (std::size_t i = 0; i < ds.size(); ++i) EXPECT_EQ(ds.samples[i].label, i % 10);
  const auto hist = ds.class_histogram();
  for (std::size_t c = 0; c < 10; ++c) EXPECT_EQ(hist[c], 3u);
}

TEST(Usps, DeterministicPerSeed) {
  UspsConfig config;
  config.samples_per_class = 2;
  const Dataset a = generate_usps(config);
  const Dataset b = generate_usps(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(a.samples[i].image, b.samples[i].image), 0.0f);
  }
  config.seed = 43;
  const Dataset c = generate_usps(config);
  EXPECT_NE(Tensor::max_abs_diff(a.samples[0].image, c.samples[0].image), 0.0f);
}

TEST(Usps, DigitsAreVisuallyDistinct) {
  // Noise-free renderings of different digits must differ substantially.
  UspsConfig config;
  config.noise_stddev = 0.0f;
  config.max_translation = 0;
  config.min_intensity = 1.0f;
  cnn2fpga::util::Rng rng(1);
  const Tensor one = render_usps_digit(1, rng, config);
  const Tensor eight = render_usps_digit(8, rng, config);
  EXPECT_GT(Tensor::max_abs_diff(one, eight), 0.5f);
  // An 8 lights strictly more pixels than a 1.
  EXPECT_GT(eight.sum(), one.sum());
}

TEST(Usps, RejectsInvalidDigit) {
  cnn2fpga::util::Rng rng(1);
  EXPECT_THROW(render_usps_digit(10, rng, UspsConfig{}), std::invalid_argument);
}

TEST(Cifar, ShapesAndRanges) {
  CifarConfig config;
  config.samples_per_class = 3;
  const Dataset ds = generate_cifar(config);
  EXPECT_EQ(ds.num_classes, 10u);
  EXPECT_EQ(ds.size(), 30u);
  EXPECT_EQ(ds.image_shape, (Shape{3, 32, 32}));
  for (const Sample& s : ds.samples) {
    EXPECT_GE(s.image.min(), 0.0f);
    EXPECT_LE(s.image.max(), 1.0f);
  }
}

TEST(Cifar, ClassesDifferInMeanColor) {
  CifarConfig config;
  config.samples_per_class = 4;
  config.noise_stddev = 0.0f;
  const Dataset ds = generate_cifar(config);
  // Mean red-channel value of class 0 (red hue) exceeds class 2 (blue hue).
  double red_class0 = 0.0, red_class2 = 0.0;
  int n0 = 0, n2 = 0;
  for (const Sample& s : ds.samples) {
    double red = 0.0;
    for (std::size_t i = 0; i < 32 * 32; ++i) red += s.image[i];
    if (s.label == 0) {
      red_class0 += red;
      ++n0;
    }
    if (s.label == 2) {
      red_class2 += red;
      ++n2;
    }
  }
  EXPECT_GT(red_class0 / n0, red_class2 / n2);
}

TEST(Cifar, DeterministicPerSeed) {
  CifarConfig config;
  config.samples_per_class = 1;
  const Dataset a = generate_cifar(config);
  const Dataset b = generate_cifar(config);
  EXPECT_EQ(Tensor::max_abs_diff(a.samples[5].image, b.samples[5].image), 0.0f);
}

TEST(Dataset, SplitSeparatesPrefixAndSuffix) {
  UspsConfig config;
  config.samples_per_class = 4;
  const Dataset ds = generate_usps(config);
  const auto [train, test] = ds.split(30);
  EXPECT_EQ(train.size(), 30u);
  EXPECT_EQ(test.size(), 10u);
  EXPECT_THROW(ds.split(100), std::invalid_argument);
}

TEST(Dataset, PixelStats) {
  UspsConfig config;
  config.samples_per_class = 2;
  const Dataset ds = generate_usps(config);
  const auto [mean, stddev] = ds.pixel_stats();
  EXPECT_GT(mean, 0.0f);
  EXPECT_LT(mean, 1.0f);
  EXPECT_GT(stddev, 0.0f);
}

TEST(Dataset, SaveLoadRoundTrip) {
  UspsConfig config;
  config.samples_per_class = 2;
  const Dataset ds = generate_usps(config);

  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-data");
  const std::string path = dir + "/usps.bin";
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);

  EXPECT_EQ(loaded.num_classes, ds.num_classes);
  EXPECT_EQ(loaded.image_shape, ds.image_shape);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.samples[i].label, ds.samples[i].label);
    EXPECT_EQ(Tensor::max_abs_diff(loaded.samples[i].image, ds.samples[i].image), 0.0f);
  }
  std::filesystem::remove_all(dir);
}

TEST(Dataset, LoadRejectsCorruptFiles) {
  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-data");
  const std::string path = dir + "/bad.bin";
  cnn2fpga::util::write_file(path, "definitely not a dataset");
  EXPECT_THROW(load_dataset(path), std::runtime_error);

  // Truncated valid file.
  UspsConfig config;
  config.samples_per_class = 1;
  save_dataset(generate_usps(config), path);
  auto bytes = cnn2fpga::util::read_file_bytes(path);
  bytes.resize(bytes.size() - 100);
  cnn2fpga::util::write_file_bytes(path, bytes);
  EXPECT_THROW(load_dataset(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Dataset, AsciiRenderHasRowsAndInk) {
  UspsConfig config;
  config.samples_per_class = 1;
  const Dataset ds = generate_usps(config);
  const std::string art = ascii_render(ds.samples[8].image);  // digit 8
  // 16 lines of 16 chars.
  EXPECT_EQ(art.size(), 17u * 16u);
  EXPECT_NE(art.find('@'), std::string::npos);  // bright stroke pixels
  EXPECT_NE(art.find(' '), std::string::npos);  // background
}
