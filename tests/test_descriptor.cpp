// Tests for the network descriptor (the GUI's JSON contract, Sec. IV-A).
#include <gtest/gtest.h>

#include "core/descriptor.hpp"
#include "core/framework.hpp"

using namespace cnn2fpga::core;
using cnn2fpga::nn::Shape;

namespace {
const char* kTest1Json = R"({
  "name": "usps_test1",
  "board": "zedboard",
  "input": {"channels": 1, "height": 16, "width": 16},
  "optimize": false,
  "layers": [
    {"type": "conv", "feature_maps_out": 6, "kernel": 5,
     "pool": {"type": "max", "kernel": 2, "step": 2}},
    {"type": "linear", "neurons": 10}
  ]
})";
}  // namespace

TEST(Descriptor, ParsesTest1Document) {
  const NetworkDescriptor d = NetworkDescriptor::from_json_text(kTest1Json);
  EXPECT_EQ(d.name, "usps_test1");
  EXPECT_EQ(d.board, "zedboard");
  EXPECT_EQ(d.input_channels, 1u);
  EXPECT_EQ(d.input_height, 16u);
  EXPECT_FALSE(d.optimize);
  EXPECT_TRUE(d.logsoftmax);  // appended by default
  ASSERT_EQ(d.layers.size(), 2u);
  EXPECT_EQ(d.layers[0].type, LayerSpec::Type::kConv);
  EXPECT_EQ(d.layers[0].conv.feature_maps_out, 6u);
  EXPECT_EQ(d.layers[0].conv.kernel_h, 5u);
  ASSERT_TRUE(d.layers[0].conv.pool.has_value());
  EXPECT_EQ(d.layers[0].conv.pool->kernel, 2u);
  EXPECT_EQ(d.layers[1].linear.neurons, 10u);
  EXPECT_EQ(d.num_classes(), 10u);
}

TEST(Descriptor, BuildsTheEquivalentNetwork) {
  const NetworkDescriptor d = NetworkDescriptor::from_json_text(kTest1Json);
  const cnn2fpga::nn::Network net = d.build_network();
  EXPECT_EQ(net.layer_count(), 4u);  // conv, maxpool, linear, logsoftmax
  EXPECT_EQ(net.shape_after(0), (Shape{6, 12, 12}));
  EXPECT_EQ(net.shape_after(1), (Shape{6, 6, 6}));
  EXPECT_EQ(net.output_shape(), (Shape{10}));
}

TEST(Descriptor, JsonRoundTrip) {
  const NetworkDescriptor d = NetworkDescriptor::from_json_text(kTest1Json);
  const NetworkDescriptor d2 = NetworkDescriptor::from_json(d.to_json());
  EXPECT_EQ(d2.name, d.name);
  EXPECT_EQ(d2.layers.size(), d.layers.size());
  EXPECT_EQ(d2.to_json().dump(), d.to_json().dump());
}

TEST(Descriptor, PoolStepDefaultsToKernel) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 2, "kernel": 3,
       "pool": {"type": "max", "kernel": 2}},
      {"type": "linear", "neurons": 4}
    ]})");
  EXPECT_EQ(d.layers[0].conv.pool->step, 2u);
}

TEST(Descriptor, MeanPoolSupported) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 2, "kernel": 3,
       "pool": {"type": "mean", "kernel": 2}},
      {"type": "linear", "neurons": 4}
    ]})");
  EXPECT_EQ(d.layers[0].conv.pool->kind, cnn2fpga::nn::PoolKind::kMean);
  const auto net = d.build_network();
  EXPECT_EQ(net.layer(1).kind(), "meanpool");
}

TEST(Descriptor, LinearTanhOption) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 8, "width": 8},
    "layers": [
      {"type": "linear", "neurons": 16, "tanh": true},
      {"type": "linear", "neurons": 4}
    ]})");
  const auto net = d.build_network();
  EXPECT_EQ(net.layer(1).kind(), "tanh");
}

TEST(Descriptor, NonSquareKernels) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 2, "kernel_h": 3, "kernel_w": 5},
      {"type": "linear", "neurons": 4}
    ]})");
  const auto net = d.build_network();
  EXPECT_EQ(net.shape_after(0), (Shape{2, 14, 12}));
}

// ----------------------------------------------------------- error handling

TEST(DescriptorErrors, MalformedJson) {
  EXPECT_THROW(NetworkDescriptor::from_json_text("{ not json"), DescriptorError);
}

TEST(DescriptorErrors, MissingInput) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({"layers": []})"), DescriptorError);
}

TEST(DescriptorErrors, MissingRequiredLayerFields) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "conv"}]})"),
               DescriptorError);
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear"}]})"),
               DescriptorError);
}

TEST(DescriptorErrors, NonPositiveDimensions) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 0, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               DescriptorError);
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": -3}]})"),
               DescriptorError);
}

TEST(DescriptorErrors, UnknownLayerTypeOrPoolType) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "dropout", "rate": 0.5}]})"),
               DescriptorError);
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 2, "kernel": 3,
       "pool": {"type": "median", "kernel": 2}},
      {"type": "linear", "neurons": 4}
    ]})"),
               DescriptorError);
}

TEST(DescriptorErrors, UnknownBoardListsAlternatives) {
  try {
    NetworkDescriptor::from_json_text(R"({
      "board": "de10",
      "input": {"channels": 1, "height": 16, "width": 16},
      "layers": [{"type": "linear", "neurons": 4}]})");
    FAIL() << "expected DescriptorError";
  } catch (const DescriptorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zybo"), std::string::npos) << msg;
    EXPECT_NE(msg.find("zedboard"), std::string::npos) << msg;
  }
}

TEST(DescriptorErrors, ConvAfterLinearRejected) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "linear", "neurons": 10},
      {"type": "conv", "feature_maps_out": 2, "kernel": 3}
    ]})"),
               DescriptorError);
}

TEST(DescriptorErrors, MustEndInLinear) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "conv", "feature_maps_out": 2, "kernel": 3}]})"),
               DescriptorError);
}

TEST(DescriptorErrors, InfeasibleShapesCaughtAtValidation) {
  // 9x9 kernel on a 8x8 input.
  try {
    NetworkDescriptor::from_json_text(R"({
      "input": {"channels": 1, "height": 8, "width": 8},
      "layers": [
        {"type": "conv", "feature_maps_out": 2, "kernel": 9},
        {"type": "linear", "neurons": 4}
      ]})");
    FAIL() << "expected DescriptorError";
  } catch (const DescriptorError& e) {
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos) << e.what();
  }
}

TEST(Descriptor, ClockOverride) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "clock_mhz": 125,
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 4}]})");
  EXPECT_DOUBLE_EQ(d.clock_mhz, 125.0);
  // Round-trips.
  EXPECT_DOUBLE_EQ(NetworkDescriptor::from_json(d.to_json()).clock_mhz, 125.0);

  // The generated HLS report and tcl reflect the faster clock.
  const auto design = cnn2fpga::core::Framework::generate_with_random_weights(d, 1);
  EXPECT_DOUBLE_EQ(design.hls_report.device.clock_mhz, 125.0);
  EXPECT_NE(design.tcl_files.at("cnn_vivado_hls.tcl").find("create_clock -period 8"),
            std::string::npos);

  // Same cycles as at 100 MHz, fewer seconds.
  auto base = d;
  base.clock_mhz = 0.0;
  const auto reference = cnn2fpga::core::Framework::generate_with_random_weights(base, 1);
  EXPECT_EQ(design.hls_report.latency_cycles, reference.hls_report.latency_cycles);
  EXPECT_LT(design.hls_report.latency_seconds(), reference.hls_report.latency_seconds());
}

TEST(DescriptorErrors, ClockOutOfRange) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "clock_mhz": 10,
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               DescriptorError);
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "clock_mhz": 1000,
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 4}]})"),
               DescriptorError);
}

TEST(Descriptor, ActivationOptions) {
  const auto d = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [
      {"type": "conv", "feature_maps_out": 2, "kernel": 3, "activation": "relu",
       "pool": {"type": "max", "kernel": 2}},
      {"type": "linear", "neurons": 8, "activation": "sigmoid"},
      {"type": "linear", "neurons": 4}
    ]})");
  const auto net = d.build_network();
  EXPECT_EQ(net.layer(1).kind(), "relu");     // after conv, before pool
  EXPECT_EQ(net.layer(2).kind(), "maxpool");
  EXPECT_EQ(net.layer(4).kind(), "sigmoid");
  // Round-trips.
  const auto d2 = NetworkDescriptor::from_json(d.to_json());
  EXPECT_EQ(d2.build_network().layer(1).kind(), "relu");

  // Legacy "tanh": true still works.
  const auto legacy = NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 8, "tanh": true},
               {"type": "linear", "neurons": 4}]})");
  EXPECT_EQ(legacy.build_network().layer(1).kind(), "tanh");

  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": [{"type": "linear", "neurons": 4, "activation": "softplus"}]})"),
               DescriptorError);
}

TEST(DescriptorErrors, EmptyLayerList) {
  EXPECT_THROW(NetworkDescriptor::from_json_text(R"({
    "input": {"channels": 1, "height": 16, "width": 16},
    "layers": []})"),
               DescriptorError);
}
