// Parameterized property sweeps across numeric formats, weights modes and
// generated-code structure (complements test_properties.cpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <tuple>

#include "core/framework.hpp"
#include "util/fileio.hpp"
#include "hls/estimator.hpp"
#include "hls/schedule.hpp"
#include "nn/fixed_inference.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga;
using nn::FixedPointFormat;
using nn::NumericFormat;
using nn::Shape;
using nn::Tensor;

// ------------------------------------------------------ fixed-format sweep

class FixedFormatSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FixedFormatSweep, QuantizationInvariants) {
  const auto [total, frac] = GetParam();
  const FixedPointFormat fmt{total, frac};
  fmt.validate();

  util::Rng rng(static_cast<std::uint64_t>(total * 100 + frac));
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 4.0));
    const std::int32_t raw = nn::fixed_quantize(v, fmt);
    // Raw value is always within the representable range.
    EXPECT_GE(raw, fmt.min_raw());
    EXPECT_LE(raw, fmt.max_raw());
    // In-range values round-trip within half a resolution step.
    const double max_val = static_cast<double>(fmt.max_raw()) / static_cast<double>(fmt.scale());
    if (std::fabs(v) < max_val - fmt.resolution()) {
      EXPECT_NEAR(nn::fixed_dequantize(raw, fmt), v, fmt.resolution() / 2 + 1e-7);
    }
  }
  // Quantization is monotone: v1 <= v2 => q(v1) <= q(v2).
  float prev_v = -1e9f;
  std::int32_t prev_raw = nn::fixed_quantize(prev_v, fmt);
  for (int i = 0; i < 100; ++i) {
    const float v = -50.0f + static_cast<float>(i);
    const std::int32_t raw = nn::fixed_quantize(v, fmt);
    EXPECT_GE(raw, prev_raw) << "monotonicity violated between " << prev_v << " and " << v;
    prev_v = v;
    prev_raw = raw;
  }
}

TEST_P(FixedFormatSweep, FixedInferencePredictsSanely) {
  const auto [total, frac] = GetParam();
  // Formats with at least 6 fractional bits should mostly agree with float
  // on a small network with unit-scale inputs.
  if (frac < 6) GTEST_SKIP() << "too coarse for agreement guarantee";

  nn::Network net(Shape{1, 6, 6}, "sweep");
  net.add_conv(2, 3, 3);
  net.add_linear(3);
  net.add_logsoftmax();
  util::Rng rng(42);
  net.init_weights(rng);

  int agree = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Tensor image(Shape{1, 6, 6});
    image.fill_uniform(rng, 0.0f, 1.0f);
    if (nn::forward_fixed(net, image, {total, frac}).predicted == net.predict(image)) ++agree;
  }
  EXPECT_GE(agree, trials - 2) << FixedPointFormat{total, frac}.name();
}

INSTANTIATE_TEST_SUITE_P(Formats, FixedFormatSweep,
                         ::testing::Values(std::make_tuple(8, 4), std::make_tuple(12, 6),
                                           std::make_tuple(16, 8), std::make_tuple(18, 10),
                                           std::make_tuple(24, 12), std::make_tuple(32, 16)));

// ------------------------------------------------- generation config sweep

namespace {
core::NetworkDescriptor sweep_descriptor(bool optimize, bool streamed, bool fixed) {
  core::NetworkDescriptor d;
  d.name = "config_sweep";
  d.input_channels = 1;
  d.input_height = 10;
  d.input_width = 10;
  d.optimize = optimize;
  d.streamed_weights = streamed;
  if (fixed) d.precision = NumericFormat::fixed_point(16, 8);
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 4;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.pool = core::PoolSpec{nn::PoolKind::kMax, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 5;
  d.layers = {conv, lin};
  return d;
}
}  // namespace

class GenerationConfigSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(GenerationConfigSweep, EveryConfigurationGeneratesConsistently) {
  const auto [optimize, streamed, fixed] = GetParam();
  const core::NetworkDescriptor d = sweep_descriptor(optimize, streamed, fixed);

  const core::GeneratedDesign design = core::Framework::generate_with_random_weights(d, 5);
  // The descriptor dumped with the artifacts reparses to the same config.
  const core::NetworkDescriptor reparsed = core::NetworkDescriptor::from_json(d.to_json());
  EXPECT_EQ(reparsed.optimize, optimize);
  EXPECT_EQ(reparsed.streamed_weights, streamed);
  EXPECT_EQ(reparsed.precision.is_fixed, fixed);

  // Source structure follows the flags.
  EXPECT_EQ(design.cpp_source.find("#pragma HLS DATAFLOW") != std::string::npos, optimize);
  EXPECT_EQ(design.cpp_source.find("load_weights") != std::string::npos, streamed);
  EXPECT_EQ(design.cpp_source.find("typedef int fixed_t") != std::string::npos, fixed);

  // Report structure follows the flags.
  EXPECT_EQ(design.hls_report.weight_load_cycles > 0, streamed);
  EXPECT_EQ(design.hls_report.interval_cycles < design.hls_report.latency_cycles, optimize);
  EXPECT_TRUE(design.hls_report.fits());

  // Directives never change the tcl count.
  EXPECT_EQ(design.tcl_files.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Grid, GenerationConfigSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool()));

// --------------------------------------------------------- codegen golden

TEST(CodegenGolden, StableStructureSnapshot) {
  // Guards the emitter against accidental structural drift: the generated
  // file for a fixed tiny network must contain these exact lines in order.
  core::NetworkDescriptor d;
  d.name = "golden";
  d.input_channels = 1;
  d.input_height = 4;
  d.input_width = 4;
  d.optimize = true;
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 1;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 2;
  d.layers = {conv, lin};

  nn::Network net = d.build_network();
  // Deterministic weights so even the literals are stable.
  for (const nn::Param& p : net.params()) {
    for (std::size_t i = 0; i < p.value->size(); ++i) {
      (*p.value)[i] = static_cast<float>(i) * 0.25f - 0.5f;
    }
  }
  const std::string src = core::generate_cpp(d, net);

  const char* expected_in_order[] = {
      "// golden.cpp -- synthesizable CNN generated by cnn2fpga",
      "static const float w_conv0[9] = {",
      "-0.5f, -0.25f, 0.0f, 0.25f, 0.5f, 0.75f, 1.0f, 1.25f, 1.5f",
      "static const float w_linear1[8] = {",
      "int cnn_core(const float in[16], float scores[2]) {",
      "#pragma HLS DATAFLOW",
      "L0_k: for (int k = 0; k < 1; ++k) {",
      "#pragma HLS PIPELINE II=1",
      "L1_j: for (int j = 0; j < 2; ++j) {",
      "LS_out: for (int k = 0; k < 2; ++k) {",
      "ARGMAX: for (int k = 1; k < 2; ++k) {",
      "int cnn_xtop(float_stream &in_stream, float_stream &out_stream) {",
      "#ifdef CNN2FPGA_TESTBENCH",
  };
  std::size_t cursor = 0;
  for (const char* needle : expected_in_order) {
    const std::size_t pos = src.find(needle, cursor);
    ASSERT_NE(pos, std::string::npos) << "missing or out of order: " << needle;
    cursor = pos;
  }
}

// -------------------------------------- compile-and-run equivalence sweep

namespace {

struct EquivalenceConfig {
  nn::ActKind activation;
  nn::PoolKind pool;
  bool fixed;
};

std::string config_name(const ::testing::TestParamInfo<EquivalenceConfig>& info) {
  const auto& c = info.param;
  std::string name = c.activation == nn::ActKind::kTanh      ? "tanh"
                     : c.activation == nn::ActKind::kSigmoid ? "sigmoid"
                                                             : "relu";
  name += c.pool == nn::PoolKind::kMax ? "_max" : "_mean";
  name += c.fixed ? "_fixed" : "_float";
  return name;
}

}  // namespace

class CodegenEquivalenceSweep : public ::testing::TestWithParam<EquivalenceConfig> {};

TEST_P(CodegenEquivalenceSweep, GeneratedBinaryMatchesReference) {
  const EquivalenceConfig& config = GetParam();

  core::NetworkDescriptor d;
  d.name = "equiv_sweep";
  d.input_channels = 1;
  d.input_height = 8;
  d.input_width = 8;
  d.optimize = true;
  if (config.fixed) d.precision = NumericFormat::fixed_point(16, 8);
  core::LayerSpec conv;
  conv.type = core::LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 2;
  conv.conv.kernel_h = conv.conv.kernel_w = 3;
  conv.conv.activation = config.activation;
  conv.conv.pool = core::PoolSpec{config.pool, 2, 2};
  core::LayerSpec lin;
  lin.type = core::LayerSpec::Type::kLinear;
  lin.linear.neurons = 3;
  lin.linear.activation = config.activation;
  core::LayerSpec lin2;
  lin2.type = core::LayerSpec::Type::kLinear;
  lin2.linear.neurons = 4;
  d.layers = {conv, lin, lin2};

  nn::Network net = d.build_network();
  util::Rng rng(31);
  net.init_weights(rng);

  const std::string dir = util::make_temp_dir("cnn2fpga-equiv");
  util::write_file(dir + "/gen.cpp", core::generate_cpp(d, net));
  const char* cxx = std::getenv("CXX");
  const std::string compiler = cxx != nullptr && *cxx != '\0' ? cxx : "c++";
  ASSERT_EQ(std::system(util::format("%s -O1 -std=c++17 -DCNN2FPGA_TESTBENCH "
                                     "-Wno-unknown-pragmas -o %s/tb %s/gen.cpp 2> %s/cc.log",
                                     compiler.c_str(), dir.c_str(), dir.c_str(), dir.c_str())
                            .c_str()),
            0)
      << util::read_file(dir + "/cc.log");

  for (int trial = 0; trial < 3; ++trial) {
    Tensor image(Shape{1, 8, 8});
    image.fill_uniform(rng, -1.0f, 1.0f);
    std::string input;
    for (std::size_t i = 0; i < image.size(); ++i) {
      input += util::format("%a\n", static_cast<double>(image[i]));
    }
    util::write_file(dir + "/in.txt", input);
    ASSERT_EQ(std::system(util::format("%s/tb < %s/in.txt > %s/out.txt", dir.c_str(),
                                       dir.c_str(), dir.c_str())
                              .c_str()),
              0);
    const auto lines = util::split(util::read_file(dir + "/out.txt"), '\n');

    Tensor expected;
    std::size_t expected_pred;
    if (config.fixed) {
      const nn::FixedForwardResult r = nn::forward_fixed(net, image, d.precision.fixed);
      expected = r.scores;
      expected_pred = r.predicted;
    } else {
      expected = net.forward(image);
      expected_pred = expected.argmax();
    }
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(std::strtof(lines.at(k).c_str(), nullptr), expected[k])
          << "trial " << trial << " score " << k;
    }
    EXPECT_EQ(static_cast<std::size_t>(std::strtol(lines.at(4).c_str(), nullptr, 10)),
              expected_pred);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CodegenEquivalenceSweep,
    ::testing::Values(
        EquivalenceConfig{nn::ActKind::kTanh, nn::PoolKind::kMax, false},
        EquivalenceConfig{nn::ActKind::kTanh, nn::PoolKind::kMean, false},
        EquivalenceConfig{nn::ActKind::kReLU, nn::PoolKind::kMax, false},
        EquivalenceConfig{nn::ActKind::kReLU, nn::PoolKind::kMean, false},
        EquivalenceConfig{nn::ActKind::kSigmoid, nn::PoolKind::kMax, false},
        EquivalenceConfig{nn::ActKind::kTanh, nn::PoolKind::kMax, true},
        EquivalenceConfig{nn::ActKind::kTanh, nn::PoolKind::kMean, true},
        EquivalenceConfig{nn::ActKind::kReLU, nn::PoolKind::kMax, true},
        EquivalenceConfig{nn::ActKind::kReLU, nn::PoolKind::kMean, true},
        EquivalenceConfig{nn::ActKind::kSigmoid, nn::PoolKind::kMax, true}),
    config_name);

// ------------------------------------------------------- HLS format sweep

TEST(HlsFormatSweep, FixedLatencyNeverExceedsFloat) {
  for (const auto& net_maker : {&nn::make_test1_network, &nn::make_test3_network}) {
    const nn::Network net = net_maker();
    for (const bool pipeline : {false, true}) {
      const hls::DirectiveSet directives{pipeline, pipeline};
      const auto float_report = hls::estimate(net, directives, hls::zedboard());
      const auto fixed_report = hls::estimate(net, directives, hls::zedboard(),
                                              NumericFormat::fixed_point(16, 8));
      EXPECT_LE(fixed_report.latency_cycles, float_report.latency_cycles);
      EXPECT_LE(fixed_report.usage.dsp, float_report.usage.dsp);
    }
  }
}

TEST(HlsFormatSweep, StreamedFlagOnlyAffectsRomnessAndUpload) {
  const nn::Network net = nn::make_test1_network();
  const auto plain = hls::lower_network(net, hls::DirectiveSet::optimized());
  const auto streamed = hls::lower_network(net, hls::DirectiveSet::optimized(),
                                           NumericFormat::float32(), true);
  ASSERT_EQ(plain.blocks.size(), streamed.blocks.size());
  for (std::size_t b = 0; b < plain.blocks.size(); ++b) {
    ASSERT_EQ(plain.blocks[b].arrays.size(), streamed.blocks[b].arrays.size());
    for (std::size_t a = 0; a < plain.blocks[b].arrays.size(); ++a) {
      EXPECT_EQ(plain.blocks[b].arrays[a].depth, streamed.blocks[b].arrays[a].depth);
      EXPECT_FALSE(streamed.blocks[b].arrays[a].is_rom);
    }
    EXPECT_EQ(hls::block_latency(plain.blocks[b]), hls::block_latency(streamed.blocks[b]));
  }
}
