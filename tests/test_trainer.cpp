// Tests for the SGD trainer (the Torch substitute producing the offline-
// trained weights the framework consumes).
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_usps.hpp"
#include "nn/trainer.hpp"

using namespace cnn2fpga::nn;
namespace data = cnn2fpga::data;

namespace {
std::vector<Sample> tiny_usps(std::size_t per_class, std::uint64_t seed) {
  data::UspsConfig config;
  config.samples_per_class = per_class;
  config.seed = seed;
  return data::generate_usps(config).samples;
}
}  // namespace

TEST(Trainer, LossDecreasesOverEpochs) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(10);
  net.init_weights(rng);

  TrainConfig config;
  config.epochs = 4;
  config.learning_rate = 0.005f;
  const auto train_set = tiny_usps(8, 1);

  const TrainResult result = SgdTrainer(config).train(net, train_set, {});
  ASSERT_EQ(result.epoch_loss.size(), 4u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

TEST(Trainer, ReachesLowTrainErrorOnSyntheticDigits) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(11);
  net.init_weights(rng);

  TrainConfig config;
  config.epochs = 6;
  config.learning_rate = 0.005f;
  const auto train_set = tiny_usps(10, 2);

  const TrainResult result = SgdTrainer(config).train(net, train_set, {});
  EXPECT_LT(result.final_train_error, 0.15f) << "synthetic digits should be learnable";
}

TEST(Trainer, GeneralizesToHeldOutDigits) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(12);
  net.init_weights(rng);

  TrainConfig config;
  config.epochs = 6;
  config.learning_rate = 0.005f;
  const auto train_set = tiny_usps(12, 3);
  const auto test_set = tiny_usps(5, 777);  // different seed: unseen renderings

  const TrainResult result = SgdTrainer(config).train(net, train_set, test_set);
  EXPECT_LT(result.final_test_error, 0.25f);
}

TEST(Trainer, EpochCallbackFires) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(13);
  net.init_weights(rng);

  std::size_t calls = 0;
  TrainConfig config;
  config.epochs = 3;
  config.on_epoch = [&calls](std::size_t epoch, float loss, float) {
    EXPECT_EQ(epoch, calls);
    EXPECT_TRUE(std::isfinite(loss));
    ++calls;
  };
  SgdTrainer(config).train(net, tiny_usps(2, 4), {});
  EXPECT_EQ(calls, 3u);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const auto train_once = [] {
    Network net = make_test1_network();
    cnn2fpga::util::Rng rng(14);
    net.init_weights(rng);
    TrainConfig config;
    config.epochs = 2;
    config.shuffle_seed = 5;
    return SgdTrainer(config).train(net, tiny_usps(4, 5), {}).epoch_loss;
  };
  const auto a = train_once();
  const auto b = train_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Trainer, RejectsBadConfigurations) {
  Network net = make_test1_network();
  EXPECT_THROW(SgdTrainer(TrainConfig{}).train(net, {}, {}), std::invalid_argument);

  // Network without a trailing LogSoftMax is rejected.
  Network bare(Shape{1, 16, 16});
  bare.add_conv(2, 5, 5);
  bare.add_linear(10);
  EXPECT_THROW(SgdTrainer(TrainConfig{}).train(bare, tiny_usps(1, 6), {}),
               std::invalid_argument);
}

TEST(Trainer, EvaluateErrorCountsMisclassifications) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(15);
  net.init_weights(rng);  // untrained: error should be near chance (~0.9)
  const float err = SgdTrainer::evaluate_error(net, tiny_usps(10, 7));
  EXPECT_GE(err, 0.5f);
  EXPECT_LE(err, 1.0f);
  EXPECT_FLOAT_EQ(SgdTrainer::evaluate_error(net, {}), 1.0f);
}

TEST(Trainer, MomentumAcceleratesDescent) {
  const auto loss_after = [](float momentum) {
    Network net = make_test1_network();
    cnn2fpga::util::Rng rng(16);
    net.init_weights(rng);
    TrainConfig config;
    config.epochs = 3;
    config.learning_rate = 0.005f;
    config.momentum = momentum;
    return SgdTrainer(config).train(net, tiny_usps(6, 8), {}).epoch_loss.back();
  };
  // With a deliberately small learning rate, momentum must not be slower.
  EXPECT_LE(loss_after(0.9f), loss_after(0.0f) + 0.05f);
}
