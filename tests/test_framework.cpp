// Tests for the Framework facade: descriptor + weights -> generated design.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/framework.hpp"
#include "util/fileio.hpp"

using namespace cnn2fpga::core;
using cnn2fpga::nn::Network;

namespace {
NetworkDescriptor test1_descriptor(bool optimize) {
  NetworkDescriptor d;
  d.name = "usps_test1";
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = optimize;
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMax, 2, 2};
  LayerSpec lin;
  lin.type = LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  return d;
}
}  // namespace

TEST(Framework, GenerateProducesAllArtifacts) {
  const GeneratedDesign design =
      Framework::generate_with_random_weights(test1_descriptor(true), 1);
  EXPECT_EQ(design.cpp_file_name, "usps_test1.cpp");
  EXPECT_FALSE(design.cpp_source.empty());
  EXPECT_EQ(design.tcl_files.size(), 3u);
  EXPECT_GT(design.hls_report.latency_cycles, 0u);
  EXPECT_TRUE(design.hls_report.fits());
  EXPECT_TRUE(design.warnings.empty());
}

TEST(Framework, GenerateFromTrainedNetwork) {
  const NetworkDescriptor d = test1_descriptor(false);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(2);
  net.init_weights(rng);
  const GeneratedDesign design = Framework::generate(d, net);
  // The hard-coded weights of the generated file are the network's weights.
  const float probe = net.layer(0).params()[0].value->at(0);
  EXPECT_NE(design.cpp_source.find(float_literal(probe)), std::string::npos);
}

TEST(Framework, GenerateFromWeightFile) {
  const NetworkDescriptor d = test1_descriptor(false);
  Network net = d.build_network();
  cnn2fpga::util::Rng rng(3);
  net.init_weights(rng);
  const auto weight_file = cnn2fpga::nn::serialize_weights(net);

  const GeneratedDesign design = Framework::generate_from_weights(d, weight_file);
  const GeneratedDesign direct = Framework::generate(d, net);
  EXPECT_EQ(design.cpp_source, direct.cpp_source);
}

TEST(Framework, WeightFileForWrongArchitectureRejected) {
  // Weights trained for Test 1 fed with a Test-3-like descriptor.
  NetworkDescriptor d1 = test1_descriptor(false);
  Network net1 = d1.build_network();
  const auto weight_file = cnn2fpga::nn::serialize_weights(net1);

  NetworkDescriptor d3 = d1;
  LayerSpec conv2;
  conv2.type = LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 16;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  d3.layers.insert(d3.layers.begin() + 1, conv2);
  EXPECT_THROW(Framework::generate_from_weights(d3, weight_file), std::runtime_error);
}

TEST(Framework, RandomWeightsDeterministicPerSeed) {
  const NetworkDescriptor d = test1_descriptor(true);
  const GeneratedDesign a = Framework::generate_with_random_weights(d, 42);
  const GeneratedDesign b = Framework::generate_with_random_weights(d, 42);
  const GeneratedDesign c = Framework::generate_with_random_weights(d, 43);
  EXPECT_EQ(a.cpp_source, b.cpp_source);
  EXPECT_NE(a.cpp_source, c.cpp_source);
}

TEST(Framework, OversizedDesignCarriesWarnings) {
  // The CIFAR network on the Zybo overflows; generation must succeed and warn.
  NetworkDescriptor d;
  d.name = "cifar_on_zybo";
  d.board = "zybo";
  d.optimize = true;
  d.input_channels = 3;
  d.input_height = 32;
  d.input_width = 32;
  LayerSpec conv1;
  conv1.type = LayerSpec::Type::kConv;
  conv1.conv.feature_maps_out = 12;
  conv1.conv.kernel_h = conv1.conv.kernel_w = 5;
  conv1.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMax, 2, 2};
  LayerSpec conv2;
  conv2.type = LayerSpec::Type::kConv;
  conv2.conv.feature_maps_out = 36;
  conv2.conv.kernel_h = conv2.conv.kernel_w = 5;
  conv2.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMax, 2, 2};
  LayerSpec lin1;
  lin1.type = LayerSpec::Type::kLinear;
  lin1.linear.neurons = 36;
  LayerSpec lin2;
  lin2.type = LayerSpec::Type::kLinear;
  lin2.linear.neurons = 10;
  d.layers = {conv1, conv2, lin1, lin2};

  const GeneratedDesign design = Framework::generate_with_random_weights(d, 1);
  EXPECT_FALSE(design.hls_report.fits());
  ASSERT_FALSE(design.warnings.empty());
  EXPECT_NE(design.warnings[0].find("zybo"), std::string::npos);
}

TEST(Framework, WriteToDirectoryDumpsEverything) {
  const GeneratedDesign design =
      Framework::generate_with_random_weights(test1_descriptor(true), 4);
  const std::string dir = cnn2fpga::util::make_temp_dir("cnn2fpga-framework");
  design.write_to(dir + "/out");

  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/usps_test1.cpp"));
  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/cnn_vivado_hls.tcl"));
  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/directives.tcl"));
  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/cnn_vivado.tcl"));
  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/hls_report.txt"));
  EXPECT_TRUE(cnn2fpga::util::file_exists(dir + "/out/descriptor.json"));

  // The dumped descriptor round-trips.
  const auto text = cnn2fpga::util::read_file(dir + "/out/descriptor.json");
  const NetworkDescriptor reparsed = NetworkDescriptor::from_json_text(text);
  EXPECT_EQ(reparsed.name, "usps_test1");
  std::filesystem::remove_all(dir);
}

TEST(Framework, NaiveVsOptimizedReportsDiffer) {
  const GeneratedDesign naive =
      Framework::generate_with_random_weights(test1_descriptor(false), 5);
  const GeneratedDesign optimized =
      Framework::generate_with_random_weights(test1_descriptor(true), 5);
  EXPECT_GT(naive.hls_report.latency_cycles, optimized.hls_report.latency_cycles);
  EXPECT_GE(optimized.hls_report.usage.lut, naive.hls_report.usage.lut);
}
