// Tests for the Network container and weight serialization, including the
// four case-study architectures of the paper's evaluation.
#include <gtest/gtest.h>

#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

using namespace cnn2fpga::nn;

TEST(Network, Test1ArchitectureShapes) {
  // Paper Sec. V-A.
  const Network net = make_test1_network();
  EXPECT_EQ(net.input_shape(), (Shape{1, 16, 16}));
  EXPECT_EQ(net.layer_count(), 4u);
  EXPECT_EQ(net.shape_after(0), (Shape{6, 12, 12}));  // conv
  EXPECT_EQ(net.shape_after(1), (Shape{6, 6, 6}));    // max-pool
  EXPECT_EQ(net.shape_after(2), (Shape{10}));         // linear
  EXPECT_EQ(net.output_shape(), (Shape{10}));         // logsoftmax
}

TEST(Network, Test3ArchitectureShapes) {
  // Paper Sec. V-C: "six 6x6 feature maps and applies sixteen 5x5 kernels.
  // The result are sixteen 2x2 feature maps."
  const Network net = make_test3_network();
  EXPECT_EQ(net.shape_after(1), (Shape{6, 6, 6}));
  EXPECT_EQ(net.shape_after(2), (Shape{16, 2, 2}));
  EXPECT_EQ(net.output_shape(), (Shape{10}));
}

TEST(Network, Test4ArchitectureShapes) {
  // Paper Sec. V-D: 32x32 RGB -> 12@28x28 -> 12@14x14 -> 36@10x10 -> 36@5x5
  // -> 36 -> 10.
  const Network net = make_test4_network();
  EXPECT_EQ(net.input_shape(), (Shape{3, 32, 32}));
  EXPECT_EQ(net.shape_after(0), (Shape{12, 28, 28}));
  EXPECT_EQ(net.shape_after(1), (Shape{12, 14, 14}));
  EXPECT_EQ(net.shape_after(2), (Shape{36, 10, 10}));
  EXPECT_EQ(net.shape_after(3), (Shape{36, 5, 5}));
  EXPECT_EQ(net.shape_after(4), (Shape{36}));
  EXPECT_EQ(net.output_shape(), (Shape{10}));
}

TEST(Network, MacCountsMatchManualArithmetic) {
  // Used to calibrate the A9 and HLS models; see DESIGN.md Sec. 5.
  const Network t1 = make_test1_network();
  // conv 21600 + pool 864 + linear 2160 + logsoftmax 20.
  EXPECT_EQ(t1.total_macs(), 21600u + 864u + 2160u + 20u);

  const Network t4 = make_test4_network();
  // conv1 705600 + pool1 9408 + conv2 1080000 + pool2 3600 + lin1 32400
  // + tanh 36 + lin2 360 + logsoftmax 20.
  EXPECT_EQ(t4.total_macs(), 705600u + 9408u + 1080000u + 3600u + 32400u + 36u + 360u + 20u);
}

TEST(Network, ParameterCounts) {
  const Network t1 = make_test1_network();
  // conv: 6*1*5*5 + 6 = 156; linear: 216*10 + 10 = 2170.
  EXPECT_EQ(t1.parameter_count(), 156u + 2170u);
}

TEST(Network, BuilderRejectsInfeasibleLayers) {
  Network net(Shape{1, 8, 8});
  net.add_conv(2, 5, 5);  // -> (2, 4, 4)
  EXPECT_THROW(net.add_conv(2, 5, 5), std::invalid_argument);  // 5x5 on 4x4
  EXPECT_EQ(net.layer_count(), 1u);  // failed add leaves network unchanged
}

TEST(Network, NonChwInputRejected) {
  EXPECT_THROW(Network(Shape{16, 16}), std::invalid_argument);
}

TEST(Network, ForwardValidatesInputShape) {
  Network net = make_test1_network();
  EXPECT_THROW(net.forward(Tensor(Shape{1, 8, 8})), std::invalid_argument);
}

TEST(Network, PredictReturnsArgmax) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(1);
  net.init_weights(rng);
  Tensor image(Shape{1, 16, 16});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor out = net.forward(image);
  EXPECT_EQ(net.predict(image), out.argmax());
}

TEST(Network, ForwardIsDeterministic) {
  Network net = make_test1_network();
  cnn2fpga::util::Rng rng(2);
  net.init_weights(rng);
  Tensor image(Shape{1, 16, 16});
  image.fill_uniform(rng, 0.0f, 1.0f);
  const Tensor a = net.forward(image);
  const Tensor b = net.forward(image);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.0f);
}

TEST(Network, ParamNamesAreLayerQualified) {
  Network net = make_test1_network();
  const auto params = net.params();
  ASSERT_EQ(params.size(), 4u);  // conv w/b + linear w/b
  EXPECT_EQ(params[0].name, "layer0.weights");
  EXPECT_EQ(params[1].name, "layer0.bias");
  EXPECT_EQ(params[2].name, "layer2.weights");
  EXPECT_EQ(params[3].name, "layer2.bias");
}

TEST(Network, StructureTraceMentionsEveryLayer) {
  const Network net = make_test4_network();
  const std::string s = net.structure();
  EXPECT_NE(s.find("conv"), std::string::npos);
  EXPECT_NE(s.find("maxpool"), std::string::npos);
  EXPECT_NE(s.find("linear"), std::string::npos);
  EXPECT_NE(s.find("tanh"), std::string::npos);
  EXPECT_NE(s.find("logsoftmax"), std::string::npos);
  EXPECT_NE(s.find("(36, 5, 5)"), std::string::npos);
}

// ------------------------------------------------------------- serialization

TEST(Serialize, RoundTripPreservesWeightsExactly) {
  Network a = make_test1_network();
  cnn2fpga::util::Rng rng(3);
  a.init_weights(rng);

  const auto bytes = serialize_weights(a);
  Network b = make_test1_network();
  deserialize_weights(b, bytes);

  Tensor image(Shape{1, 16, 16});
  image.fill_uniform(rng, 0.0f, 1.0f);
  EXPECT_EQ(Tensor::max_abs_diff(a.forward(image), b.forward(image)), 0.0f);
}

TEST(Serialize, BadMagicRejected) {
  Network net = make_test1_network();
  std::vector<std::uint8_t> bytes = {'n', 'o', 't', 'a', 'f', 'i', 'l', 'e', '!', '!', '!', '!'};
  EXPECT_THROW(deserialize_weights(net, bytes), std::runtime_error);
}

TEST(Serialize, TruncationDetected) {
  Network a = make_test1_network();
  cnn2fpga::util::Rng rng(4);
  a.init_weights(rng);
  auto bytes = serialize_weights(a);
  bytes.resize(bytes.size() / 2);
  Network b = make_test1_network();
  EXPECT_THROW(deserialize_weights(b, bytes), std::runtime_error);
}

TEST(Serialize, ArchitectureMismatchDetected) {
  Network a = make_test1_network();
  cnn2fpga::util::Rng rng(5);
  a.init_weights(rng);
  const auto bytes = serialize_weights(a);
  // Test 3 has a different layer list: loading must fail with a clear error.
  Network b = make_test3_network();
  try {
    deserialize_weights(b, bytes);
    FAIL() << "expected mismatch error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("tensors"), std::string::npos) << e.what();
  }
}

TEST(Serialize, TrailingBytesRejected) {
  Network a = make_test1_network();
  auto bytes = serialize_weights(a);
  bytes.push_back(0);
  Network b = make_test1_network();
  EXPECT_THROW(deserialize_weights(b, bytes), std::runtime_error);
}
