// Cross-module property tests (parameterized sweeps over architectures and
// directive settings).
#include <gtest/gtest.h>

#include <tuple>

#include "core/framework.hpp"
#include "cpu/a9_model.hpp"
#include "hls/estimator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace cnn2fpga;
using core::LayerSpec;
using core::NetworkDescriptor;
using core::PoolSpec;

namespace {

/// A parametric family of valid descriptors: (feature maps, kernel, neurons,
/// pooling on/off) on a 16x16 grayscale input.
NetworkDescriptor make_descriptor(std::size_t maps, std::size_t kernel, std::size_t neurons,
                                  bool pool, bool optimize) {
  NetworkDescriptor d;
  d.name = "prop_net";
  d.board = "zedboard";
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = optimize;
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = maps;
  conv.conv.kernel_h = conv.conv.kernel_w = kernel;
  if (pool) conv.conv.pool = PoolSpec{nn::PoolKind::kMax, 2, 2};
  LayerSpec lin;
  lin.type = LayerSpec::Type::kLinear;
  lin.linear.neurons = neurons;
  d.layers = {conv, lin};
  return d;
}

}  // namespace

class ArchitectureSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, bool>> {};

TEST_P(ArchitectureSweep, GenerationAndEstimationAreConsistent) {
  const auto [maps, kernel, neurons, pool] = GetParam();
  const NetworkDescriptor d = make_descriptor(maps, kernel, neurons, pool, true);

  // 1. The descriptor validates and builds a network whose output size is the
  //    neuron count.
  nn::Network net = d.build_network();
  EXPECT_EQ(net.output_shape().elements(), neurons);

  // 2. Generation succeeds and the artifacts reference the right sizes.
  const core::GeneratedDesign design = core::Framework::generate_with_random_weights(d, 1);
  EXPECT_NE(design.cpp_source.find(util::format("float scores[%zu]", neurons)),
            std::string::npos);

  // 3. Pipelining always helps latency, never hurts DSP-dominance ordering.
  const hls::HlsReport naive = hls::estimate(net, hls::DirectiveSet::naive(), hls::zedboard());
  const hls::HlsReport opt = hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
  EXPECT_LT(opt.latency_cycles, naive.latency_cycles);
  EXPECT_LE(opt.interval_cycles, opt.latency_cycles);

  // 4. The A9 baseline time grows with MAC count.
  EXPECT_GT(cpu::forward_cycles(net), net.total_macs() * 50);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArchitectureSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 6, 12),
                       ::testing::Values<std::size_t>(3, 5),
                       ::testing::Values<std::size_t>(4, 10),
                       ::testing::Bool()));

// -------------------------------------------------------------------------

class DirectiveSweep : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(DirectiveSweep, IntervalNeverExceedsLatency) {
  const auto [pipeline, dataflow] = GetParam();
  const hls::DirectiveSet directives{pipeline, dataflow};
  const nn::Network net = nn::make_test1_network();
  const hls::HlsReport report = hls::estimate(net, directives, hls::zedboard());
  EXPECT_LE(report.interval_cycles, report.latency_cycles);
  if (!dataflow) {
    EXPECT_EQ(report.interval_cycles, report.latency_cycles);
  }
  EXPECT_GT(report.usage.dsp, 0u);
  EXPECT_TRUE(report.fits());
}

INSTANTIATE_TEST_SUITE_P(Grid, DirectiveSweep,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

// -------------------------------------------------------------------------

TEST(Monotonicity, MoreFeatureMapsNeverReduceLatencyOrBram) {
  std::uint64_t prev_latency = 0, prev_bram = 0;
  for (std::size_t maps : {2u, 4u, 8u, 16u}) {
    const NetworkDescriptor d = make_descriptor(maps, 5, 10, true, true);
    nn::Network net = d.build_network();
    const hls::HlsReport report =
        hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
    EXPECT_GE(report.latency_cycles, prev_latency);
    EXPECT_GE(report.usage.bram18, prev_bram);
    prev_latency = report.latency_cycles;
    prev_bram = report.usage.bram18;
  }
}

TEST(Monotonicity, A9TimeGrowsWithNetworkSize) {
  double prev = 0.0;
  for (std::size_t maps : {2u, 6u, 12u, 24u}) {
    const NetworkDescriptor d = make_descriptor(maps, 5, 10, true, false);
    nn::Network net = d.build_network();
    const double seconds = cpu::forward_seconds(net);
    EXPECT_GT(seconds, prev);
    prev = seconds;
  }
}

TEST(Monotonicity, LargerBoardsFitMore) {
  // Each catalog entry, ordered zybo < zedboard < virtex7, fits at least as
  // much as the previous one for the same design.
  const nn::Network net = nn::make_test4_network();
  const hls::HlsReport zybo_report =
      hls::estimate(net, hls::DirectiveSet::optimized(), hls::zybo());
  const hls::HlsReport zed_report =
      hls::estimate(net, hls::DirectiveSet::optimized(), hls::zedboard());
  const hls::HlsReport v7_report = hls::estimate(net, hls::DirectiveSet::optimized(),
                                                 *hls::find_device("virtex7"));
  EXPECT_GE(zybo_report.util.worst(), zed_report.util.worst());
  EXPECT_GE(zed_report.util.worst(), v7_report.util.worst());
  EXPECT_TRUE(v7_report.fits());
}

TEST(Equivalence, DescriptorNetworkAndLoweredDesignAgreeOnStructure) {
  // The number of conv/linear blocks in the lowered IR equals the conv/linear
  // layers of the descriptor, for a family of architectures.
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t maps = 1 + rng.next_below(8);
    const std::size_t kernel = 2 + rng.next_below(4);
    const std::size_t neurons = 2 + rng.next_below(12);
    const bool pool = rng.next_below(2) == 0;
    // Pooling 2x2 requires conv output >= 2.
    const NetworkDescriptor d = make_descriptor(maps, kernel, neurons, pool, true);
    nn::Network net = d.build_network();
    const hls::HlsDesign design = hls::lower_network(net, hls::DirectiveSet::optimized());

    std::size_t conv_blocks = 0, linear_blocks = 0;
    for (const auto& block : design.blocks) {
      if (block.name.rfind("conv", 0) == 0) ++conv_blocks;
      if (block.name.rfind("linear", 0) == 0) ++linear_blocks;
    }
    EXPECT_EQ(conv_blocks, 1u);
    EXPECT_EQ(linear_blocks, 1u);
    // stream_in + layers (+pool) + logsoftmax + norm + stream_out.
    EXPECT_EQ(design.blocks.size(), pool ? 7u : 6u);
  }
}
