// SIMD-vs-scalar parity suite for the runtime-dispatched kernel engine
// (src/nn/kernels).
//
// Contracts under test (see kernels.hpp):
//   1. The AVX2 engine stays within 1e-4 relative error of the scalar
//      reference on every layer kind and produces identical argmax
//      predictions — exercised over deliberately awkward shapes: channel and
//      feature counts that are not multiples of the 8-lane vector width or
//      the 6x16 register block, 1x1 and 7x7 kernels, rectangular kernels,
//      both pool kinds, batch sizes 1/3/8.
//   2. Fused batch execution (`infer_batch`) is BIT-identical to per-image
//      `infer` through an avx2 context: every output element is produced by
//      the same lane-independent FMA chain regardless of batch size.
//   3. A scalar-pinned context stays bit-exact with Network::forward whether
//      invoked per image or batched.
//
// The suite runs meaningfully under either CNN2FPGA_KERNEL dispatch mode: it
// pins contexts explicitly, so only dispatch-default tests depend on the
// environment. AVX2-engine tests skip on hosts without AVX2+FMA.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "nn/execution.hpp"
#include "nn/fixed_inference.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/kernels/kernels_int.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

using namespace cnn2fpga;
using namespace cnn2fpga::nn;

namespace {

constexpr float kRelTol = 1e-4f;

/// |a - b| <= tol * max(1, |b|): relative for large magnitudes, absolute near
/// zero (the engine's documented tolerance policy).
void expect_close(const tensor::Tensor& simd, const tensor::Tensor& reference,
                  const std::string& context) {
  ASSERT_EQ(simd.shape(), reference.shape()) << context;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(reference[i]));
    ASSERT_LE(std::fabs(simd[i] - reference[i]), kRelTol * scale)
        << context << " element " << i << ": simd=" << simd[i]
        << " scalar=" << reference[i];
  }
}

tensor::Tensor random_input(const Shape& shape, std::uint64_t seed) {
  tensor::Tensor input{shape};
  util::Rng rng(seed);
  input.fill_uniform(rng, -1.0f, 1.0f);
  return input;
}

/// Awkward-shape architectures: nothing is a multiple of the 8-lane vector
/// width or the 6x16 microkernel block.
Network make_awkward_network(int arch, std::uint64_t seed) {
  Shape input = Shape{3, 6, 6};
  switch (arch) {
    case 0: input = Shape{3, 6, 6}; break;    // 1x1 kernels
    case 1: input = Shape{1, 12, 12}; break;  // 7x7 kernels
    case 2: input = Shape{2, 11, 9}; break;   // rectangular, mean pool, conv chain
    case 3: input = Shape{1, 1, 17}; break;   // pure MLP, odd feature counts
    default: input = Shape{5, 9, 11}; break;  // 5 channels, 5x7 kernel
  }
  Network net(input, "kernel_parity");
  switch (arch) {
    case 0:
      net.add_conv(5, 1, 1);
      net.add_activation(ActKind::kReLU);
      net.add_max_pool(2, 2);
      net.add_linear(7);
      net.add_logsoftmax();
      break;
    case 1:
      net.add_conv(4, 7, 7);
      net.add_activation(ActKind::kTanh);
      net.add_max_pool(2, 2);
      net.add_linear(10);
      net.add_logsoftmax();
      break;
    case 2:
      net.add_conv(3, 3, 2);
      net.add_mean_pool(2, 2);
      net.add_conv(7, 3, 3);
      net.add_activation(ActKind::kSigmoid);
      net.add_linear(9);
      break;
    case 3:
      net.add_linear(13);
      net.add_activation(ActKind::kSigmoid);
      net.add_linear(4);
      net.add_logsoftmax();
      break;
    default:
      net.add_conv(6, 5, 7);
      net.add_activation(ActKind::kReLU);
      net.add_max_pool(2, 2);
      net.add_linear(6);
      net.add_logsoftmax();
      break;
  }
  util::Rng rng(seed);
  net.init_weights(rng);
  return net;
}

constexpr int kArchCount = 5;

#define SKIP_WITHOUT_AVX2()                                        \
  do {                                                             \
    if (!kernels::avx2_available()) {                              \
      GTEST_SKIP() << "AVX2+FMA engine unavailable on this host."; \
    }                                                              \
  } while (false)

}  // namespace

// ----------------------------------------------------------------- dispatch

TEST(KernelDispatch, KindNamesAndOverrideRoundTrip) {
  EXPECT_STREQ(kernels::kind_name(kernels::Kind::kScalar), "scalar");
  EXPECT_STREQ(kernels::kind_name(kernels::Kind::kAvx2), "avx2");
  const kernels::Kind before = kernels::active();
  {
    kernels::ScopedKernelOverride scalar(kernels::Kind::kScalar);
    EXPECT_EQ(kernels::active(), kernels::Kind::kScalar);
  }
  EXPECT_EQ(kernels::active(), before);
}

TEST(KernelDispatch, ContextCapturesKindAtConstruction) {
  const Network net = make_awkward_network(3, 1);
  ExecutionContext scalar(net, kernels::Kind::kScalar, nullptr);
  EXPECT_EQ(scalar.kernel(), kernels::Kind::kScalar);
  if (kernels::avx2_available()) {
    ExecutionContext simd(net, kernels::Kind::kAvx2, nullptr);
    EXPECT_EQ(simd.kernel(), kernels::Kind::kAvx2);
  }
}

// -------------------------------------------------------------- raw kernels

TEST(KernelGemm, MatchesNaiveReferenceOnAwkwardShapes) {
  SKIP_WITHOUT_AVX2();
  struct Case {
    std::size_t m, k, n;
  };
  // Nothing aligned: primes straddling the 6-row / 16-column block, plus the
  // degenerate single-element and single-column (GEMV) cases.
  const Case cases[] = {{1, 1, 1},   {5, 7, 3},   {6, 16, 16}, {7, 17, 33},
                        {13, 50, 29}, {2, 300, 100}, {10, 75, 1}};
  util::Rng rng(11);
  for (const Case& c : cases) {
    std::vector<float> a(c.m * c.k), b(c.n * c.k), bias(c.m);
    for (float& v : a) v = rng.uniform(-1.0f, 1.0f);
    for (float& v : b) v = rng.uniform(-1.0f, 1.0f);
    for (float& v : bias) v = rng.uniform(-0.5f, 0.5f);

    kernels::PackedA pa;
    kernels::pack_a(a.data(), c.m, c.k, pa);
    util::aligned_vector<float> bp(kernels::packed_b_size(c.n, c.k));
    std::vector<const float*> rows(c.n);
    for (std::size_t i = 0; i < c.n; ++i) rows[i] = b.data() + i * c.k;
    kernels::pack_b(rows.data(), c.n, c.k, bp.data());

    for (int act = -1; act <= 2; ++act) {
      std::vector<float> got(c.m * c.n, -777.0f);
      kernels::gemm(pa, bp.data(), c.n, bias.data(), act, got.data(), c.n);
      for (std::size_t mi = 0; mi < c.m; ++mi) {
        for (std::size_t ni = 0; ni < c.n; ++ni) {
          float want = bias[mi];
          for (std::size_t ki = 0; ki < c.k; ++ki) {
            want += a[mi * c.k + ki] * b[ni * c.k + ki];
          }
          if (act >= 0) want = Activation::apply(static_cast<ActKind>(act), want);
          const float scale = std::max(1.0f, std::fabs(want));
          ASSERT_LE(std::fabs(got[mi * c.n + ni] - want), kRelTol * scale)
              << c.m << "x" << c.k << "x" << c.n << " act " << act << " at (" << mi
              << "," << ni << ")";
        }
      }
    }
  }
}

TEST(KernelElementwise, ActivationMatchesScalarIncludingSaturation) {
  SKIP_WITHOUT_AVX2();
  // 13 elements: one full vector plus a 5-lane masked tail. Values span the
  // saturating range of tanh/sigmoid and both ReLU branches.
  const std::vector<float> xs = {-30.0f, -5.5f, -2.0f, -0.75f, -0.1f, -1e-6f, 0.0f,
                                 1e-6f,  0.1f,  0.75f, 2.0f,   5.5f,  30.0f};
  for (const ActKind act : {ActKind::kTanh, ActKind::kSigmoid, ActKind::kReLU}) {
    std::vector<float> got(xs.size());
    kernels::activation_apply(act, xs.data(), got.data(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const float want = Activation::apply(act, xs[i]);
      const float scale = std::max(1.0f, std::fabs(want));
      ASSERT_LE(std::fabs(got[i] - want), kRelTol * scale)
          << "act " << static_cast<int>(act) << " x=" << xs[i];
    }
  }
}

TEST(KernelElementwise, ActivationIsChunkInvariant) {
  SKIP_WITHOUT_AVX2();
  // The same element must get the same bits whether it sits mid-buffer (full
  // vector) or in a masked tail — this is what makes fused-batch execution
  // bit-identical to per-image execution.
  util::Rng rng(5);
  std::vector<float> xs(30);
  for (float& v : xs) v = rng.uniform(-4.0f, 4.0f);
  std::vector<float> whole(xs.size());
  kernels::activation_apply(ActKind::kTanh, xs.data(), whole.data(), xs.size());
  for (const std::size_t chunk : {1u, 3u, 7u, 10u}) {
    std::vector<float> pieces(xs.size());
    for (std::size_t off = 0; off < xs.size(); off += chunk) {
      const std::size_t len = std::min(chunk, xs.size() - off);
      kernels::activation_apply(ActKind::kTanh, xs.data() + off, pieces.data() + off, len);
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(whole[i], pieces[i]) << "chunk " << chunk << " element " << i;
    }
  }
}

TEST(KernelPool, PlaneMatchesSeedPoolForMaxAndMean) {
  SKIP_WITHOUT_AVX2();
  struct Case {
    std::size_t ih, iw, k, step;
  };
  const Case cases[] = {{9, 11, 2, 2}, {7, 7, 3, 2}, {12, 5, 2, 1}, {6, 6, 3, 3}};
  util::Rng rng(17);
  for (const Case& c : cases) {
    for (const PoolKind kind : {PoolKind::kMax, PoolKind::kMean}) {
      Pool2D pool(kind, c.k, c.k, c.step);
      tensor::Tensor in(Shape{1, c.ih, c.iw});
      in.fill_uniform(rng, -2.0f, 2.0f);
      tensor::Tensor want(pool.output_shape(in.shape()));
      pool.infer_into(in, want);

      tensor::Tensor got(want.shape());
      util::aligned_vector<float> row_scratch(c.iw);
      kernels::pool_plane(kind == PoolKind::kMax, in.data(), c.ih, c.iw, c.k, c.k,
                          c.step, want.shape().height(), want.shape().width(),
                          got.data(), row_scratch.data());
      if (kind == PoolKind::kMax) {
        // Max is order-independent: value-exact.
        for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]);
      } else {
        expect_close(got, want, "mean pool");
      }
    }
  }
}

TEST(KernelLogSoftmax, MatchesSeedAndPreservesArgmax) {
  SKIP_WITHOUT_AVX2();
  util::Rng rng(23);
  for (const std::size_t n : {2u, 8u, 10u, 13u, 40u}) {
    tensor::Tensor logits(Shape{n});
    logits.fill_uniform(rng, -6.0f, 6.0f);
    LogSoftMax lsm;
    tensor::Tensor want(logits.shape());
    lsm.infer_into(logits, want);
    tensor::Tensor got(logits.shape());
    kernels::logsoftmax(logits.data(), got.data(), n);
    expect_close(got, want, "logsoftmax n=" + std::to_string(n));
    EXPECT_EQ(got.argmax(), want.argmax());
  }
}

// ----------------------------------------------- network-level SIMD parity

TEST(KernelParity, SimdWithinToleranceOfScalarAcrossAwkwardArchitectures) {
  SKIP_WITHOUT_AVX2();
  for (int arch = 0; arch < kArchCount; ++arch) {
    const Network net = make_awkward_network(arch, 100u + static_cast<std::uint64_t>(arch));
    ExecutionContext scalar(net, kernels::Kind::kScalar, nullptr);
    ExecutionContext simd(net, kernels::Kind::kAvx2, nullptr);
    for (std::uint64_t i = 0; i < 6; ++i) {
      const tensor::Tensor input = random_input(net.input_shape(), 1000 * i + 13);
      const tensor::Tensor want = net.infer(input, scalar);  // copy before reuse
      const tensor::Tensor& got = net.infer(input, simd);
      expect_close(got, want, "arch " + std::to_string(arch) + " input " + std::to_string(i));
      EXPECT_EQ(got.argmax(), want.argmax())
          << "arch " << arch << " input " << i << ": SIMD changed the prediction";
    }
  }
}

TEST(KernelParity, BatchFusionBitIdenticalToPerImageInfer) {
  SKIP_WITHOUT_AVX2();
  for (int arch = 0; arch < kArchCount; ++arch) {
    const Network net = make_awkward_network(arch, 200u + static_cast<std::uint64_t>(arch));
    ExecutionContext ctx(net, kernels::Kind::kAvx2, nullptr);
    std::vector<tensor::Tensor> images;
    std::vector<tensor::Tensor> per_image;
    for (std::uint64_t i = 0; i < 8; ++i) {
      images.push_back(random_input(net.input_shape(), 3000 + i));
      per_image.push_back(net.infer(images.back(), ctx));  // copy
    }
    for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      const std::vector<tensor::Tensor> subset(images.begin(),
                                               images.begin() + static_cast<long>(batch));
      const std::vector<tensor::Tensor> fused = net.infer_batch(subset, ctx);
      ASSERT_EQ(fused.size(), batch);
      for (std::size_t b = 0; b < batch; ++b) {
        ASSERT_EQ(fused[b].shape(), per_image[b].shape());
        // Bit-for-bit: batching must not change a single float.
        ASSERT_EQ(std::memcmp(fused[b].data(), per_image[b].data(),
                              fused[b].size() * sizeof(float)),
                  0)
            << "arch " << arch << " batch " << batch << " image " << b;
      }
    }
  }
}

TEST(KernelParity, ScalarBatchStaysBitExactWithForward) {
  for (int arch = 0; arch < kArchCount; ++arch) {
    Network net = make_awkward_network(arch, 300u + static_cast<std::uint64_t>(arch));
    ExecutionContext ctx(net, kernels::Kind::kScalar, nullptr);
    std::vector<tensor::Tensor> images;
    for (std::uint64_t i = 0; i < 3; ++i) {
      images.push_back(random_input(net.input_shape(), 4000 + i));
    }
    const std::vector<tensor::Tensor> batched = net.infer_batch(images, ctx);
    for (std::size_t b = 0; b < images.size(); ++b) {
      const tensor::Tensor want = net.forward(images[b], /*train=*/false);
      for (std::size_t e = 0; e < want.size(); ++e) {
        ASSERT_EQ(batched[b][e], want[e]) << "arch " << arch << " image " << b;
      }
    }
  }
}

TEST(KernelParity, SharedPackCacheGivesIdenticalResults) {
  SKIP_WITHOUT_AVX2();
  // Pooled contexts share one PackCache; a private context packs its own.
  // Identical weights must produce identical bits either way.
  const Network net = make_awkward_network(2, 55);
  ExecutionContextPool pool(net, kernels::Kind::kAvx2);
  pool.warm();
  ExecutionContext solo(net, kernels::Kind::kAvx2, nullptr);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const tensor::Tensor input = random_input(net.input_shape(), 5000 + i);
    const tensor::Tensor want = net.infer(input, solo);
    auto lease = pool.acquire();
    const tensor::Tensor& got = net.infer(input, *lease);
    for (std::size_t e = 0; e < want.size(); ++e) ASSERT_EQ(got[e], want[e]);
  }
}

TEST(KernelParity, DefaultDispatchPredictsSameClassAsScalar) {
  // Whatever CNN2FPGA_KERNEL resolves to, end-user predictions must agree
  // with the scalar oracle on every fixture.
  for (int arch = 0; arch < kArchCount; ++arch) {
    const Network net = make_awkward_network(arch, 400u + static_cast<std::uint64_t>(arch));
    ExecutionContext scalar(net, kernels::Kind::kScalar, nullptr);
    for (std::uint64_t i = 0; i < 4; ++i) {
      const tensor::Tensor input = random_input(net.input_shape(), 6000 + i);
      EXPECT_EQ(net.predict(input), net.infer(input, scalar).argmax())
          << "arch " << arch << " input " << i;
    }
  }
}

// ------------------------------------------------- quantized kernel parity
//
// The quantized engines claim something stronger than the float 1e-4
// tolerance: every product and int32 add is exact, so the scalar-int
// reference and the AVX2 int kernels must agree BIT-for-bit on every input,
// and (int16 always; int8 whenever no weight hits the +/-31 clamp) match
// nn::forward_fixed's fixed-point model exactly.

namespace {

std::vector<std::int8_t> random_raw_s8(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int8_t> out(n);
  for (auto& v : out) v = static_cast<std::int8_t>(rng.next_below(256) - 128);
  return out;
}

std::vector<std::int16_t> random_raw_s16(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::int16_t> out(n);
  for (auto& v : out) v = static_cast<std::int16_t>(rng.next_below(65536) - 32768);
  return out;
}

struct GemmShape {
  std::size_t m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1}, {5, 3, 17}, {6, 8, 16}, {7, 19, 33}, {13, 40, 50}, {12, 75, 31}};

ExecutionContext quant_ctx(const Network& net, kernels::Kind kind, ServePrecision p) {
  return ExecutionContext(net, kind, nullptr, p, nullptr);
}

}  // namespace

TEST(QuantPrecision, NamesParseAndFormatsRoundTrip) {
  EXPECT_STREQ(serve_precision_name(ServePrecision::kFloat32), "float32");
  EXPECT_STREQ(serve_precision_name(ServePrecision::kInt16), "int16");
  EXPECT_STREQ(serve_precision_name(ServePrecision::kInt8), "int8");
  ServePrecision p = ServePrecision::kFloat32;
  EXPECT_TRUE(parse_serve_precision("int8", p));
  EXPECT_EQ(p, ServePrecision::kInt8);
  EXPECT_TRUE(parse_serve_precision("int16", p));
  EXPECT_EQ(p, ServePrecision::kInt16);
  EXPECT_TRUE(parse_serve_precision("float32", p));
  EXPECT_EQ(p, ServePrecision::kFloat32);
  EXPECT_FALSE(parse_serve_precision("bf16", p));
  const FixedPointFormat q44 = serve_precision_format(ServePrecision::kInt8);
  EXPECT_EQ(q44.total_bits, 8u);
  EXPECT_EQ(q44.frac_bits, 4u);
  const FixedPointFormat q88 = serve_precision_format(ServePrecision::kInt16);
  EXPECT_EQ(q88.total_bits, 16u);
  EXPECT_EQ(q88.frac_bits, 8u);
  EXPECT_THROW(serve_precision_format(ServePrecision::kFloat32), std::invalid_argument);
}

TEST(QuantGemm, Int8RefVsAvx2BitExactOnAwkwardShapes) {
  SKIP_WITHOUT_AVX2();
  const FixedPointFormat fmt = serve_precision_format(ServePrecision::kInt8);
  std::uint64_t seed = 71;
  for (const GemmShape& sh : kGemmShapes) {
    util::Rng rng(seed++);
    std::vector<float> w(sh.m * sh.k), bias(sh.m);
    for (auto& v : w) v = static_cast<float>(rng.uniform(-1.5, 1.5));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    kernels::PackedWeightsS8 wp;
    kernels::pack_weights_s8(w.data(), bias.data(), sh.m, sh.k, fmt, wp);

    std::vector<std::vector<std::int8_t>> rows(sh.n);
    std::vector<const void*> row_ptrs(sh.n);
    for (std::size_t i = 0; i < sh.n; ++i) {
      rows[i] = random_raw_s8(sh.k, seed++);
      row_ptrs[i] = rows[i].data();
    }
    util::aligned_vector<std::uint8_t> bpack(kernels::packed_b_size_s8(sh.n, sh.k));
    kernels::pack_b_s8(row_ptrs.data(), sh.n, sh.k, bpack.data());
    kernels::finish_pack_s8(bpack.data(), sh.n, sh.k);

    for (const int act : {-1, static_cast<int>(ActKind::kReLU)}) {
      std::vector<std::int8_t> c_ref(sh.m * sh.n, 99), c_simd(sh.m * sh.n, -99);
      kernels::gemm_s8(kernels::Kind::kScalar, wp, bpack.data(), sh.n, fmt, act,
                       c_ref.data(), sh.n);
      kernels::gemm_s8(kernels::Kind::kAvx2, wp, bpack.data(), sh.n, fmt, act,
                       c_simd.data(), sh.n);
      ASSERT_EQ(std::memcmp(c_ref.data(), c_simd.data(), c_ref.size()), 0)
          << "m=" << sh.m << " k=" << sh.k << " n=" << sh.n << " act=" << act;
    }
  }
}

TEST(QuantGemm, Int16RefVsAvx2BitExactOnAwkwardShapes) {
  SKIP_WITHOUT_AVX2();
  const FixedPointFormat fmt = serve_precision_format(ServePrecision::kInt16);
  std::uint64_t seed = 171;
  for (const GemmShape& sh : kGemmShapes) {
    util::Rng rng(seed++);
    std::vector<float> w(sh.m * sh.k), bias(sh.m);
    for (auto& v : w) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    kernels::PackedWeightsS16 wp;
    kernels::pack_weights_s16(w.data(), bias.data(), sh.m, sh.k, fmt, wp);

    std::vector<std::vector<std::int16_t>> rows(sh.n);
    std::vector<const void*> row_ptrs(sh.n);
    for (std::size_t i = 0; i < sh.n; ++i) {
      rows[i] = random_raw_s16(sh.k, seed++);
      row_ptrs[i] = rows[i].data();
    }
    util::aligned_vector<std::int16_t> bpack(kernels::packed_b_size_s16(sh.n, sh.k));
    kernels::pack_b_s16(row_ptrs.data(), sh.n, sh.k, bpack.data());
    kernels::finish_pack_s16(bpack.data(), sh.n, sh.k);

    for (const int act : {-1, static_cast<int>(ActKind::kReLU)}) {
      std::vector<std::int16_t> c_ref(sh.m * sh.n, 99), c_simd(sh.m * sh.n, -99);
      kernels::gemm_s16(kernels::Kind::kScalar, wp, bpack.data(), sh.n, fmt, act,
                        c_ref.data(), sh.n);
      kernels::gemm_s16(kernels::Kind::kAvx2, wp, bpack.data(), sh.n, fmt, act,
                        c_simd.data(), sh.n);
      ASSERT_EQ(std::memcmp(c_ref.data(), c_simd.data(), c_ref.size() * sizeof(std::int16_t)),
                0)
          << "m=" << sh.m << " k=" << sh.k << " n=" << sh.n << " act=" << act;
    }
  }
}

TEST(QuantParity, ScalarVsAvx2BitExactAcrossArchitectures) {
  SKIP_WITHOUT_AVX2();
  for (const ServePrecision prec : {ServePrecision::kInt8, ServePrecision::kInt16}) {
    for (int arch = 0; arch < kArchCount; ++arch) {
      const Network net =
          make_awkward_network(arch, 500u + static_cast<std::uint64_t>(arch));
      ExecutionContext scalar = quant_ctx(net, kernels::Kind::kScalar, prec);
      ExecutionContext simd = quant_ctx(net, kernels::Kind::kAvx2, prec);
      for (std::uint64_t i = 0; i < 4; ++i) {
        const tensor::Tensor input = random_input(net.input_shape(), 7000 * i + 3);
        const tensor::Tensor want = net.infer(input, scalar);  // copy before reuse
        const tensor::Tensor& got = net.infer(input, simd);
        ASSERT_EQ(got.shape(), want.shape());
        ASSERT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(float)), 0)
            << serve_precision_name(prec) << " arch " << arch << " input " << i;
      }
    }
  }
}

TEST(QuantParity, BatchFusionBitIdenticalToPerImageQuantInfer) {
  for (const kernels::Kind kind : {kernels::Kind::kScalar, kernels::Kind::kAvx2}) {
    if (kind == kernels::Kind::kAvx2 && !kernels::avx2_available()) continue;
    for (const ServePrecision prec : {ServePrecision::kInt8, ServePrecision::kInt16}) {
      for (int arch = 0; arch < kArchCount; ++arch) {
        const Network net =
            make_awkward_network(arch, 600u + static_cast<std::uint64_t>(arch));
        ExecutionContext ctx = quant_ctx(net, kind, prec);
        std::vector<tensor::Tensor> images;
        std::vector<tensor::Tensor> per_image;
        for (std::uint64_t i = 0; i < 8; ++i) {
          images.push_back(random_input(net.input_shape(), 8000 + i));
          per_image.push_back(net.infer(images.back(), ctx));  // copy
        }
        for (const std::size_t batch : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
          const std::vector<tensor::Tensor> subset(
              images.begin(), images.begin() + static_cast<long>(batch));
          const std::vector<tensor::Tensor> fused = net.infer_batch(subset, ctx);
          ASSERT_EQ(fused.size(), batch);
          for (std::size_t b = 0; b < batch; ++b) {
            ASSERT_EQ(fused[b].shape(), per_image[b].shape());
            ASSERT_EQ(std::memcmp(fused[b].data(), per_image[b].data(),
                                  fused[b].size() * sizeof(float)),
                      0)
                << kernels::kind_name(kind) << " " << serve_precision_name(prec)
                << " arch " << arch << " batch " << batch << " image " << b;
          }
        }
      }
    }
  }
}

namespace {

/// True if quantizing any conv/linear layer of `net` at Q4.4 hits the int8
/// weight clamp (the only case where the int8 engine may diverge from
/// forward_fixed).
bool any_int8_weight_clamped(const Network& net) {
  const FixedPointFormat fmt = serve_precision_format(ServePrecision::kInt8);
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const Layer& layer = net.layer(i);
    kernels::PackedWeightsS8 wp;
    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      const std::size_t k = conv->in_channels() * conv->kernel_h() * conv->kernel_w();
      kernels::pack_weights_s8(conv->weights().data(), conv->bias().data(),
                               conv->out_channels(), k, fmt, wp);
    } else if (const auto* lin = dynamic_cast<const Linear*>(&layer)) {
      kernels::pack_weights_s8(lin->weights().data(), lin->bias().data(),
                               lin->out_features(), lin->in_features(), fmt, wp);
    } else {
      continue;
    }
    if (wp.clamped) return true;
  }
  return false;
}

}  // namespace

TEST(QuantParity, MatchesForwardFixedModelBitExact) {
  // int16 (Q8.8) must always match forward_fixed; int8 (Q4.4) must match
  // whenever no weight exceeds the clamp — true for every LeCun-initialized
  // fixture here (asserted, so a regression in either claim fails loudly).
  for (const ServePrecision prec : {ServePrecision::kInt8, ServePrecision::kInt16}) {
    const FixedPointFormat fmt = serve_precision_format(prec);
    for (int arch = 0; arch < kArchCount; ++arch) {
      const Network net =
          make_awkward_network(arch, 700u + static_cast<std::uint64_t>(arch));
      if (prec == ServePrecision::kInt8) {
        ASSERT_FALSE(any_int8_weight_clamped(net))
            << "fixture unexpectedly clamps; pick a different seed";
      }
      ExecutionContext qctx = quant_ctx(net, kernels::Kind::kScalar, prec);
      for (std::uint64_t i = 0; i < 4; ++i) {
        const tensor::Tensor input = random_input(net.input_shape(), 9000 * i + 1);
        const FixedForwardResult want = forward_fixed(net, input, fmt);
        const tensor::Tensor& got = net.infer(input, qctx);
        ASSERT_EQ(got.shape(), want.scores.shape());
        ASSERT_EQ(std::memcmp(got.data(), want.scores.data(),
                              got.size() * sizeof(float)),
                  0)
            << serve_precision_name(prec) << " arch " << arch << " input " << i;
        EXPECT_EQ(got.argmax(), want.predicted);
      }
    }
  }
}

TEST(QuantParity, SharedQuantPackCacheGivesIdenticalResults) {
  // Pooled quantized contexts share one QuantPackCache; a private context
  // quantizes + packs its own. Same weights -> same bits either way.
  const Network net = make_awkward_network(4, 77);
  for (const ServePrecision prec : {ServePrecision::kInt8, ServePrecision::kInt16}) {
    ExecutionContextPool pool(net, kernels::Kind::kScalar, prec);
    pool.warm();
    ExecutionContext solo = quant_ctx(net, kernels::Kind::kScalar, prec);
    for (std::uint64_t i = 0; i < 3; ++i) {
      const tensor::Tensor input = random_input(net.input_shape(), 10000 + i);
      const tensor::Tensor want = net.infer(input, solo);
      auto lease = pool.acquire();
      EXPECT_EQ(lease->precision(), prec);
      const tensor::Tensor& got = net.infer(input, *lease);
      ASSERT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(float)), 0);
    }
  }
}
