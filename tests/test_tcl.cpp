// Tests for the tcl script generator (Vivado HLS + Vivado Design Suite flow).
#include <gtest/gtest.h>

#include "core/codegen_tcl.hpp"

using namespace cnn2fpga::core;

namespace {
NetworkDescriptor descriptor(bool optimize, const std::string& board = "zedboard") {
  NetworkDescriptor d;
  d.name = "usps_test1";
  d.board = board;
  d.input_channels = 1;
  d.input_height = 16;
  d.input_width = 16;
  d.optimize = optimize;
  LayerSpec conv;
  conv.type = LayerSpec::Type::kConv;
  conv.conv.feature_maps_out = 6;
  conv.conv.kernel_h = conv.conv.kernel_w = 5;
  conv.conv.pool = PoolSpec{cnn2fpga::nn::PoolKind::kMax, 2, 2};
  LayerSpec lin;
  lin.type = LayerSpec::Type::kLinear;
  lin.linear.neurons = 10;
  d.layers = {conv, lin};
  return d;
}
}  // namespace

TEST(Tcl, ThreeFilesGenerated) {
  const NetworkDescriptor d = descriptor(true);
  const auto files = generate_tcl_files(d, d.build_network());
  ASSERT_EQ(files.size(), 3u);
  EXPECT_TRUE(files.count("cnn_vivado_hls.tcl"));
  EXPECT_TRUE(files.count("directives.tcl"));
  EXPECT_TRUE(files.count("cnn_vivado.tcl"));
}

TEST(Tcl, HlsScriptTargetsRightPartAndClock) {
  const NetworkDescriptor d = descriptor(false);
  const std::string tcl = generate_vivado_hls_tcl(d);
  EXPECT_NE(tcl.find("set_top cnn_xtop"), std::string::npos);
  EXPECT_NE(tcl.find("set_part {xc7z020clg484-1}"), std::string::npos);
  EXPECT_NE(tcl.find("create_clock -period 10"), std::string::npos);
  EXPECT_NE(tcl.find("source directives.tcl"), std::string::npos);
  EXPECT_NE(tcl.find("csynth_design"), std::string::npos);
  EXPECT_NE(tcl.find("export_design -format ip_catalog"), std::string::npos);
  EXPECT_NE(tcl.find("add_files usps_test1.cpp"), std::string::npos);
}

TEST(Tcl, ZyboSelectsZynq010Part) {
  const NetworkDescriptor d = descriptor(false, "zybo");
  EXPECT_NE(generate_vivado_hls_tcl(d).find("xc7z010clg400-1"), std::string::npos);
  EXPECT_NE(generate_vivado_tcl(d).find("xc7z010clg400-1"), std::string::npos);
}

TEST(Tcl, DirectivesAlwaysDeclareStreamInterfaces) {
  const NetworkDescriptor d = descriptor(false);
  const std::string tcl = generate_directives_tcl(d, d.build_network());
  EXPECT_NE(tcl.find("set_directive_interface -mode axis \"cnn_xtop\" in_stream"),
            std::string::npos);
  EXPECT_NE(tcl.find("set_directive_interface -mode axis \"cnn_xtop\" out_stream"),
            std::string::npos);
  EXPECT_NE(tcl.find("set_directive_interface -mode s_axilite \"cnn_xtop\" return"),
            std::string::npos);
}

TEST(Tcl, NaiveDirectivesContainNoOptimizations) {
  const NetworkDescriptor d = descriptor(false);
  const std::string tcl = generate_directives_tcl(d, d.build_network());
  EXPECT_EQ(tcl.find("set_directive_dataflow"), std::string::npos);
  EXPECT_EQ(tcl.find("set_directive_pipeline"), std::string::npos);
}

TEST(Tcl, OptimizedDirectivesPipelineEveryReductionLoop) {
  const NetworkDescriptor d = descriptor(true);
  const std::string tcl = generate_directives_tcl(d, d.build_network());
  EXPECT_NE(tcl.find("set_directive_dataflow \"cnn_core\""), std::string::npos);
  // Layer 0 is the conv (reduction loop L0_c), layer 2 the linear (L2_i).
  EXPECT_NE(tcl.find("set_directive_pipeline -II 1 \"cnn_core/L0_c\""), std::string::npos);
  EXPECT_NE(tcl.find("set_directive_pipeline -II 1 \"cnn_core/L2_i\""), std::string::npos);
}

TEST(Tcl, BlockDesignInstantiatesAllFig5Blocks) {
  const NetworkDescriptor d = descriptor(true);
  const std::string tcl = generate_vivado_tcl(d);
  // The five blocks of Fig. 5.
  EXPECT_NE(tcl.find("processing_system7"), std::string::npos);
  EXPECT_NE(tcl.find("axi_dma"), std::string::npos);
  EXPECT_NE(tcl.find("axi_interconnect_ctrl"), std::string::npos);
  EXPECT_NE(tcl.find("axi_interconnect_data"), std::string::npos);
  EXPECT_NE(tcl.find("proc_sys_reset"), std::string::npos);
  EXPECT_NE(tcl.find("xilinx.com:hls:cnn_xtop:1.0"), std::string::npos);
}

TEST(Tcl, BlockDesignWiresStreamsAndFinishesWithBitstream) {
  const NetworkDescriptor d = descriptor(true);
  const std::string tcl = generate_vivado_tcl(d);
  EXPECT_NE(tcl.find("M_AXIS_MM2S"), std::string::npos);
  EXPECT_NE(tcl.find("S_AXIS_S2MM"), std::string::npos);
  EXPECT_NE(tcl.find("S_AXI_HP0"), std::string::npos);
  EXPECT_NE(tcl.find("validate_bd_design"), std::string::npos);
  EXPECT_NE(tcl.find("make_wrapper"), std::string::npos);
  EXPECT_NE(tcl.find("write_bitstream"), std::string::npos);
}

TEST(Tcl, NamesAreSanitizedForTclAndFiles) {
  NetworkDescriptor d = descriptor(false);
  d.name = "my net-1";
  const std::string tcl = generate_vivado_hls_tcl(d);
  EXPECT_NE(tcl.find("add_files my_net_1.cpp"), std::string::npos);
  EXPECT_EQ(tcl.find("my net-1.cpp"), std::string::npos);
}
