// Unit tests for the JSON substrate (descriptor transport format).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "json/json.hpp"

namespace json = cnn2fpga::json;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("3.25").as_double(), 3.25);
  EXPECT_EQ(json::parse("-17").as_int(), -17);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, NumbersEdgeCases) {
  EXPECT_DOUBLE_EQ(json::parse("0").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.5").as_double(), -0.5);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(json::parse("2.5E-2").as_double(), 0.025);
  EXPECT_THROW(json::parse("01"), json::JsonError);     // leading zero
  EXPECT_THROW(json::parse("1."), json::JsonError);     // digit after point
  EXPECT_THROW(json::parse("1e"), json::JsonError);     // exponent digits
  EXPECT_THROW(json::parse("+1"), json::JsonError);     // leading plus
  EXPECT_THROW(json::parse("NaN"), json::JsonError);
}

TEST(JsonParse, StringsAndEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(json::parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(json::parse(R"("é")").as_string(), "\xc3\xa9");          // e-acute UTF-8
  EXPECT_EQ(json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // emoji pair
  EXPECT_THROW(json::parse(R"("\ud83d")"), json::JsonError);   // unpaired surrogate
  EXPECT_THROW(json::parse(R"("\x41")"), json::JsonError);     // bad escape
  EXPECT_THROW(json::parse("\"raw\ncontrol\""), json::JsonError);
}

TEST(JsonParse, ArraysAndObjects) {
  const auto v = json::parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[2].as_int(), 3);
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), json::JsonError);
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto v = json::parse(" \n\t{ \"k\" :\r\n [ ] } ");
  EXPECT_TRUE(v.at("k").as_array().empty());
}

TEST(JsonParse, Malformed) {
  EXPECT_THROW(json::parse(""), json::JsonError);
  EXPECT_THROW(json::parse("{"), json::JsonError);
  EXPECT_THROW(json::parse("[1,]"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":1,}"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\" 1}"), json::JsonError);
  EXPECT_THROW(json::parse("{1: 2}"), json::JsonError);
  EXPECT_THROW(json::parse("[1] trailing"), json::JsonError);
}

TEST(JsonParse, ErrorMessagesCarryPosition) {
  try {
    json::parse("{\n  \"a\": bogus\n}");
    FAIL() << "expected JsonError";
  } catch (const json::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(JsonParse, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "[";
  for (int i = 0; i < 400; ++i) deep += "]";
  EXPECT_THROW(json::parse(deep), json::JsonError);
  // 100 levels is fine.
  std::string ok;
  for (int i = 0; i < 100; ++i) ok += "[";
  for (int i = 0; i < 100; ++i) ok += "]";
  EXPECT_NO_THROW(json::parse(ok));
}

TEST(JsonDump, RoundTripsCompact) {
  const std::string text =
      R"({"arr":[1,2.5,"s",null,true],"num":-3,"obj":{"nested":[{"x":1}]}})";
  const auto v = json::parse(text);
  EXPECT_EQ(json::parse(v.dump()), v);
  EXPECT_EQ(v.dump(), text);  // std::map keys already sorted in input
}

TEST(JsonDump, PrettyRoundTrips) {
  const auto v = json::parse(R"({"a":[1,2],"b":{"c":"x"}})");
  const std::string pretty = v.dump(/*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(json::parse(pretty), v);
}

TEST(JsonDump, EscapesControlCharacters) {
  json::Value v(std::string("a\nb\x01"));
  const std::string out = v.dump();
  EXPECT_EQ(out, "\"a\\nb\\u0001\"");
  EXPECT_EQ(json::parse(out), v);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(-1.0).dump(), "-1");
  EXPECT_EQ(json::Value(0.5).dump(), "0.5");
}

TEST(JsonDump, DoubleRoundTripExact) {
  const double tricky = 0.1 + 0.2;
  json::Value v(tricky);
  EXPECT_DOUBLE_EQ(json::parse(v.dump()).as_double(), tricky);
}

TEST(JsonDump, NonFiniteBecomesNull) {
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(json::Value(std::nan("")).dump(), "null");
}

TEST(JsonValue, TypedAccessErrors) {
  const json::Value v(1.5);
  EXPECT_THROW(v.as_string(), json::JsonError);
  EXPECT_THROW(v.as_array(), json::JsonError);
  EXPECT_THROW(v.as_bool(), json::JsonError);
  EXPECT_THROW(v.as_int(), json::JsonError);  // non-integral
  EXPECT_NO_THROW(json::Value(2.0).as_int());
}

TEST(JsonValue, TypedLookupsWithDefaults) {
  const auto v = json::parse(R"({"i": 3, "d": 1.5, "b": true, "s": "x"})");
  EXPECT_EQ(v.get_int("i", 0), 3);
  EXPECT_EQ(v.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0), 1.5);
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_EQ(v.get_string("i", "fallback"), "fallback");  // wrong type -> default
}

TEST(JsonValue, MutableObjectBuilding) {
  json::Value v;  // null
  v["a"] = json::Value(1);
  v["b"]["c"] = json::Value("deep");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").at("c").as_string(), "deep");
}
