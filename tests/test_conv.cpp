// Tests for the convolutional layer (paper Eq. 1-3).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/conv.hpp"
#include "util/rng.hpp"

using cnn2fpga::nn::Conv2D;
using cnn2fpga::nn::Shape;
using cnn2fpga::nn::Tensor;

TEST(Conv, OutputShapeFollowsEq2And3) {
  Conv2D conv(1, 6, 5, 5);
  const Shape out = conv.output_shape(Shape{1, 16, 16});
  // Paper Test 1: 16x16 input, 5x5 kernels -> 12x12 feature maps.
  EXPECT_EQ(out, (Shape{6, 12, 12}));
}

TEST(Conv, IdentityKernelPassesThrough) {
  // A 1x1 kernel with weight 1, bias 0 copies the input.
  Conv2D conv(1, 1, 1, 1);
  conv.weights()[0] = 1.0f;
  Tensor x(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv, HandComputedValue) {
  // 2x2 kernel [[1,2],[3,4]], bias 10, on a 3x3 ramp image.
  Conv2D conv(1, 1, 2, 2);
  conv.weights()[0] = 1.0f;
  conv.weights()[1] = 2.0f;
  conv.weights()[2] = 3.0f;
  conv.weights()[3] = 4.0f;
  conv.bias()[0] = 10.0f;
  Tensor x(Shape{1, 3, 3});
  for (std::size_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i);  // 0..8 row-major
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 2}));
  // o(0,0) = 0*1 + 1*2 + 3*3 + 4*4 + 10 = 37
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 37.0f);
  // o(0,1) = 1 + 2*2 + 4*3 + 5*4 + 10 = 47
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 47.0f);
  // o(1,0) = 3 + 4*2 + 6*3 + 7*4 + 10 = 67
  EXPECT_FLOAT_EQ(y.at(0, 1, 0), 67.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 77.0f);
}

TEST(Conv, MultiChannelSumsAcrossInputs) {
  // Two input channels, kernel weight 1 everywhere: output = sum over window
  // of both channels.
  Conv2D conv(2, 1, 2, 2);
  conv.weights().fill(1.0f);
  Tensor x(Shape{2, 2, 2});
  x.fill(1.0f);
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 8.0f);  // 2 channels * 4 window elements
}

TEST(Conv, BiasPerOutputChannel) {
  Conv2D conv(1, 3, 1, 1);
  conv.bias()[0] = 1.0f;
  conv.bias()[1] = 2.0f;
  conv.bias()[2] = 3.0f;
  Tensor x(Shape{1, 1, 1});
  const Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(Conv, LinearityInInput) {
  cnn2fpga::util::Rng rng(11);
  Conv2D conv(2, 3, 3, 3);
  conv.init_weights(rng);
  conv.bias().fill(0.0f);  // linearity holds only without bias

  Tensor a(Shape{2, 6, 6}), b(Shape{2, 6, 6});
  a.fill_uniform(rng, -1.0f, 1.0f);
  b.fill_uniform(rng, -1.0f, 1.0f);
  Tensor sum(Shape{2, 6, 6});
  for (std::size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + b[i];

  const Tensor ya = conv.forward(a, false);
  const Tensor yb = conv.forward(b, false);
  const Tensor ysum = conv.forward(sum, false);
  for (std::size_t i = 0; i < ysum.size(); ++i) {
    EXPECT_NEAR(ysum[i], ya[i] + yb[i], 1e-4f);
  }
}

TEST(Conv, MacCountMatchesPaperTest1) {
  // Paper Test 1 conv layer: 6 kernels 5x5 on 16x16 -> 12x12: 6*144*25 MACs.
  Conv2D conv(1, 6, 5, 5);
  EXPECT_EQ(conv.mac_count(Shape{1, 16, 16}), 21600u);
}

TEST(Conv, RejectsBadInputs) {
  Conv2D conv(3, 4, 5, 5);
  EXPECT_THROW(conv.output_shape(Shape{1, 16, 16}), std::invalid_argument);  // channels
  EXPECT_THROW(conv.output_shape(Shape{3, 4, 16}), std::invalid_argument);   // too small
  EXPECT_THROW(conv.output_shape(Shape{3, 16}), std::invalid_argument);      // rank
  EXPECT_THROW(Conv2D(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Conv2D(1, 1, 0, 1), std::invalid_argument);
}

TEST(Conv, BackwardBeforeForwardThrows) {
  Conv2D conv(1, 1, 2, 2);
  EXPECT_THROW(conv.backward(Tensor(Shape{1, 1, 1})), std::logic_error);
}

TEST(Conv, GradientCheck) {
  // Finite-difference check of weight, bias and input gradients.
  cnn2fpga::util::Rng rng(3);
  Conv2D conv(2, 2, 2, 2);
  conv.init_weights(rng);
  Tensor x(Shape{2, 4, 4});
  x.fill_uniform(rng, -1.0f, 1.0f);

  // Scalar objective: sum of outputs.
  const auto objective = [&](Conv2D& c, const Tensor& input) {
    const Tensor y = c.forward(input, false);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) s += y[i];
    return s;
  };

  conv.zero_grad();
  const Tensor y = conv.forward(x, true);
  Tensor ones(y.shape());
  ones.fill(1.0f);
  const Tensor grad_input = conv.backward(ones);

  const double eps = 1e-2;
  // Weights.
  for (std::size_t w = 0; w < conv.weights().size(); w += 7) {
    const float saved = conv.weights()[w];
    conv.weights()[w] = saved + static_cast<float>(eps);
    const double plus = objective(conv, x);
    conv.weights()[w] = saved - static_cast<float>(eps);
    const double minus = objective(conv, x);
    conv.weights()[w] = saved;
    const double numeric = (plus - minus) / (2 * eps);
    const auto params = conv.params();
    EXPECT_NEAR((*params[0].grad)[w], numeric, 5e-2) << "weight " << w;
  }
  // Bias: each bias feeds every output pixel of its map.
  {
    const auto params = conv.params();
    for (std::size_t b = 0; b < conv.bias().size(); ++b) {
      const float saved = conv.bias()[b];
      conv.bias()[b] = saved + static_cast<float>(eps);
      const double plus = objective(conv, x);
      conv.bias()[b] = saved - static_cast<float>(eps);
      const double minus = objective(conv, x);
      conv.bias()[b] = saved;
      EXPECT_NEAR((*params[1].grad)[b], (plus - minus) / (2 * eps), 5e-2);
    }
  }
  // Input.
  for (std::size_t i = 0; i < x.size(); i += 5) {
    const float saved = x[i];
    Tensor xp = x, xm = x;
    xp[i] = saved + static_cast<float>(eps);
    xm[i] = saved - static_cast<float>(eps);
    const double numeric = (objective(conv, xp) - objective(conv, xm)) / (2 * eps);
    EXPECT_NEAR(grad_input[i], numeric, 5e-2) << "input " << i;
  }
}

// ------------------------------------------------------------------------
// Property sweep: Eq. 2/3 over a grid of (input, kernel) sizes.
// ------------------------------------------------------------------------

class ConvShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ConvShapeSweep, DimensionsFollowEq2And3) {
  const auto [size, kernel, channels] = GetParam();
  if (kernel > size) GTEST_SKIP() << "kernel larger than input";
  Conv2D conv(channels, 4, kernel, kernel);
  const Shape out = conv.output_shape(Shape{channels, size, size});
  EXPECT_EQ(out.channels(), 4u);
  EXPECT_EQ(out.height(), size - kernel + 1);
  EXPECT_EQ(out.width(), size - kernel + 1);
  EXPECT_EQ(conv.mac_count(Shape{channels, size, size}),
            4u * (size - kernel + 1) * (size - kernel + 1) * channels * kernel * kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvShapeSweep,
    ::testing::Combine(::testing::Values<std::size_t>(5, 8, 16, 28, 32),
                       ::testing::Values<std::size_t>(1, 2, 3, 5, 7),
                       ::testing::Values<std::size_t>(1, 3)));

// Non-square kernels also follow the formulas independently per axis.
TEST(Conv, NonSquareKernel) {
  Conv2D conv(1, 2, 3, 5);
  const Shape out = conv.output_shape(Shape{1, 10, 12});
  EXPECT_EQ(out, (Shape{2, 8, 8}));
}
